//! End-to-end pipeline tests: generate → allocate → verify → simulate.
//!
//! Every allocation any solution declares schedulable must (a) satisfy
//! all structural invariants (partition budgets, disjointness, single
//! assignment) and (b) produce zero deadline misses when executed on
//! the simulated hypervisor.

use vc2m::model::SimDuration;
use vc2m::prelude::*;

/// Simulate long enough to cover two hyperperiods of any generated
/// workload (periods ≤ 1100 ms, harmonic).
fn sim_config() -> SimConfig {
    SimConfig::default().with_horizon(SimDuration::from_ms(2500.0))
}

fn generated_workload(
    utilization: f64,
    dist: UtilizationDist,
    seed: u64,
) -> (TaskSet, Vec<VmSpec>) {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, dist),
        seed,
    );
    let tasks = generator.generate();
    let vms = vec![VmSpec::new(VmId(0), tasks.clone()).expect("non-empty")];
    (tasks, vms)
}

#[test]
fn schedulable_allocations_verify_and_meet_deadlines() {
    let platform = Platform::platform_a();
    let mut simulated = 0;
    for seed in 0..4 {
        let (tasks, vms) = generated_workload(0.8, UtilizationDist::Uniform, seed);
        for solution in Solution::ALL {
            let Some(allocation) = solution.allocate(&vms, &platform, seed).into_allocation()
            else {
                continue;
            };
            allocation
                .verify(&platform)
                .unwrap_or_else(|e| panic!("{solution} (seed {seed}): invalid allocation: {e}"));
            let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
                .expect("allocation is realizable")
                .run()
                .expect("fault-free run succeeds");
            assert!(
                report.all_deadlines_met(),
                "{solution} (seed {seed}): {} misses, first: {:?}",
                report.deadline_misses.len(),
                report.deadline_misses.first()
            );
            assert!(report.jobs_completed > 0);
            simulated += 1;
        }
    }
    assert!(
        simulated >= 8,
        "too few schedulable cases exercised: {simulated}"
    );
}

#[test]
fn bimodal_workloads_also_run_cleanly() {
    let platform = Platform::platform_a();
    for dist in [UtilizationDist::BimodalLight, UtilizationDist::BimodalHeavy] {
        let (tasks, vms) = generated_workload(0.6, dist, 11);
        for solution in [
            Solution::HeuristicFlattening,
            Solution::HeuristicOverheadFree,
        ] {
            let Some(allocation) = solution.allocate(&vms, &platform, 11).into_allocation() else {
                continue;
            };
            let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
                .expect("realizable")
                .run()
                .expect("fault-free run succeeds");
            assert!(
                report.all_deadlines_met(),
                "{solution} on {dist}: {:?}",
                report.deadline_misses.first()
            );
        }
    }
}

#[test]
fn multi_vm_workloads_allocate_and_run() {
    let platform = Platform::platform_b();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(1.2, UtilizationDist::Uniform).with_vm_count(3),
        21,
    );
    let vms = generator.generate_vms();
    assert!(vms.len() > 1, "want a real multi-VM workload");
    let tasks: TaskSet = vms
        .iter()
        .flat_map(|vm| vm.tasks().iter().cloned())
        .collect();
    let allocation = Solution::HeuristicFlattening
        .allocate(&vms, &platform, 21)
        .into_allocation()
        .expect("utilization 1.2 on 6 cores under flattening");
    allocation.verify(&platform).unwrap();
    // VCPUs from different VMs may share cores; isolation is per core,
    // not per VM, exactly as in the paper.
    let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
        .expect("realizable")
        .run()
        .expect("fault-free run succeeds");
    assert!(
        report.all_deadlines_met(),
        "{:?}",
        report.deadline_misses.first()
    );
}

#[test]
fn platform_c_smaller_cache_is_harder() {
    // The same generator settings on Platform C (12 partitions) can
    // only do worse than on Platform A (20 partitions, same cores).
    let a = Platform::platform_a();
    let c = Platform::platform_c();
    let mut sched_a = 0;
    let mut sched_c = 0;
    for seed in 0..6 {
        let mut generator = TasksetGenerator::new(
            a.resources(),
            TasksetConfig::new(1.6, UtilizationDist::Uniform),
            seed,
        );
        let tasks = generator.generate();
        let vms_a = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
        if Solution::HeuristicFlattening
            .allocate(&vms_a, &a, seed)
            .is_schedulable()
        {
            sched_a += 1;
        }
        // Regenerate for C's resource space (surfaces are
        // platform-specific).
        let mut generator_c = TasksetGenerator::new(
            c.resources(),
            TasksetConfig::new(1.6, UtilizationDist::Uniform),
            seed,
        );
        let tasks_c = generator_c.generate();
        let vms_c = vec![VmSpec::new(VmId(0), tasks_c).unwrap()];
        if Solution::HeuristicFlattening
            .allocate(&vms_c, &c, seed)
            .is_schedulable()
        {
            sched_c += 1;
        }
    }
    assert!(
        sched_a >= sched_c,
        "platform A ({sched_a}) should do at least as well as C ({sched_c})"
    );
}

#[test]
fn unschedulable_verdicts_are_mutual() {
    // A hopeless workload: nobody may claim it schedulable.
    let platform = Platform::platform_a();
    let (_, vms) = generated_workload(4.5, UtilizationDist::Uniform, 3);
    for solution in Solution::ALL {
        assert!(
            !solution.allocate(&vms, &platform, 3).is_schedulable(),
            "{solution} scheduled utilization 4.5 on 4 cores"
        );
    }
}

#[test]
fn auto_solution_handles_mixed_vcpu_caps() {
    // One VM with generous caps (flattened) and one whose cap forces
    // the well-regulated fallback, allocated together and validated in
    // simulation.
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(0.8, UtilizationDist::Uniform).with_vm_count(2),
        31,
    );
    let mut vms = generator.generate_vms();
    assert!(vms.len() == 2, "want two VMs");
    // Cap the second VM below its task count.
    let capped = &vms[1];
    if capped.tasks().len() >= 2 {
        let cap = capped.tasks().len() - 1;
        vms[1] = VmSpec::with_max_vcpus(capped.id(), capped.tasks().clone(), cap).unwrap();
    }
    let tasks: TaskSet = vms
        .iter()
        .flat_map(|vm| vm.tasks().iter().cloned())
        .collect();
    let allocation = vc2m::alloc::Solution::Auto
        .allocate(&vms, &platform, 31)
        .into_allocation()
        .expect("light workload is schedulable under auto");
    allocation.verify(&platform).unwrap();
    // The capped VM must not exceed its cap.
    let capped_vcpus = allocation
        .vcpus()
        .iter()
        .filter(|v| v.vm() == vms[1].id())
        .count();
    assert!(capped_vcpus <= vms[1].max_vcpus());
    let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
        .expect("realizable")
        .run()
        .expect("fault-free run succeeds");
    assert!(
        report.all_deadlines_met(),
        "{:?}",
        report.deadline_misses.first()
    );
}
