//! Analysis ↔ simulation agreement tests.
//!
//! The analyses' *schedulable* verdicts are safe claims about runtime
//! behavior; the simulator is the ground truth. These tests check the
//! two directions that are checkable:
//!
//! * **soundness** — every allocation declared schedulable runs with
//!   zero deadline misses (also exercised per-solution in
//!   `end_to_end.rs`; here at tighter utilizations and on all three
//!   platforms);
//! * **sharpness** — verdicts are not vacuously conservative: budgets
//!   trimmed below the analysis' minimum do cause misses.

use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::model::{BudgetSurface, SimDuration, VcpuSpec};
use vc2m::prelude::*;

fn sim_config() -> SimConfig {
    SimConfig::default().with_horizon(SimDuration::from_ms(2500.0))
}

#[test]
fn tight_allocations_hold_up_on_every_platform() {
    for (platform, name) in [
        (Platform::platform_a(), "A"),
        (Platform::platform_b(), "B"),
        (Platform::platform_c(), "C"),
    ] {
        // Push near each platform's vC²M breakdown region.
        let utilization = 0.3 * platform.cores() as f64;
        for seed in 0..3 {
            let mut generator = TasksetGenerator::new(
                platform.resources(),
                TasksetConfig::new(utilization, UtilizationDist::Uniform),
                seed,
            );
            let tasks = generator.generate();
            let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
            let Some(allocation) = Solution::HeuristicFlattening
                .allocate(&vms, &platform, seed)
                .into_allocation()
            else {
                continue;
            };
            let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
                .expect("realizable")
                .run()
                .expect("fault-free run succeeds");
            assert!(
                report.all_deadlines_met(),
                "platform {name}, seed {seed}: {:?}",
                report.deadline_misses.first()
            );
        }
    }
}

#[test]
fn trimming_budgets_below_analysis_minimum_breaks_deadlines() {
    // Theorem 1 budgets are exact: shaving 10% off every budget must
    // produce misses for a task that actually uses its WCET.
    let platform = Platform::platform_a();
    let space = platform.resources();
    let tasks: TaskSet = (0..2)
        .map(|i| Task::new(TaskId(i), 10.0, WcetSurface::flat(&space, 5.0).unwrap()).unwrap())
        .collect();
    let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
    let allocation = Solution::HeuristicFlattening
        .allocate(&vms, &platform, 1)
        .into_allocation()
        .expect("two half-load tasks are schedulable");

    // Rebuild the same allocation with budgets at 90%.
    let trimmed_vcpus: Vec<VcpuSpec> = allocation
        .vcpus()
        .iter()
        .map(|v| {
            VcpuSpec::new(
                v.id(),
                v.vm(),
                v.period(),
                BudgetSurface::from_fn(v.budget_surface().space(), |a| v.budget(a) * 0.9).unwrap(),
                v.tasks().to_vec(),
            )
            .unwrap()
        })
        .collect();
    let trimmed = SystemAllocation::new(
        trimmed_vcpus,
        allocation
            .cores()
            .iter()
            .map(|c| CoreAssignment {
                vcpus: c.vcpus.clone(),
                alloc: c.alloc,
            })
            .collect(),
    );
    let report = HypervisorSim::new(&platform, &trimmed, &tasks, sim_config())
        .expect("still realizable")
        .run()
        .expect("fault-free run succeeds");
    assert!(
        !report.all_deadlines_met(),
        "90% budgets should not suffice for full-WCET jobs"
    );
}

#[test]
fn allocation_dependent_wcets_are_respected_by_the_simulator() {
    // A task that is infeasible without cache but light with it: the
    // simulator must execute it with the WCET of its core's actual
    // allocation, so a cache-rich allocation meets deadlines even
    // though the worst corner would not.
    let platform = Platform::platform_a();
    let space = platform.resources();
    // WCET 26 ms at the minimum allocation (exceeds the 20 ms period)
    // shrinking to 6 ms with full cache: some cache grant is mandatory.
    let surface = WcetSurface::from_fn(&space, |a| {
        6.0 + 20.0 * (1.0 - f64::from(a.cache - 2) / 18.0)
    })
    .unwrap();
    let task = Task::new(TaskId(0), 20.0, surface).unwrap();
    let tasks: TaskSet = std::iter::once(task).collect();
    let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
    let allocation = Solution::HeuristicFlattening
        .allocate(&vms, &platform, 2)
        .into_allocation()
        .expect("schedulable with enough cache");
    // The chosen core must hold enough cache to make the task fit.
    let core = &allocation.cores()[0];
    assert!(
        core.alloc.cache > space.cache_min(),
        "allocator should have granted extra cache, got {}",
        core.alloc
    );
    let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
        .expect("realizable")
        .run()
        .expect("fault-free run succeeds");
    assert!(
        report.all_deadlines_met(),
        "{:?}",
        report.deadline_misses.first()
    );
}

#[test]
fn regulated_vcpus_pass_theorem_2_stress() {
    // Assemble many harmonic tasks on few VCPUs via the overhead-free
    // solution and simulate at high utilization: Theorem 2 promises
    // zero misses as long as the analysis said yes.
    let platform = Platform::platform_a();
    for seed in 0..3 {
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(1.3, UtilizationDist::Uniform),
            100 + seed,
        );
        let tasks = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
        let Some(allocation) = Solution::HeuristicOverheadFree
            .allocate(&vms, &platform, seed)
            .into_allocation()
        else {
            continue;
        };
        // The overhead-free solution really does pack several tasks
        // per VCPU here.
        assert!(
            allocation.vcpus().iter().any(|v| v.tasks().len() > 1),
            "expected multi-task VCPUs at utilization 1.3"
        );
        let report = HypervisorSim::new(&platform, &allocation, &tasks, sim_config())
            .expect("realizable")
            .run()
            .expect("fault-free run succeeds");
        assert!(
            report.all_deadlines_met(),
            "seed {seed}: {:?}",
            report.deadline_misses.first()
        );
    }
}
