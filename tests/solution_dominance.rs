//! Cross-solution ordering tests: the qualitative ranking the paper's
//! evaluation establishes must hold on sampled workloads.
//!
//! The expected ordering (Figures 2 and 3):
//!
//! ```text
//! Heuristic (flattening) ≈ Heuristic (overhead-free CSA)
//!   ≫ { Heuristic (existing CSA), Evenly-partition (overhead-free) }
//!   ≫ Baseline (existing CSA)
//! ```

use vc2m::prelude::*;
use vc2m::sweep::{run_sweep, SweepConfig};

fn count_schedulable(solution: Solution, utilization: f64, seeds: std::ops::Range<u64>) -> usize {
    let platform = Platform::platform_a();
    seeds
        .filter(|&seed| {
            let mut generator = TasksetGenerator::new(
                platform.resources(),
                TasksetConfig::new(utilization, UtilizationDist::Uniform),
                seed,
            );
            let tasks = generator.generate();
            let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
            solution.allocate(&vms, &platform, seed).is_schedulable()
        })
        .count()
}

#[test]
fn vc2m_solutions_dominate_baseline_at_moderate_load() {
    // At reference utilization 1.0 — 2× past the paper's baseline
    // breakdown (~0.5) but well under vC²M's (≥1.3) — the gap is wide.
    let flattening = count_schedulable(Solution::HeuristicFlattening, 1.0, 0..10);
    let overhead_free = count_schedulable(Solution::HeuristicOverheadFree, 1.0, 0..10);
    let baseline = count_schedulable(Solution::Baseline, 1.0, 0..10);
    assert!(
        flattening >= 9,
        "flattening should schedule nearly everything at 1.0, got {flattening}/10"
    );
    assert!(
        overhead_free >= 8,
        "overhead-free should schedule nearly everything at 1.0, got {overhead_free}/10"
    );
    assert!(
        baseline <= flattening.saturating_sub(3),
        "baseline ({baseline}) should trail flattening ({flattening}) clearly"
    );
}

#[test]
fn overhead_free_tracks_flattening_closely() {
    // Paper: only ~5% of tasksets separate the two vC²M variants.
    let mut flattening_total = 0;
    let mut overhead_free_total = 0;
    for utilization in [0.8, 1.2] {
        flattening_total += count_schedulable(Solution::HeuristicFlattening, utilization, 0..8);
        overhead_free_total +=
            count_schedulable(Solution::HeuristicOverheadFree, utilization, 0..8);
    }
    let gap = flattening_total.abs_diff(overhead_free_total);
    assert!(
        gap <= 3,
        "the two vC²M variants should nearly coincide (flattening {flattening_total}, \
         overhead-free {overhead_free_total})"
    );
}

#[test]
fn breakdown_utilizations_are_ordered() {
    // A coarse sweep suffices to observe the breakdown ordering:
    // baseline breaks first, the partial solutions next, vC²M last.
    let mut config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
    config.tasksets_per_point = 6;
    let results = run_sweep(&config);
    let breakdown = |s: Solution| results.breakdown_utilization(s).unwrap_or(0.0);
    let flattening = breakdown(Solution::HeuristicFlattening);
    let overhead_free = breakdown(Solution::HeuristicOverheadFree);
    let baseline = breakdown(Solution::Baseline);
    assert!(
        flattening >= baseline + 0.4,
        "flattening breakdown {flattening} vs baseline {baseline}"
    );
    // The breakdown demands a unanimous pass at every sweep point, so
    // one unlucky taskset can cost a solution a whole step; compare
    // the vC²M variants against the partial solutions with the best
    // of the pair, and bound the gap *between* the pair by one step
    // (the paper: flattening ≈ overhead-free, both ≫ partials).
    let best_vc2m = flattening.max(overhead_free);
    for partial in [Solution::HeuristicExisting, Solution::EvenlyPartition] {
        assert!(
            best_vc2m >= breakdown(partial),
            "vC²M {best_vc2m} vs {partial} {}",
            breakdown(partial)
        );
    }
    assert!(
        (flattening - overhead_free).abs() <= 0.2 + 1e-9,
        "vC²M variants diverged: flattening {flattening} vs overhead-free {overhead_free}"
    );
}

#[test]
fn fractions_decrease_with_utilization() {
    // Monotone trend (allowing small sampling noise): higher target
    // utilization never makes scheduling much easier.
    let mut config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform)
        .with_solutions(vec![Solution::HeuristicFlattening, Solution::Baseline]);
    config.tasksets_per_point = 6;
    let results = run_sweep(&config);
    for solution in [Solution::HeuristicFlattening, Solution::Baseline] {
        let fractions: Vec<f64> = (0..results.rows().len())
            .map(|i| results.cell(i, solution).fraction())
            .collect();
        for w in fractions.windows(2) {
            assert!(
                w[1] <= w[0] + 0.34,
                "{solution}: fraction jumped {w:?} (sampling noise bound exceeded)"
            );
        }
        // And the endpoints are unambiguous.
        assert!(fractions.first().unwrap() >= fractions.last().unwrap());
    }
}

#[test]
fn combining_both_ingredients_beats_each_alone() {
    // The paper's point in Section 5.2: the heuristic allocation and
    // the overhead-free analysis are each only half the story. At
    // high utilization, Heuristic (overhead-free) must beat both
    // Heuristic (existing) and Evenly-partition (overhead-free).
    let combined = count_schedulable(Solution::HeuristicOverheadFree, 1.4, 0..10);
    let analysis_only = count_schedulable(Solution::EvenlyPartition, 1.4, 0..10);
    let heuristic_only = count_schedulable(Solution::HeuristicExisting, 1.4, 0..10);
    assert!(
        combined > analysis_only || analysis_only == 10,
        "combined {combined} vs evenly-partition {analysis_only}"
    );
    assert!(
        combined > heuristic_only || heuristic_only == 10,
        "combined {combined} vs heuristic-existing {heuristic_only}"
    );
}
