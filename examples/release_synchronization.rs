//! Release synchronization (Section 3.2): why the hypercall matters.
//!
//! Under flattening, a VCPU's budget equals its task's WCET exactly —
//! there is *no slack*. The VCPU (a periodic server) is guaranteed its
//! budget Θ somewhere inside each of *its own* periods; only when the
//! task's release grid is aligned with the VCPU's does that guarantee
//! transfer to the task. If the grids are offset, the supply a task
//! window sees can fall short whenever the core's supply pattern
//! shifts from period to period — which it does as soon as a
//! competing VCPU with a non-harmonic period shares the core.
//!
//! vC²M fixes this with a hypercall: the guest passes the delay `L`
//! between the task's initialization and its first release, and the
//! hypervisor shifts the VCPU's first release to match (Theorem 1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example release_synchronization
//! ```

use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::model::{BudgetSurface, SimDuration};
use vc2m::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::platform_a();
    let space = platform.resources();

    // The victim: period 10 ms, WCET 4 ms, first released 3 ms after
    // initialization. Flattening gives it Π = 10, Θ = 4 — zero slack.
    let victim = Task::new(TaskId(0), 10.0, WcetSurface::flat(&space, 4.0)?)?;
    // The competitor: a non-harmonic neighbor (period 7 ms) on the
    // same core. Its presence makes the core's EDF supply pattern
    // drift from period to period.
    let competitor = Task::new(TaskId(1), 7.0, WcetSurface::flat(&space, 4.1)?)?;
    let tasks: TaskSet = vec![victim, competitor].into_iter().collect();

    let vcpus = vec![
        VcpuSpec::new(
            VcpuId(0),
            VmId(0),
            10.0,
            BudgetSurface::flat(&space, 4.0)?,
            vec![TaskId(0)],
        )?,
        VcpuSpec::new(
            VcpuId(1),
            VmId(0),
            7.0,
            BudgetSurface::flat(&space, 4.1)?,
            vec![TaskId(1)],
        )?,
    ];
    let allocation = SystemAllocation::new(
        vcpus,
        vec![CoreAssignment {
            vcpus: vec![0, 1],
            alloc: Alloc::new(10, 10),
        }],
    );
    println!(
        "core utilization: {:.3} (EDF-schedulable at the VCPU level)\n",
        allocation.core_utilization(0)
    );

    let offset_ms = 3.0;
    println!("victim task: period 10 ms, WCET 4 ms, first release at {offset_ms} ms");
    println!("competitor VCPU: period 7 ms, budget 4.1 ms (non-harmonic neighbor)\n");

    for (label, synchronized) in [
        ("WITHOUT synchronization", false),
        ("WITH synchronization (hypercall)", true),
    ] {
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(10_000.0))
            .with_release_synchronization(synchronized);
        let report = HypervisorSim::new(&platform, &allocation, &tasks, config)?
            .with_task_offset(TaskId(0), offset_ms)?
            .run()?;
        let victim_misses = report
            .deadline_misses
            .iter()
            .filter(|m| m.task == TaskId(0))
            .count();
        let worst = report.worst_response_ms(TaskId(0)).unwrap_or(f64::NAN);
        println!(
            "{label:<34}: {victim_misses} victim deadline misses, worst response {worst:.3} ms"
        );
    }

    println!(
        "\nwith the grids aligned, the VCPU-level guarantee (Θ within each server\n\
         period) is exactly the task-level guarantee, so the zero-overhead budget\n\
         suffices (Theorem 1); without it the task's windows straddle two server\n\
         periods and can come up short"
    );
    Ok(())
}
