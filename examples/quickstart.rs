//! Quickstart: generate a workload, allocate it with vC²M, and
//! validate the allocation on the simulated hypervisor.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vc2m::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Platform A of the paper: 4 cores, 20 cache partitions, 20
    // memory-bandwidth partitions.
    let platform = Platform::platform_a();
    println!("platform: {platform}");

    // A random workload at taskset reference utilization 1.0, with
    // harmonic periods in [100, 1100] ms and WCET surfaces derived
    // from PARSEC-style benchmark profiles.
    let config = TasksetConfig::new(1.0, UtilizationDist::Uniform);
    let mut generator = TasksetGenerator::new(platform.resources(), config, 42);
    let tasks = generator.generate();
    println!(
        "\nworkload ({} tasks, u* = {:.3}):",
        tasks.len(),
        tasks.reference_utilization()
    );
    for task in tasks.iter() {
        println!("  {task}");
    }

    // One VM holding the whole workload.
    let vms = vec![VmSpec::new(VmId(0), tasks.clone())?];

    // Allocate CPU, cache and bandwidth with the vC²M flattening
    // solution: one VCPU per task (Theorem 1), then the three-phase
    // hypervisor-level heuristic.
    let outcome = Solution::HeuristicFlattening.allocate(&vms, &platform, 42);
    let Some(allocation) = outcome.allocation() else {
        println!("\nworkload not schedulable on this platform");
        return Ok(());
    };
    println!("\n{allocation}");

    // Validate structurally (partition budgets, disjointness, EDF
    // utilization test per core)...
    allocation.verify(&platform)?;

    // ...and empirically: run it on the simulated hypervisor (periodic
    // servers, partitioned EDF, CAT isolation, bandwidth regulation).
    let report = HypervisorSim::new(&platform, allocation, &tasks, SimConfig::default())?.run()?;
    println!("{report}");
    assert!(report.all_deadlines_met());
    println!("all deadlines met over {} jobs", report.jobs_completed);
    Ok(())
}
