//! Dynamic reallocation: a vCAT-style mode change at run time.
//!
//! vC²M builds on vCAT, whose defining capability is *dynamic* cache
//! management — partitions can be re-assigned while the system runs.
//! This example drives the simulated hypervisor through a mode change:
//!
//! 1. a cache-hungry control task starts on a core with the minimum
//!    allocation and misses deadlines;
//! 2. at t = 30 ms the hypervisor re-programs the core (14 cache + 8
//!    bandwidth partitions), shrinking the task's WCET;
//! 3. the backlog drains and every subsequent deadline is met.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mode_change
//! ```

use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::model::{BudgetSurface, SimDuration, SimTime};
use vc2m::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::platform_a();
    let space = platform.resources();

    // WCET 12 ms at the minimum allocation — hopeless for a 10 ms
    // period — shrinking to 4 ms with the full cache.
    let surface = WcetSurface::from_fn(&space, |a| {
        4.0 + 8.0 * (1.0 - f64::from(a.cache - 2) / 18.0)
    })?;
    let task = Task::new(TaskId(0), 10.0, surface)?;
    let tasks: TaskSet = std::iter::once(task).collect();
    let vcpu = VcpuSpec::new(
        VcpuId(0),
        VmId(0),
        10.0,
        BudgetSurface::flat(&space, 10.0)?, // server owns the core
        vec![TaskId(0)],
    )?;
    let allocation = SystemAllocation::new(
        vec![vcpu],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(2, 1),
        }],
    );

    println!("task: period 10 ms, WCET 12 ms at (c=2,b=1) -> 6.7 ms at (c=14,b=8)\n");

    let switch_ms = 30.0;
    let report = HypervisorSim::new(
        &platform,
        &allocation,
        &tasks,
        SimConfig::default().with_horizon(SimDuration::from_ms(500.0)),
    )?
    .with_reallocation(switch_ms, 0, Alloc::new(14, 8))?
    .run()?;

    let switch = SimTime::from_ms(switch_ms);
    let before = report
        .deadline_misses
        .iter()
        .filter(|m| m.deadline <= switch)
        .count();
    let last_miss = report
        .deadline_misses
        .iter()
        .map(|m| m.deadline.as_ms())
        .fold(0.0f64, f64::max);
    println!("misses before the mode change (t <= {switch_ms} ms): {before}");
    println!(
        "total misses: {} (last at {last_miss:.1} ms, backlog draining)",
        report.deadline_misses.len()
    );
    println!(
        "jobs completed over 500 ms: {} / {}",
        report.jobs_completed, report.jobs_released
    );
    assert!(
        last_miss < 250.0,
        "recovery must complete well before the horizon"
    );
    println!("\nafter the vCAT-style re-programming, the task recovers and stays on time");
    Ok(())
}
