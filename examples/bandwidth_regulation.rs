//! Bandwidth regulation and isolation, exercised directly.
//!
//! Part 1 drives the MemGuard-style regulator substrate by hand: a
//! core with a small bandwidth budget, a traffic source that exceeds
//! it, throttle on overflow, un-throttle at the refill boundary.
//!
//! Part 2 shows the same mechanism end-to-end in the hypervisor
//! simulator: a memory-hog task is throttled into missing deadlines,
//! while the identical task under a sufficient budget runs cleanly.
//!
//! Part 3 reproduces the shape of the paper's Section 3.3 study: the
//! WCET of each PARSEC-style benchmark with and without cache/BW
//! isolation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bandwidth_regulation
//! ```

use vc2m::rng::DetRng;
use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::hypervisor::interference::{self, InterferenceConfig};
use vc2m::membw::{budget_requests_per_period, BwRegulator, RegulatorConfig, ThrottleAction};
use vc2m::model::{BudgetSurface, SimDuration};
use vc2m::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    part1_regulator_state_machine()?;
    part2_throttling_in_the_hypervisor()?;
    part3_isolation_study();
    Ok(())
}

fn part1_regulator_state_machine() -> Result<(), Box<dyn std::error::Error>> {
    println!("== part 1: the regulator state machine ==\n");
    // 4 cores, 1 ms regulation period; core 0 gets 2 bandwidth
    // partitions of 60 MB/s.
    let mut regulator = BwRegulator::new(RegulatorConfig::new(4, 1.0)?);
    let budget = budget_requests_per_period(2, 60, 1.0);
    regulator.set_budget(0, budget)?;
    println!("core 0 budget: {budget} memory requests per 1 ms period");

    // A burst below the budget: nothing happens.
    let action = regulator.record_requests(0, budget - 1)?;
    println!("burst of {} requests -> {action:?}", budget - 1);

    // The next request overflows the preset counter: the overflow
    // interrupt fires and the core is throttled (left idle).
    let action = regulator.record_requests(0, 1)?;
    println!("one more request     -> {action:?}");
    assert_eq!(action, ThrottleAction::Throttle);
    println!("throttled mask: {:#06b}", regulator.throttled_mask());

    // The periodic refiller replenishes every budget and reports which
    // cores the scheduler must wake.
    let woken = regulator.replenish_all();
    println!("refill boundary     -> wake cores {woken:?}\n");
    Ok(())
}

fn part2_throttling_in_the_hypervisor() -> Result<(), Box<dyn std::error::Error>> {
    println!("== part 2: throttling end-to-end ==\n");
    let platform = Platform::platform_a();
    let space = platform.resources();
    let task = Task::new(TaskId(0), 10.0, WcetSurface::flat(&space, 5.0)?)?;
    let tasks: TaskSet = std::iter::once(task).collect();
    let vcpu = VcpuSpec::new(
        VcpuId(0),
        VmId(0),
        10.0,
        BudgetSurface::flat(&space, 5.0)?,
        vec![TaskId(0)],
    )?;

    for (label, bw_partitions, traffic) in [
        ("within budget   (b=10, traffic 0.5x)", 10u32, 0.5),
        ("hog vs tight bw (b=2,  traffic 3.0x)", 2u32, 3.0),
    ] {
        let allocation = SystemAllocation::new(
            vec![vcpu.clone()],
            vec![CoreAssignment {
                vcpus: vec![0],
                alloc: Alloc::new(10, bw_partitions),
            }],
        );
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(1000.0))
            .with_traffic_fraction(traffic);
        let report = HypervisorSim::new(&platform, &allocation, &tasks, config)?.run()?;
        println!(
            "{label}: {} throttles, {} misses in 1 s",
            report.throttle_events,
            report.deadline_misses.len()
        );
    }
    println!();
    Ok(())
}

fn part3_isolation_study() {
    println!("== part 3: WCET impact of isolation (Section 3.3 shape) ==\n");
    let space = Platform::platform_a().resources();
    let alloc = Alloc::new(10, 10);
    let config = InterferenceConfig::default();
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "isolated", "shared", "reduction"
    );
    for benchmark in ParsecBenchmark::ALL {
        let mut rng = DetRng::seed_from_u64(0xb10c);
        let m = interference::measure(&benchmark.profile(), &space, alloc, &config, &mut rng);
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>9.2}x",
            benchmark.name(),
            m.isolated.max().unwrap_or(f64::NAN),
            m.shared.max().unwrap_or(f64::NAN),
            m.wcet_reduction().unwrap_or(f64::NAN)
        );
    }
    println!("\n(worst observed slowdown relative to the reference WCET, 25 runs each;");
    println!(" 'reduction' is the WCET saving isolation buys — compare the paper's");
    println!(" finding that the benefit varies strongly across benchmarks)");
}
