//! A miniature of the paper's schedulability evaluation (Figure 2a):
//! fraction of schedulable tasksets versus taskset reference
//! utilization for all five solutions on Platform A.
//!
//! This example runs the *quick* sweep preset (coarser grid, fewer
//! tasksets) so it finishes in seconds; the `vc2m-bench` binaries
//! regenerate the figures at full paper scale.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example schedulability_study
//! ```

use vc2m::prelude::*;
use vc2m::sweep::{run_sweep_with_progress, SweepConfig};

fn main() {
    let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
    println!(
        "sweeping u* in [{:.1}, {:.1}] on {} ({} tasksets per point)\n",
        config.utilizations.first().copied().unwrap_or(0.0),
        config.utilizations.last().copied().unwrap_or(0.0),
        config.platform,
        config.tasksets_per_point
    );

    let results = run_sweep_with_progress(&config, |done, total| {
        eprint!("\r  point {done}/{total}");
        if done == total {
            eprintln!();
        }
    });

    println!("\nfraction of schedulable tasksets:\n{results}");

    println!("breakdown utilizations (largest u* with all tasksets schedulable):");
    for solution in results.solutions().to_vec() {
        match results.breakdown_utilization(solution) {
            Some(u) => println!("  {:<40} {u:.2}", solution.name()),
            None => println!("  {:<40} below the swept range", solution.name()),
        }
    }

    // The headline claim of the paper: vC²M sustains ~2.6× the
    // baseline's workload.
    let flattening = results
        .breakdown_utilization(Solution::HeuristicFlattening)
        .unwrap_or(0.0);
    let baseline = results
        .breakdown_utilization(Solution::Baseline)
        .unwrap_or(f64::NAN);
    if baseline > 0.0 {
        println!(
            "\nworkload increase of vC2M over the baseline: {:.1}x (paper: 2.6x)",
            flattening / baseline
        );
    } else {
        println!("\nbaseline broke down below the swept range");
    }
}
