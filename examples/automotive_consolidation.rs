//! Automotive consolidation: the paper's motivating scenario.
//!
//! Virtualization lets an OEM consolidate several electronic control
//! units (ECUs) onto one multicore processor. Here three subsystems —
//! each previously a dedicated box — become VMs on a single 4-core
//! platform:
//!
//! * **powertrain** — short-period control loops, cache-light;
//! * **ADAS** — vision/sensor-fusion tasks, strongly memory-bound
//!   (canneal/streamcluster-like WCET surfaces);
//! * **infotainment** — fewer but heavier soft tasks.
//!
//! The example asks each of the five evaluated solutions whether the
//! consolidation fits, shows the resource split the vC²M heuristic
//! chose, and validates the winning allocation in simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example automotive_consolidation
//! ```

use vc2m::prelude::*;

/// Builds a task from a benchmark profile: the WCET surface is the
/// benchmark's slowdown surface scaled to the task's reference WCET.
fn profiled_task(
    id: usize,
    period_ms: f64,
    reference_wcet_ms: f64,
    benchmark: ParsecBenchmark,
    space: &vc2m::model::ResourceSpace,
) -> Task {
    let surface = benchmark
        .profile()
        .slowdown_surface(space)
        .scaled(reference_wcet_ms);
    Task::new(TaskId(id), period_ms, surface).expect("valid task parameters")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::platform_a();
    let space = platform.resources();
    println!("consolidating three ECU subsystems onto: {platform}\n");

    // Powertrain VM: 100 ms control loops, compute-bound.
    let powertrain: TaskSet = vec![
        profiled_task(0, 100.0, 8.0, ParsecBenchmark::Swaptions, &space),
        profiled_task(1, 100.0, 6.0, ParsecBenchmark::Blackscholes, &space),
        profiled_task(2, 200.0, 18.0, ParsecBenchmark::Bodytrack, &space),
        profiled_task(3, 200.0, 12.0, ParsecBenchmark::Swaptions, &space),
    ]
    .into_iter()
    .collect();

    // ADAS VM: memory-bound perception pipeline.
    let adas: TaskSet = vec![
        profiled_task(4, 100.0, 22.0, ParsecBenchmark::Streamcluster, &space),
        profiled_task(5, 200.0, 40.0, ParsecBenchmark::Canneal, &space),
        profiled_task(6, 200.0, 30.0, ParsecBenchmark::Facesim, &space),
        profiled_task(7, 400.0, 48.0, ParsecBenchmark::Fluidanimate, &space),
    ]
    .into_iter()
    .collect();

    // Infotainment VM: heavier, slower media tasks.
    let infotainment: TaskSet = vec![
        profiled_task(8, 400.0, 90.0, ParsecBenchmark::X264, &space),
        profiled_task(9, 800.0, 170.0, ParsecBenchmark::Vips, &space),
    ]
    .into_iter()
    .collect();

    let vms = vec![
        VmSpec::new(VmId(0), powertrain.clone())?,
        VmSpec::new(VmId(1), adas.clone())?,
        VmSpec::new(VmId(2), infotainment.clone())?,
    ];
    let all_tasks: TaskSet = powertrain
        .into_iter()
        .chain(adas)
        .chain(infotainment)
        .collect();
    println!(
        "total reference utilization: {:.3} over {} tasks in {} VMs\n",
        all_tasks.reference_utilization(),
        all_tasks.len(),
        vms.len()
    );

    // Which solutions can consolidate this?
    println!("{:<40} verdict", "solution");
    let mut winner = None;
    for solution in Solution::ALL {
        let outcome = solution.allocate(&vms, &platform, 7);
        println!(
            "{:<40} {}",
            solution.name(),
            if outcome.is_schedulable() {
                "schedulable"
            } else {
                "NOT schedulable"
            }
        );
        if solution == Solution::HeuristicFlattening {
            winner = outcome.into_allocation();
        }
    }

    let allocation = winner.expect("vC2M consolidates this workload");
    println!("\nvC2M (flattening) resource split:");
    for (k, core) in allocation.cores().iter().enumerate() {
        let vms_on_core: std::collections::BTreeSet<String> = core
            .vcpus
            .iter()
            .map(|&vi| allocation.vcpus()[vi].vm().to_string())
            .collect();
        println!(
            "  core {k}: {} cache + {} BW partitions, u = {:.3}, VMs {:?}",
            core.alloc.cache,
            core.alloc.bandwidth,
            allocation.core_utilization(k),
            vms_on_core
        );
    }

    // Prove it holds up at run time.
    let report =
        HypervisorSim::new(&platform, &allocation, &all_tasks, SimConfig::default())?.run()?;
    assert!(
        report.all_deadlines_met(),
        "{:?}",
        report.deadline_misses.first()
    );
    println!(
        "\nsimulated 10 s: {} jobs, 0 deadline misses, {} VCPU context switches",
        report.jobs_completed, report.context_switches
    );
    Ok(())
}
