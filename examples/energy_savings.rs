//! Energy: idling throttled cores (vC²M) vs spinning them (MemGuard).
//!
//! The paper's regulator keeps a core *idle* after its bandwidth
//! budget is exhausted, "which is more energy efficient" than
//! MemGuard's busy-waiting. This example quantifies the claim: a
//! memory-hungry workload is throttled for a large share of every
//! regulation period; the energy model then prices the same schedule
//! under both throttling policies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example energy_savings
//! ```

use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::hypervisor::{EnergyModel, ThrottlePolicy};
use vc2m::model::{BudgetSurface, SimDuration};
use vc2m::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::platform_a();
    let space = platform.resources();

    // Four cores, each hosting one memory-hungry task that issues
    // requests at 2.5x its core's bandwidth budget.
    let mut tasks = TaskSet::new();
    let mut vcpus = Vec::new();
    let mut cores = Vec::new();
    for k in 0..4 {
        tasks.push(Task::new(TaskId(k), 10.0, WcetSurface::flat(&space, 6.0)?)?);
        vcpus.push(VcpuSpec::new(
            VcpuId(k),
            VmId(0),
            10.0,
            BudgetSurface::flat(&space, 6.0)?,
            vec![TaskId(k)],
        )?);
        cores.push(CoreAssignment {
            vcpus: vec![k],
            alloc: Alloc::new(5, 5),
        });
    }
    let allocation = SystemAllocation::new(vcpus, cores);

    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(5000.0))
        .with_traffic_fraction(2.5);
    let report = HypervisorSim::new(&platform, &allocation, &tasks, config)?.run()?;

    let busy_ms: f64 = report.core_times.iter().map(|c| c.busy_ms).sum();
    let throttled_ms: f64 = report.core_times.iter().map(|c| c.throttled_ms).sum();
    println!(
        "5 s on 4 cores: {} throttle events, {:.0} ms executing, {:.0} ms throttled\n",
        report.throttle_events, busy_ms, throttled_ms
    );

    let model = EnergyModel::default();
    let idle = report.energy_joules(&model, ThrottlePolicy::Idle);
    let busy = report.energy_joules(&model, ThrottlePolicy::Busy);
    println!("energy model: {model} per core");
    println!("  vC2M (throttled cores idle):       {idle:.1} J");
    println!("  MemGuard-style (cores kept busy):  {busy:.1} J");
    println!(
        "  saving: {:.1} J ({:.0}%)",
        busy - idle,
        (busy - idle) / busy * 100.0
    );
    assert!(idle < busy);
    Ok(())
}
