//! Property-based tests for the core model types, driven by the
//! in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_model::{are_harmonic, Alloc, ResourceSpace, Surface, Task, TaskId, TaskSet, WcetSurface};
use vc2m_rng::{cases::check, DetRng, Rng};

fn arb_space(rng: &mut DetRng) -> ResourceSpace {
    let cmin = rng.gen_range(1u32..4);
    let cspan = rng.gen_range(4u32..24);
    let bmin = rng.gen_range(1u32..3);
    let bspan = rng.gen_range(3u32..24);
    ResourceSpace::new(cmin, cmin + cspan, bmin, bmin + bspan).expect("valid by construction")
}

fn arb_alloc_in(space: ResourceSpace, rng: &mut DetRng) -> Alloc {
    Alloc::new(
        rng.gen_range(space.cache_min()..=space.cache_max()),
        rng.gen_range(space.bw_min()..=space.bw_max()),
    )
}

#[test]
fn index_of_is_a_bijection_onto_iteration_order() {
    check(64, |rng| {
        let space = arb_space(rng);
        let allocs: Vec<Alloc> = space.iter().collect();
        assert_eq!(allocs.len(), space.len());
        for (i, alloc) in allocs.iter().enumerate() {
            assert_eq!(space.index_of(*alloc), i);
            assert!(space.contains(*alloc));
        }
    });
}

#[test]
fn surfaces_roundtrip_through_values() {
    check(64, |rng| {
        let space = arb_space(rng);
        let seed = rng.gen_range(1u64..1000);
        // Pseudo-random positive values derived from the seed.
        let surface = Surface::from_fn(&space, |a| {
            1.0 + ((seed
                .wrapping_mul(31)
                .wrapping_add(u64::from(a.cache * 37 + a.bandwidth)))
                % 97) as f64
        })
        .expect("positive values");
        for (alloc, v) in surface.iter() {
            assert_eq!(surface.at(alloc), v);
        }
        assert_eq!(surface.iter().count(), space.len());
    });
}

#[test]
fn slowdown_vector_is_scale_invariant() {
    check(64, |rng| {
        let space = arb_space(rng);
        let scale = rng.gen_range(0.1f64..100.0);
        let base = Surface::from_fn(&space, |a| 1.0 + 10.0 / f64::from(a.cache + a.bandwidth))
            .expect("positive");
        let scaled = base.scaled(scale);
        let sv_base = base.slowdown_vector();
        let sv_scaled = scaled.slowdown_vector();
        for alloc in space.iter() {
            assert!((sv_base.at(alloc) - sv_scaled.at(alloc)).abs() < 1e-9);
        }
        // And the reference entry is exactly 1.
        assert!((sv_base.at(space.reference()) - 1.0).abs() < 1e-12);
    });
}

#[test]
fn monotone_surfaces_have_worst_case_at_minimum() {
    check(64, |rng| {
        let space = arb_space(rng);
        let surface = Surface::from_fn(&space, |a| {
            1.0 + 5.0 * f64::from(space.cache_max() - a.cache)
                + 3.0 * f64::from(space.bw_max() - a.bandwidth)
        })
        .expect("positive");
        assert!(surface.is_monotone_non_increasing());
        assert!((surface.at_minimum() - surface.max_value()).abs() < 1e-9);
        assert!(surface.max_slowdown() >= 1.0);
    });
}

#[test]
fn surface_addition_is_pointwise() {
    check(64, |rng| {
        let space = arb_space(rng);
        let a = rng.gen_range(0.5f64..10.0);
        let b = rng.gen_range(0.5f64..10.0);
        let sa = Surface::flat(&space, a).expect("positive");
        let sb = Surface::flat(&space, b).expect("positive");
        let sum = sa.try_add(&sb).expect("same space");
        for alloc in space.iter() {
            assert!((sum.at(alloc) - (a + b)).abs() < 1e-12);
        }
    });
}

#[test]
fn power_of_two_periods_are_always_harmonic() {
    check(64, |rng| {
        let base = rng.gen_range(1.0f64..1000.0);
        let n = rng.gen_range(1usize..10);
        let periods: Vec<f64> = (0..n)
            .map(|_| base * f64::from(1u32 << rng.gen_range(0u32..6)))
            .collect();
        assert!(are_harmonic(periods.iter().copied()));
        // Subsets of harmonic sets are harmonic.
        assert!(are_harmonic(periods.iter().copied().take(1)));
    });
}

#[test]
fn coprime_ish_periods_are_not_harmonic() {
    check(64, |rng| {
        // p and p + 1 never divide each other for p >= 2.
        let p = f64::from(rng.gen_range(2u32..50));
        assert!(!are_harmonic([p, p + 1.0]));
    });
}

#[test]
fn taskset_utilization_is_additive() {
    check(64, |rng| {
        let space = arb_space(rng);
        let n = rng.gen_range(1usize..8);
        let wcets: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..5.0)).collect();
        let period = 100.0;
        let tasks: TaskSet = wcets
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                Task::new(TaskId(i), period, WcetSurface::flat(&space, w).unwrap()).unwrap()
            })
            .collect();
        let expected: f64 = wcets.iter().map(|w| w / period).sum();
        assert!((tasks.reference_utilization() - expected).abs() < 1e-9);
        let alloc_util = tasks.utilization(space.minimum());
        assert!(
            (alloc_util - expected).abs() < 1e-9,
            "flat surfaces: same util everywhere"
        );
    });
}

#[test]
fn task_rejects_wcet_exceeding_period() {
    check(64, |rng| {
        let space = arb_space(rng);
        let period = rng.gen_range(1.0f64..100.0);
        let excess = rng.gen_range(1.001f64..3.0);
        let surface = WcetSurface::flat(&space, period * excess).unwrap();
        assert!(Task::new(TaskId(0), period, surface).is_err());
    });
}

#[test]
fn alloc_ordering_is_consistent_with_space_iteration() {
    check(64, |rng| {
        // index_of is strictly monotone along iteration order, so it
        // can be used as a sort key.
        let space = arb_space(rng);
        let mut prev = None;
        for alloc in space.iter() {
            let idx = space.index_of(alloc);
            if let Some(p) = prev {
                assert!(idx > p);
            }
            prev = Some(idx);
        }
    });
}

#[test]
fn contains_matches_check() {
    check(64, |rng| {
        let space = arb_space(rng);
        let alloc = Alloc::new(rng.gen_range(0u32..40), rng.gen_range(0u32..40));
        assert_eq!(space.contains(alloc), space.check(alloc).is_ok());
    });
}

#[test]
fn arbitrary_alloc_in_space_is_contained() {
    check(64, |rng| {
        let space = arb_space(rng);
        let alloc = arb_alloc_in(space, rng);
        assert!(space.contains(alloc));
    });
}
