//! Property-based tests for the core model types.

use proptest::prelude::*;
use vc2m_model::{are_harmonic, Alloc, ResourceSpace, Surface, Task, TaskId, TaskSet, WcetSurface};

fn arb_space() -> impl Strategy<Value = ResourceSpace> {
    (1u32..4, 4u32..24, 1u32..3, 3u32..24).prop_map(|(cmin, cspan, bmin, bspan)| {
        ResourceSpace::new(cmin, cmin + cspan, bmin, bmin + bspan).expect("valid by construction")
    })
}

fn arb_alloc_in(space: ResourceSpace) -> impl Strategy<Value = Alloc> {
    (
        space.cache_min()..=space.cache_max(),
        space.bw_min()..=space.bw_max(),
    )
        .prop_map(|(c, b)| Alloc::new(c, b))
}

proptest! {
    #[test]
    fn index_of_is_a_bijection_onto_iteration_order(space in arb_space()) {
        let allocs: Vec<Alloc> = space.iter().collect();
        prop_assert_eq!(allocs.len(), space.len());
        for (i, alloc) in allocs.iter().enumerate() {
            prop_assert_eq!(space.index_of(*alloc), i);
            prop_assert!(space.contains(*alloc));
        }
    }

    #[test]
    fn surfaces_roundtrip_through_values(space in arb_space(), seed in 1u64..1000) {
        // Pseudo-random positive values derived from the seed.
        let surface = Surface::from_fn(&space, |a| {
            1.0 + ((seed.wrapping_mul(31).wrapping_add(u64::from(a.cache * 37 + a.bandwidth))) % 97) as f64
        }).expect("positive values");
        for (alloc, v) in surface.iter() {
            prop_assert_eq!(surface.at(alloc), v);
        }
        prop_assert_eq!(surface.iter().count(), space.len());
    }

    #[test]
    fn slowdown_vector_is_scale_invariant(
        space in arb_space(),
        scale in 0.1f64..100.0,
    ) {
        let base = Surface::from_fn(&space, |a| {
            1.0 + 10.0 / f64::from(a.cache + a.bandwidth)
        }).expect("positive");
        let scaled = base.scaled(scale);
        let sv_base = base.slowdown_vector();
        let sv_scaled = scaled.slowdown_vector();
        for alloc in space.iter() {
            prop_assert!((sv_base.at(alloc) - sv_scaled.at(alloc)).abs() < 1e-9);
        }
        // And the reference entry is exactly 1.
        prop_assert!((sv_base.at(space.reference()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_surfaces_have_worst_case_at_minimum(space in arb_space()) {
        let surface = Surface::from_fn(&space, |a| {
            1.0 + 5.0 * f64::from(space.cache_max() - a.cache)
                + 3.0 * f64::from(space.bw_max() - a.bandwidth)
        }).expect("positive");
        prop_assert!(surface.is_monotone_non_increasing());
        prop_assert!((surface.at_minimum() - surface.max_value()).abs() < 1e-9);
        prop_assert!(surface.max_slowdown() >= 1.0);
    }

    #[test]
    fn surface_addition_is_pointwise(
        space in arb_space(),
        a in 0.5f64..10.0,
        b in 0.5f64..10.0,
    ) {
        let sa = Surface::flat(&space, a).expect("positive");
        let sb = Surface::flat(&space, b).expect("positive");
        let sum = sa.try_add(&sb).expect("same space");
        for alloc in space.iter() {
            prop_assert!((sum.at(alloc) - (a + b)).abs() < 1e-12);
        }
    }

    #[test]
    fn power_of_two_periods_are_always_harmonic(
        base in 1.0f64..1000.0,
        exponents in proptest::collection::vec(0u32..6, 1..10),
    ) {
        let periods: Vec<f64> = exponents.iter().map(|&e| base * f64::from(1u32 << e)).collect();
        prop_assert!(are_harmonic(periods.iter().copied()));
        // Subsets of harmonic sets are harmonic.
        prop_assert!(are_harmonic(periods.iter().copied().take(1)));
    }

    #[test]
    fn coprime_ish_periods_are_not_harmonic(k in 2u32..50) {
        // p and p + 1 never divide each other for p >= 2.
        let p = f64::from(k);
        prop_assert!(!are_harmonic([p, p + 1.0]));
    }

    #[test]
    fn taskset_utilization_is_additive(
        space in arb_space(),
        wcets in proptest::collection::vec(0.1f64..5.0, 1..8),
    ) {
        let period = 100.0;
        let tasks: TaskSet = wcets
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                Task::new(TaskId(i), period, WcetSurface::flat(&space, w).unwrap()).unwrap()
            })
            .collect();
        let expected: f64 = wcets.iter().map(|w| w / period).sum();
        prop_assert!((tasks.reference_utilization() - expected).abs() < 1e-9);
        let alloc_util = tasks.utilization(space.minimum());
        prop_assert!((alloc_util - expected).abs() < 1e-9, "flat surfaces: same util everywhere");
    }

    #[test]
    fn task_rejects_wcet_exceeding_period(
        space in arb_space(),
        period in 1.0f64..100.0,
        excess in 1.001f64..3.0,
    ) {
        let surface = WcetSurface::flat(&space, period * excess).unwrap();
        prop_assert!(Task::new(TaskId(0), period, surface).is_err());
    }
}

proptest! {
    #[test]
    fn alloc_ordering_is_consistent_with_space_iteration(space in arb_space(), seed in 0u64..100) {
        // index_of is strictly monotone along iteration order, so it
        // can be used as a sort key.
        let _ = seed;
        let mut prev = None;
        for alloc in space.iter() {
            let idx = space.index_of(alloc);
            if let Some(p) = prev {
                prop_assert!(idx > p);
            }
            prev = Some(idx);
        }
    }

    #[test]
    fn contains_matches_check(space in arb_space(), c in 0u32..40, b in 0u32..40) {
        let alloc = Alloc::new(c, b);
        prop_assert_eq!(space.contains(alloc), space.check(alloc).is_ok());
    }

    #[test]
    fn arbitrary_alloc_in_space_is_contained(space in arb_space()) {
        // Draw one allocation from the dependent strategy.
        use proptest::strategy::ValueTree;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let alloc = arb_alloc_in(space)
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        prop_assert!(space.contains(alloc));
    }
}
