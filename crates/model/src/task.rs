//! Implicit-deadline periodic tasks with allocation-dependent WCETs.

use crate::{Alloc, ModelError, SlowdownVector, TaskId, WcetSurface};
use std::fmt;

/// An implicit-deadline periodic task τᵢ = (pᵢ, {eᵢ(c,b)}).
///
/// The period (and deadline) is in milliseconds; the WCET surface gives
/// the task's worst-case execution time under each per-core cache and
/// bandwidth allocation (Section 4.1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    id: TaskId,
    period_ms: f64,
    wcet: WcetSurface,
}

impl Task {
    /// Creates a task with the given period (ms) and WCET surface.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonPositiveTime`] if the period is not positive
    ///   and finite.
    /// * [`ModelError::ExceedsPeriod`] if the *reference* WCET exceeds
    ///   the period — such a task can never be schedulable even with all
    ///   resources. (WCETs under smaller allocations may legitimately
    ///   exceed the period; the allocator simply cannot use those cells.)
    pub fn new(id: TaskId, period_ms: f64, wcet: WcetSurface) -> Result<Self, ModelError> {
        if !period_ms.is_finite() || period_ms <= 0.0 {
            return Err(ModelError::NonPositiveTime {
                what: "period",
                value: period_ms,
            });
        }
        if wcet.reference() > period_ms {
            return Err(ModelError::ExceedsPeriod {
                what: "reference wcet",
                value: wcet.reference(),
                period: period_ms,
            });
        }
        Ok(Task {
            id,
            period_ms,
            wcet,
        })
    }

    /// The task's identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's period (= deadline) in milliseconds.
    pub fn period(&self) -> f64 {
        self.period_ms
    }

    /// The task's WCET surface eᵢ(c,b).
    pub fn wcet_surface(&self) -> &WcetSurface {
        &self.wcet
    }

    /// WCET under allocation `alloc`, in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the platform's resource space.
    pub fn wcet(&self, alloc: Alloc) -> f64 {
        self.wcet.at(alloc)
    }

    /// The reference WCET e*ᵢ = eᵢ(C,B).
    pub fn reference_wcet(&self) -> f64 {
        self.wcet.reference()
    }

    /// Reference utilization e*ᵢ/pᵢ — the load metric used throughout
    /// the allocation heuristics.
    pub fn reference_utilization(&self) -> f64 {
        self.reference_wcet() / self.period_ms
    }

    /// Utilization eᵢ(c,b)/pᵢ under allocation `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the platform's resource space.
    pub fn utilization(&self, alloc: Alloc) -> f64 {
        self.wcet(alloc) / self.period_ms
    }

    /// The task's slowdown vector sᵢ (clustering feature).
    pub fn slowdown_vector(&self) -> SlowdownVector {
        self.wcet.slowdown_vector()
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(p={:.3}ms, e*={:.3}ms, u*={:.3})",
            self.id,
            self.period_ms,
            self.reference_wcet(),
            self.reference_utilization()
        )
    }
}

/// An owned collection of tasks (one VM's workload, or a whole
/// generated taskset).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty taskset.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Creates a taskset from a vector of tasks.
    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }

    /// Adds a task.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrowing iterator over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// The tasks as a slice.
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Sum of reference utilizations Σ e*ᵢ/pᵢ — the "taskset reference
    /// utilization" on the x-axis of Figures 2–4.
    pub fn reference_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::reference_utilization).sum()
    }

    /// Sum of utilizations under a common allocation `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the tasks' resource space.
    pub fn utilization(&self, alloc: Alloc) -> f64 {
        self.tasks.iter().map(|t| t.utilization(alloc)).sum()
    }

    /// Whether every pair of task periods divides one another — the
    /// harmonicity condition of Theorem 2.
    pub fn is_harmonic(&self) -> bool {
        are_harmonic(self.tasks.iter().map(Task::period))
    }

    /// The smallest period in the set, which Theorem 2 uses as the
    /// well-regulated VCPU's period.
    ///
    /// Returns `None` for an empty set.
    pub fn min_period(&self) -> Option<f64> {
        self.tasks
            .iter()
            .map(Task::period)
            .min_by(|a, b| a.partial_cmp(b).expect("periods are finite"))
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

/// Whether a collection of periods is pairwise harmonic: for every two
/// periods pᵢ, pⱼ, either pᵢ divides pⱼ or pⱼ divides pᵢ.
///
/// Division is checked to a relative tolerance of 1e-9 to absorb
/// floating-point representation error in generated periods.
pub fn are_harmonic(periods: impl IntoIterator<Item = f64>) -> bool {
    let mut ps: Vec<f64> = periods.into_iter().collect();
    ps.sort_by(|a, b| a.partial_cmp(b).expect("periods are finite"));
    ps.windows(2).all(|w| divides(w[0], w[1]))
}

/// Whether `small` divides `large` up to relative tolerance.
fn divides(small: f64, large: f64) -> bool {
    if small <= 0.0 {
        return false;
    }
    let ratio = large / small;
    (ratio - ratio.round()).abs() <= 1e-9 * ratio.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceSpace;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 4, 1, 3).expect("valid space")
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates_period_and_wcet() {
        let w = WcetSurface::flat(&space(), 1.0).unwrap();
        assert!(matches!(
            Task::new(TaskId(0), 0.0, w.clone()),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            Task::new(TaskId(0), f64::INFINITY, w.clone()),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            Task::new(TaskId(0), -3.0, w.clone()),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            Task::new(TaskId(0), f64::NAN, w.clone()),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            Task::new(TaskId(0), 0.5, w),
            Err(ModelError::ExceedsPeriod { .. })
        ));
    }

    #[test]
    fn reference_wcet_above_period_is_rejected_but_corner_wcet_is_not() {
        // WCET 5 at the minimum corner, 1 at reference, period 2:
        // only the reference must fit.
        let surface =
            WcetSurface::from_fn(
                &space(),
                |a| {
                    if a == space().reference() {
                        1.0
                    } else {
                        5.0
                    }
                },
            )
            .unwrap();
        let t = Task::new(TaskId(0), 2.0, surface).unwrap();
        assert_eq!(t.reference_wcet(), 1.0);
        assert_eq!(t.wcet(space().minimum()), 5.0);
    }

    #[test]
    fn utilizations() {
        let t = task(0, 10.0, 1.0);
        assert!((t.reference_utilization() - 0.1).abs() < 1e-12);
        assert!((t.utilization(Alloc::new(2, 1)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn taskset_aggregates() {
        let ts: TaskSet = vec![task(0, 10.0, 1.0), task(1, 20.0, 4.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.len(), 2);
        assert!((ts.reference_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(ts.min_period(), Some(10.0));
        assert!(ts.is_harmonic());
    }

    #[test]
    fn harmonicity() {
        assert!(are_harmonic([100.0, 200.0, 400.0]));
        assert!(are_harmonic([100.0, 100.0]));
        assert!(are_harmonic([300.0]));
        assert!(are_harmonic(std::iter::empty::<f64>()));
        assert!(!are_harmonic([100.0, 150.0]));
        // Sorted-adjacent divisibility implies pairwise: 2,6,12 harmonic,
        // but 2,3,12 is caught because 2 does not divide 3.
        assert!(are_harmonic([2.0, 6.0, 12.0]));
        assert!(!are_harmonic([2.0, 3.0, 12.0]));
    }

    #[test]
    fn harmonicity_tolerates_float_noise() {
        let base = 1100.0 / 3.0;
        assert!(are_harmonic([base, base * 2.0, base * 4.0]));
    }

    #[test]
    fn empty_taskset() {
        let ts = TaskSet::new();
        assert!(ts.is_empty());
        assert_eq!(ts.min_period(), None);
        assert!(ts.is_harmonic());
        assert_eq!(ts.reference_utilization(), 0.0);
    }

    #[test]
    fn extend_and_iterate() {
        let mut ts = TaskSet::new();
        ts.extend(vec![task(0, 10.0, 1.0)]);
        ts.push(task(1, 10.0, 2.0));
        assert_eq!(ts.iter().count(), 2);
        assert_eq!((&ts).into_iter().count(), 2);
        assert_eq!(ts.into_iter().count(), 2);
    }

    #[test]
    fn display_mentions_period_and_utilization() {
        let t = task(3, 10.0, 1.0);
        let s = t.to_string();
        assert!(s.contains("T3"));
        assert!(s.contains("p=10.000ms"));
    }
}
