//! Core vocabulary types for the vC²M reproduction.
//!
//! This crate defines the data model shared by every other crate in the
//! workspace: identifiers, time, resource partitions, WCET surfaces,
//! tasks, VCPUs, VMs and platforms — the objects of Section 4.1 of the
//! paper (*Holistic multi-resource allocation for multicore real-time
//! virtualization*, DAC 2019).
//!
//! # Model summary
//!
//! * A **platform** has `M` identical cores, a shared cache split into `C`
//!   equal partitions, and a memory bus split into `B` equal bandwidth
//!   partitions, with per-core minimum allocations `Cmin` and `Bmin`.
//! * A **task** τᵢ = (pᵢ, {eᵢ(c,b)}) is an implicit-deadline periodic task
//!   whose WCET depends on the cache/bandwidth allocation of its core.
//!   The WCET table is a [`WcetSurface`]; eᵢ(C,B) is the *reference WCET*
//!   and eᵢ(c,b)/eᵢ(C,B) the *slowdown vector*.
//! * A **VCPU** Vⱼ = (Πⱼ, {Θⱼ(c,b)}) is a periodic server whose budget is
//!   likewise allocation-dependent (a [`BudgetSurface`]).
//!
//! # Example
//!
//! ```
//! use vc2m_model::{Platform, Task, TaskId, WcetSurface};
//!
//! # fn main() -> Result<(), vc2m_model::ModelError> {
//! let platform = Platform::platform_a(); // 4 cores, 20 cache/BW partitions
//! let surface = WcetSurface::flat(&platform.resources(), 1.0)?;
//! let task = Task::new(TaskId(0), 10.0, surface)?;
//! assert!((task.reference_utilization() - 0.1).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod ids;
mod platform;
mod resources;
mod surface;
mod task;
mod time;
mod vcpu;
mod vm;

pub use error::ModelError;
pub use ids::{CoreId, TaskId, VcpuId, VmId};
pub use platform::{Platform, DEFAULT_BW_PARTITION_MBPS};
pub use resources::{Alloc, ResourceSpace};
pub use surface::{BudgetSurface, SlowdownVector, Surface, WcetSurface};
pub use task::{are_harmonic, Task, TaskSet};
pub use time::{ms_to_ns, ns_to_ms, SimDuration, SimTime};
pub use vcpu::VcpuSpec;
pub use vm::{VmSpec, XEN_MAX_VCPUS};
