//! Virtual-machine specifications.

use crate::{ModelError, TaskSet, VmId};
use std::fmt;

/// A virtual machine: an identifier, its workload (a [`TaskSet`]), and
/// the maximum number of VCPUs the hypervisor supports for it.
///
/// The VCPU cap matters for the choice between the two
/// abstraction-overhead removal strategies: *flattening* (one VCPU per
/// task) requires `tasks ≤ max_vcpus`; the *well-regulated* strategy
/// (Theorem 2) has no such requirement. The paper notes Xen supports up
/// to 512 VCPUs per VM, which is the default here.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    id: VmId,
    tasks: TaskSet,
    max_vcpus: usize,
}

/// Xen's per-VM VCPU limit, cited in the paper's introduction.
pub const XEN_MAX_VCPUS: usize = 512;

impl VmSpec {
    /// Creates a VM with the default (Xen) VCPU cap of 512.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if the taskset is empty.
    pub fn new(id: VmId, tasks: TaskSet) -> Result<Self, ModelError> {
        VmSpec::with_max_vcpus(id, tasks, XEN_MAX_VCPUS)
    }

    /// Creates a VM with an explicit VCPU cap.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if the taskset is empty, or
    /// [`ModelError::InvalidPlatform`] if `max_vcpus` is zero.
    pub fn with_max_vcpus(id: VmId, tasks: TaskSet, max_vcpus: usize) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::Empty { what: "vm taskset" });
        }
        if max_vcpus == 0 {
            return Err(ModelError::InvalidPlatform {
                detail: "max_vcpus must be at least 1".into(),
            });
        }
        Ok(VmSpec {
            id,
            tasks,
            max_vcpus,
        })
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's workload.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The maximum number of VCPUs this VM may be given.
    pub fn max_vcpus(&self) -> usize {
        self.max_vcpus
    }

    /// Whether one-VCPU-per-task flattening is possible for this VM
    /// (the assumption of Theorem 1's direct-mapping strategy).
    pub fn supports_flattening(&self) -> bool {
        self.tasks.len() <= self.max_vcpus
    }

    /// Total reference utilization of the VM's workload.
    pub fn reference_utilization(&self) -> f64 {
        self.tasks.reference_utilization()
    }
}

impl fmt::Display for VmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} tasks, u*={:.3})",
            self.id,
            self.tasks.len(),
            self.reference_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResourceSpace, Task, TaskId, WcetSurface};

    fn taskset(n: usize) -> TaskSet {
        let space = ResourceSpace::new(2, 4, 1, 3).unwrap();
        (0..n)
            .map(|i| Task::new(TaskId(i), 10.0, WcetSurface::flat(&space, 1.0).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn constructor_validates() {
        assert!(matches!(
            VmSpec::new(VmId(0), TaskSet::new()),
            Err(ModelError::Empty { .. })
        ));
        assert!(VmSpec::with_max_vcpus(VmId(0), taskset(1), 0).is_err());
    }

    #[test]
    fn flattening_support_depends_on_cap() {
        let vm = VmSpec::with_max_vcpus(VmId(0), taskset(3), 2).unwrap();
        assert!(!vm.supports_flattening());
        let vm = VmSpec::with_max_vcpus(VmId(0), taskset(2), 2).unwrap();
        assert!(vm.supports_flattening());
        let vm = VmSpec::new(VmId(0), taskset(512)).unwrap();
        assert!(vm.supports_flattening());
    }

    #[test]
    fn utilization_aggregates() {
        let vm = VmSpec::new(VmId(1), taskset(3)).unwrap();
        assert!((vm.reference_utilization() - 0.3).abs() < 1e-12);
        assert!(vm.to_string().contains("VM1"));
        assert_eq!(vm.max_vcpus(), XEN_MAX_VCPUS);
    }
}
