//! Newtype identifiers for tasks, VCPUs, VMs and physical cores.
//!
//! Using distinct types (guideline C-NEWTYPE) prevents, e.g., indexing a
//! core table with a VCPU id — a bug class that is easy to hit in a
//! two-level scheduler.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw index carried by this identifier.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(value: usize) -> Self {
                $name(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> usize {
                value.0
            }
        }
    };
}

id_type!(
    /// Identifier of a periodic real-time task within the whole system.
    TaskId,
    "T"
);
id_type!(
    /// Identifier of a virtual CPU (periodic server scheduled by the
    /// hypervisor).
    VcpuId,
    "V"
);
id_type!(
    /// Identifier of a virtual machine.
    VmId,
    "VM"
);
id_type!(
    /// Identifier of a physical core.
    CoreId,
    "P"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_tag() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(VcpuId(0).to_string(), "V0");
        assert_eq!(VmId(7).to_string(), "VM7");
        assert_eq!(CoreId(2).to_string(), "P2");
    }

    #[test]
    fn roundtrip_usize() {
        let id = TaskId::from(42usize);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(CoreId(1));
        set.insert(CoreId(1));
        set.insert(CoreId(2));
        assert_eq!(set.len(), 2);
        assert!(VcpuId(1) < VcpuId(2));
    }
}
