//! VCPU specifications: periodic servers with allocation-dependent
//! budgets.

use crate::{Alloc, BudgetSurface, ModelError, SlowdownVector, TaskId, VcpuId, VmId};
use std::fmt;

/// A VCPU Vⱼ = (Πⱼ, {Θⱼ(c,b)}): a periodic server with period Πⱼ and an
/// execution budget that depends on its core's cache and bandwidth
/// allocation (Section 4.1).
///
/// The *CPU-bandwidth* of a VCPU under allocation `(c, b)` is
/// Θⱼ(c,b)/Πⱼ. A `VcpuSpec` also records which VM it belongs to and
/// which tasks the VM-level allocation placed on it, so the
/// hypervisor-level allocation and the simulator can reconstruct the
/// full two-level system.
#[derive(Debug, Clone, PartialEq)]
pub struct VcpuSpec {
    id: VcpuId,
    vm: VmId,
    period_ms: f64,
    budget: BudgetSurface,
    tasks: Vec<TaskId>,
}

impl VcpuSpec {
    /// Creates a VCPU specification.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonPositiveTime`] if the period is not positive
    ///   and finite.
    /// * [`ModelError::Empty`] if `tasks` is empty — an idle VCPU is
    ///   never produced by the allocation algorithms.
    ///
    /// Budgets exceeding the period are allowed in the surface (they
    /// mark allocations under which the VCPU is infeasible); feasibility
    /// at a given allocation is queried via [`VcpuSpec::is_feasible_at`].
    pub fn new(
        id: VcpuId,
        vm: VmId,
        period_ms: f64,
        budget: BudgetSurface,
        tasks: Vec<TaskId>,
    ) -> Result<Self, ModelError> {
        if !period_ms.is_finite() || period_ms <= 0.0 {
            return Err(ModelError::NonPositiveTime {
                what: "vcpu period",
                value: period_ms,
            });
        }
        if tasks.is_empty() {
            return Err(ModelError::Empty { what: "vcpu tasks" });
        }
        Ok(VcpuSpec {
            id,
            vm,
            period_ms,
            budget,
            tasks,
        })
    }

    /// The VCPU's identifier.
    pub fn id(&self) -> VcpuId {
        self.id
    }

    /// The VM this VCPU belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The VCPU's period Πⱼ in milliseconds.
    pub fn period(&self) -> f64 {
        self.period_ms
    }

    /// The budget surface Θⱼ(c,b).
    pub fn budget_surface(&self) -> &BudgetSurface {
        &self.budget
    }

    /// Budget under allocation `alloc`, in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the platform's resource space.
    pub fn budget(&self, alloc: Alloc) -> f64 {
        self.budget.at(alloc)
    }

    /// The reference budget Θ*ⱼ = Θⱼ(C,B).
    pub fn reference_budget(&self) -> f64 {
        self.budget.reference()
    }

    /// Reference CPU-bandwidth Θ*ⱼ/Πⱼ — the load metric used by the
    /// hypervisor-level packing phases.
    pub fn reference_utilization(&self) -> f64 {
        self.reference_budget() / self.period_ms
    }

    /// CPU-bandwidth Θⱼ(c,b)/Πⱼ under allocation `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the platform's resource space.
    pub fn utilization(&self, alloc: Alloc) -> f64 {
        self.budget(alloc) / self.period_ms
    }

    /// Whether the VCPU's budget fits within its period at `alloc`
    /// (Θⱼ(c,b) ≤ Πⱼ): the per-VCPU feasibility condition.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the platform's resource space.
    pub fn is_feasible_at(&self, alloc: Alloc) -> bool {
        self.budget(alloc) <= self.period_ms + 1e-12
    }

    /// The VCPU's slowdown vector Sⱼ = \[Θⱼ(c,b)/Θ*ⱼ\] (clustering
    /// feature of the hypervisor-level allocation).
    pub fn slowdown_vector(&self) -> SlowdownVector {
        self.budget.slowdown_vector()
    }

    /// The tasks the VM-level allocation assigned to this VCPU.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }
}

impl fmt::Display for VcpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}(Π={:.3}ms, Θ*={:.3}ms, {} tasks)",
            self.id,
            self.vm,
            self.period_ms,
            self.reference_budget(),
            self.tasks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceSpace;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 4, 1, 3).expect("valid space")
    }

    fn vcpu(period: f64, budget: f64) -> VcpuSpec {
        VcpuSpec::new(
            VcpuId(0),
            VmId(0),
            period,
            BudgetSurface::flat(&space(), budget).unwrap(),
            vec![TaskId(0)],
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates() {
        let b = BudgetSurface::flat(&space(), 1.0).unwrap();
        assert!(matches!(
            VcpuSpec::new(VcpuId(0), VmId(0), -1.0, b.clone(), vec![TaskId(0)]),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            VcpuSpec::new(VcpuId(0), VmId(0), 10.0, b, vec![]),
            Err(ModelError::Empty { .. })
        ));
    }

    #[test]
    fn utilization_and_feasibility() {
        let v = vcpu(10.0, 2.5);
        assert!((v.reference_utilization() - 0.25).abs() < 1e-12);
        assert!(v.is_feasible_at(Alloc::new(2, 1)));

        // Budget above period at the minimum corner: infeasible there.
        let surface =
            BudgetSurface::from_fn(
                &space(),
                |a| {
                    if a == space().minimum() {
                        12.0
                    } else {
                        2.0
                    }
                },
            )
            .unwrap();
        let v = VcpuSpec::new(VcpuId(1), VmId(0), 10.0, surface, vec![TaskId(1)]).unwrap();
        assert!(!v.is_feasible_at(space().minimum()));
        assert!(v.is_feasible_at(space().reference()));
    }

    #[test]
    fn slowdown_vector_reference_is_one() {
        let v = vcpu(10.0, 2.0);
        assert!((v.slowdown_vector().at(space().reference()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let v = vcpu(10.0, 2.0);
        assert_eq!(v.id(), VcpuId(0));
        assert_eq!(v.vm(), VmId(0));
        assert_eq!(v.tasks(), &[TaskId(0)]);
        assert!(v.to_string().contains("V0@VM0"));
    }
}
