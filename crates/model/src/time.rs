//! Time representation.
//!
//! Analysis code works in *milliseconds as `f64`* (the unit of the
//! paper's task periods, which are drawn from \[100, 1100\] ms).
//! The discrete-event simulator works in *integer nanoseconds* so that
//! event ordering is exact and runs are bit-for-bit reproducible.
//! [`SimTime`] and [`SimDuration`] are the simulator-side newtypes;
//! [`ms_to_ns`]/[`ns_to_ms`] convert between the two worlds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulator clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// Converts milliseconds (analysis units) to integer nanoseconds
/// (simulation units), rounding to the nearest nanosecond.
///
/// # Panics
///
/// Panics if `ms` is negative or too large to represent in a `u64`
/// nanosecond count (≈ 584 years — far beyond any simulation horizon).
pub fn ms_to_ns(ms: f64) -> u64 {
    assert!(
        ms.is_finite() && ms >= 0.0,
        "time in ms must be finite and non-negative, got {ms}"
    );
    let ns = ms * 1e6;
    assert!(ns <= u64::MAX as f64, "time {ms} ms overflows u64 ns");
    ns.round() as u64
}

/// Converts integer nanoseconds back to milliseconds.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from a millisecond value.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ms_to_ns`].
    pub fn from_ms(ms: f64) -> Self {
        SimTime(ms_to_ns(ms))
    }

    /// Returns this instant expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        ns_to_ms(self.0)
    }

    /// Returns the raw nanosecond count.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time cannot be
    /// negative on a forward-only simulation clock.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "since() requires earlier ({earlier}) <= self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from a millisecond value.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ms_to_ns`].
    pub fn from_ms(ms: f64) -> Self {
        SimDuration(ms_to_ns(ms))
    }

    /// Returns this duration expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        ns_to_ms(self.0)
    }

    /// Returns the raw nanosecond count.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_ns_roundtrip() {
        for ms in [0.0, 0.001, 1.0, 100.0, 1100.0, 123.456_789] {
            let ns = ms_to_ns(ms);
            assert!(
                (ns_to_ms(ns) - ms).abs() < 1e-9,
                "roundtrip failed for {ms}"
            );
        }
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0);
        let d = SimDuration::from_ms(2.5);
        assert_eq!((t + d).as_ms(), 12.5);
        assert_eq!((t + d).since(t), d);
        assert_eq!(d + d, SimDuration::from_ms(5.0));
        assert_eq!(d - SimDuration::from_ms(1.0), SimDuration::from_ms(1.5));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_ms(1.0);
        let late = SimTime::from_ms(2.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_ms(1.0).saturating_sub(SimDuration::from_ms(3.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "since() requires earlier")]
    fn since_panics_on_negative_elapsed() {
        let early = SimTime::from_ms(1.0);
        let late = SimTime::from_ms(2.0);
        let _ = early.since(late);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_ms_rejected() {
        let _ = ms_to_ns(-1.0);
    }

    #[test]
    fn display_mentions_unit() {
        assert!(SimTime::from_ms(1.5).to_string().contains("ms"));
        assert!(SimDuration::from_ms(1.5).to_string().contains("ms"));
    }

    #[test]
    fn ordering_is_exact() {
        // The motivation for integer time: equal ms values collide exactly.
        assert_eq!(SimTime::from_ms(0.1 + 0.2), SimTime::from_ms(0.3));
    }
}
