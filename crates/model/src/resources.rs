//! Cache/bandwidth resource spaces and allocations.
//!
//! The platform's shared cache is divided into `C` equal partitions and
//! its memory bus bandwidth into `B` equal partitions (Section 4.1).
//! A core is always allocated at least `Cmin` cache partitions and
//! `Bmin` bandwidth partitions. The pair `(c, b)` assigned to a core is
//! an [`Alloc`]; the set of valid pairs is a [`ResourceSpace`].

use crate::ModelError;
use std::fmt;

/// A concrete per-core resource allocation: `cache` cache partitions and
/// `bandwidth` memory-bandwidth partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Alloc {
    /// Number of cache partitions allocated.
    pub cache: u32,
    /// Number of memory-bandwidth partitions allocated.
    pub bandwidth: u32,
}

impl Alloc {
    /// Creates an allocation of `cache` cache partitions and `bandwidth`
    /// bandwidth partitions.
    pub fn new(cache: u32, bandwidth: u32) -> Self {
        Alloc { cache, bandwidth }
    }
}

impl fmt::Display for Alloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(c={}, b={})", self.cache, self.bandwidth)
    }
}

/// The rectangle of valid per-core allocations on a platform:
/// `cache_min ..= cache_max` × `bw_min ..= bw_max`.
///
/// `cache_max` equals the platform's total partition count `C` (a single
/// core may, in the degenerate one-core case, own the whole cache), and
/// likewise `bw_max = B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceSpace {
    cache_min: u32,
    cache_max: u32,
    bw_min: u32,
    bw_max: u32,
}

impl ResourceSpace {
    /// Creates a resource space.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidResourceSpace`] if any minimum is zero
    /// for bandwidth, below the hardware floor for cache, or a minimum
    /// exceeds its maximum.
    ///
    /// The cache floor is 1 partition (Intel CAT additionally requires
    /// ≥ 2-way masks on most SKUs; the paper profiles from c = 2, which
    /// callers express by passing `cache_min = 2`).
    pub fn new(
        cache_min: u32,
        cache_max: u32,
        bw_min: u32,
        bw_max: u32,
    ) -> Result<Self, ModelError> {
        if cache_min == 0 || bw_min == 0 {
            return Err(ModelError::InvalidResourceSpace {
                detail: format!(
                    "minimum allocations must be at least 1 (got cache_min={cache_min}, bw_min={bw_min})"
                ),
            });
        }
        if cache_min > cache_max {
            return Err(ModelError::InvalidResourceSpace {
                detail: format!("cache_min {cache_min} > cache_max {cache_max}"),
            });
        }
        if bw_min > bw_max {
            return Err(ModelError::InvalidResourceSpace {
                detail: format!("bw_min {bw_min} > bw_max {bw_max}"),
            });
        }
        Ok(ResourceSpace {
            cache_min,
            cache_max,
            bw_min,
            bw_max,
        })
    }

    /// Minimum cache partitions a core may hold (`Cmin`).
    pub fn cache_min(&self) -> u32 {
        self.cache_min
    }

    /// Total cache partitions on the platform (`C`).
    pub fn cache_max(&self) -> u32 {
        self.cache_max
    }

    /// Minimum bandwidth partitions a core may hold (`Bmin`).
    pub fn bw_min(&self) -> u32 {
        self.bw_min
    }

    /// Total bandwidth partitions on the platform (`B`).
    pub fn bw_max(&self) -> u32 {
        self.bw_max
    }

    /// The reference allocation `(C, B)` — all cache, all bandwidth —
    /// against which reference WCETs and slowdown vectors are defined.
    pub fn reference(&self) -> Alloc {
        Alloc::new(self.cache_max, self.bw_max)
    }

    /// The minimum allocation `(Cmin, Bmin)`, the starting point of the
    /// hypervisor-level resource-allocation phase.
    pub fn minimum(&self) -> Alloc {
        Alloc::new(self.cache_min, self.bw_min)
    }

    /// Whether `alloc` lies inside this space.
    pub fn contains(&self, alloc: Alloc) -> bool {
        (self.cache_min..=self.cache_max).contains(&alloc.cache)
            && (self.bw_min..=self.bw_max).contains(&alloc.bandwidth)
    }

    /// Validates that `alloc` lies inside this space.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AllocOutOfRange`] otherwise.
    pub fn check(&self, alloc: Alloc) -> Result<(), ModelError> {
        if self.contains(alloc) {
            Ok(())
        } else {
            Err(ModelError::AllocOutOfRange {
                cache: alloc.cache,
                bandwidth: alloc.bandwidth,
                space: self.to_string(),
            })
        }
    }

    /// Number of valid cache levels (`C - Cmin + 1`).
    pub fn cache_levels(&self) -> usize {
        (self.cache_max - self.cache_min + 1) as usize
    }

    /// Number of valid bandwidth levels (`B - Bmin + 1`).
    pub fn bw_levels(&self) -> usize {
        (self.bw_max - self.bw_min + 1) as usize
    }

    /// Total number of `(c, b)` cells in the space.
    pub fn len(&self) -> usize {
        self.cache_levels() * self.bw_levels()
    }

    /// Whether the space contains no cell (never true for a validly
    /// constructed space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of `alloc` within the space, used by
    /// surfaces to store their data contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` is outside the space; use [`ResourceSpace::check`]
    /// first when the allocation is untrusted.
    pub fn index_of(&self, alloc: Alloc) -> usize {
        assert!(
            self.contains(alloc),
            "allocation {alloc} outside resource space {self}"
        );
        let row = (alloc.cache - self.cache_min) as usize;
        let col = (alloc.bandwidth - self.bw_min) as usize;
        row * self.bw_levels() + col
    }

    /// Iterates over every allocation in the space in row-major
    /// (cache-major) order — the order surfaces store their entries.
    pub fn iter(&self) -> impl Iterator<Item = Alloc> + '_ {
        let bw_range = self.bw_min..=self.bw_max;
        (self.cache_min..=self.cache_max)
            .flat_map(move |c| bw_range.clone().map(move |b| Alloc::new(c, b)))
    }
}

impl fmt::Display for ResourceSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c in {}..={}, b in {}..={}",
            self.cache_min, self.cache_max, self.bw_min, self.bw_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 20, 1, 20).expect("valid space")
    }

    #[test]
    fn construction_validates() {
        assert!(ResourceSpace::new(0, 20, 1, 20).is_err());
        assert!(ResourceSpace::new(2, 20, 0, 20).is_err());
        assert!(ResourceSpace::new(21, 20, 1, 20).is_err());
        assert!(ResourceSpace::new(2, 20, 21, 20).is_err());
        assert!(ResourceSpace::new(1, 1, 1, 1).is_ok());
    }

    #[test]
    fn geometry() {
        let s = space();
        assert_eq!(s.cache_levels(), 19);
        assert_eq!(s.bw_levels(), 20);
        assert_eq!(s.len(), 380);
        assert!(!s.is_empty());
        assert_eq!(s.reference(), Alloc::new(20, 20));
        assert_eq!(s.minimum(), Alloc::new(2, 1));
    }

    #[test]
    fn containment_and_check() {
        let s = space();
        assert!(s.contains(Alloc::new(2, 1)));
        assert!(s.contains(Alloc::new(20, 20)));
        assert!(!s.contains(Alloc::new(1, 1)));
        assert!(!s.contains(Alloc::new(2, 21)));
        assert!(s.check(Alloc::new(3, 3)).is_ok());
        assert!(matches!(
            s.check(Alloc::new(1, 1)),
            Err(ModelError::AllocOutOfRange { .. })
        ));
    }

    #[test]
    fn index_matches_iteration_order() {
        let s = space();
        for (i, alloc) in s.iter().enumerate() {
            assert_eq!(s.index_of(alloc), i);
        }
        assert_eq!(s.iter().count(), s.len());
    }

    #[test]
    fn index_corners() {
        let s = space();
        assert_eq!(s.index_of(Alloc::new(2, 1)), 0);
        assert_eq!(s.index_of(Alloc::new(2, 20)), 19);
        assert_eq!(s.index_of(Alloc::new(3, 1)), 20);
        assert_eq!(s.index_of(Alloc::new(20, 20)), 379);
    }

    #[test]
    #[should_panic(expected = "outside resource space")]
    fn index_of_out_of_range_panics() {
        let _ = space().index_of(Alloc::new(1, 1));
    }

    #[test]
    fn display_shows_ranges() {
        assert_eq!(space().to_string(), "c in 2..=20, b in 1..=20");
        assert_eq!(Alloc::new(4, 7).to_string(), "(c=4, b=7)");
    }
}
