//! Multicore platform descriptions.

use crate::{ModelError, ResourceSpace};
use std::fmt;

/// A multicore platform: `M` identical cores, a shared last-level cache
/// divided into `C` equal partitions, and a memory bus divided into `B`
/// equal bandwidth partitions (Section 4.1).
///
/// The three named constructors reproduce the paper's evaluation
/// platforms (Section 5.1), each of which sets `B = C`:
///
/// | Platform | Processor (paper) | Cores | Partitions |
/// |----------|------------------|-------|------------|
/// | [`Platform::platform_a`] | Intel Xeon 2618L v3 | 4 | 20 |
/// | [`Platform::platform_b`] | Intel Xeon D-1528   | 6 | 20 |
/// | [`Platform::platform_c`] | Intel Xeon D-1518   | 4 | 12 |
///
/// The paper profiles WCETs from `c = 2` cache partitions and `b = 1`
/// bandwidth partitions upward, so `Cmin = 2` and `Bmin = 1` are the
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Platform {
    cores: usize,
    resources: ResourceSpace,
    bw_partition_mbps: u32,
}

/// Default size of one bandwidth partition, in MB/s. MemGuard-style
/// regulators divide guaranteed DRAM bandwidth (≈ 1.2 GB/s per the
/// MemGuard paper's platform) into equal budgets; with 20 partitions a
/// convenient round unit is 60 MB/s.
pub const DEFAULT_BW_PARTITION_MBPS: u32 = 60;

impl Platform {
    /// Creates a platform with `cores` cores and `partitions` cache and
    /// bandwidth partitions each (`C = B`, as in the paper's platforms),
    /// with `Cmin = 2`, `Bmin = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlatform`] if `cores` is zero or the
    /// partition counts cannot form a valid resource space (e.g. fewer
    /// than 2 cache partitions).
    pub fn symmetric(cores: usize, partitions: u32) -> Result<Self, ModelError> {
        Platform::new(cores, partitions, partitions, 2, 1)
    }

    /// Creates a fully custom platform.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlatform`] if `cores` is zero, or
    /// [`ModelError::InvalidResourceSpace`] if the partition bounds are
    /// inconsistent.
    pub fn new(
        cores: usize,
        cache_partitions: u32,
        bw_partitions: u32,
        cache_min: u32,
        bw_min: u32,
    ) -> Result<Self, ModelError> {
        if cores == 0 {
            return Err(ModelError::InvalidPlatform {
                detail: "platform must have at least one core".into(),
            });
        }
        let resources = ResourceSpace::new(cache_min, cache_partitions, bw_min, bw_partitions)?;
        Ok(Platform {
            cores,
            resources,
            bw_partition_mbps: DEFAULT_BW_PARTITION_MBPS,
        })
    }

    /// Platform A of the evaluation: 4 cores, 20 cache/BW partitions
    /// (modeled on the Intel Xeon E5-2618L v3 prototype machine).
    pub fn platform_a() -> Self {
        Platform::symmetric(4, 20).expect("platform A parameters are valid")
    }

    /// Platform B of the evaluation: 6 cores, 20 cache/BW partitions
    /// (modeled on the Intel Xeon D-1528).
    pub fn platform_b() -> Self {
        Platform::symmetric(6, 20).expect("platform B parameters are valid")
    }

    /// Platform C of the evaluation: 4 cores, 12 cache/BW partitions
    /// (modeled on the Intel Xeon D-1518).
    pub fn platform_c() -> Self {
        Platform::symmetric(4, 12).expect("platform C parameters are valid")
    }

    /// Number of physical cores `M`.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The valid per-core allocation space (carries `C`, `B`, `Cmin`,
    /// `Bmin`).
    pub fn resources(&self) -> ResourceSpace {
        self.resources
    }

    /// Total cache partitions `C`.
    pub fn cache_partitions(&self) -> u32 {
        self.resources.cache_max()
    }

    /// Total bandwidth partitions `B`.
    pub fn bw_partitions(&self) -> u32 {
        self.resources.bw_max()
    }

    /// Size of one bandwidth partition in MB/s (used by the
    /// bandwidth-regulator substrate to convert partition counts into
    /// per-regulation-period byte budgets).
    pub fn bw_partition_mbps(&self) -> u32 {
        self.bw_partition_mbps
    }

    /// Returns a copy of the platform with a different bandwidth
    /// partition size.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero.
    pub fn with_bw_partition_mbps(mut self, mbps: u32) -> Self {
        assert!(mbps > 0, "bandwidth partition size must be positive");
        self.bw_partition_mbps = mbps;
        self
    }

    /// Whether the cache can supply every one of `m` cores its minimum
    /// share simultaneously — an upper bound on how many cores an
    /// allocation can use.
    pub fn supports_cores(&self, m: usize) -> bool {
        m <= self.cores
            && (m as u64) * u64::from(self.resources.cache_min())
                <= u64::from(self.resources.cache_max())
            && (m as u64) * u64::from(self.resources.bw_min()) <= u64::from(self.resources.bw_max())
    }

    /// The largest number of cores that can simultaneously hold minimum
    /// allocations (≤ `M`).
    pub fn max_usable_cores(&self) -> usize {
        (1..=self.cores)
            .rev()
            .find(|&m| self.supports_cores(m))
            .unwrap_or(0)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores, C={}, B={} ({})",
            self.cores,
            self.resources.cache_max(),
            self.resources.bw_max(),
            self.resources
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_platforms_match_paper() {
        let a = Platform::platform_a();
        assert_eq!(a.cores(), 4);
        assert_eq!(a.cache_partitions(), 20);
        assert_eq!(a.bw_partitions(), 20);
        let b = Platform::platform_b();
        assert_eq!(b.cores(), 6);
        assert_eq!(b.cache_partitions(), 20);
        let c = Platform::platform_c();
        assert_eq!(c.cores(), 4);
        assert_eq!(c.cache_partitions(), 12);
        // Paper: Cmin = 2 (CAT), Bmin = 1.
        assert_eq!(a.resources().cache_min(), 2);
        assert_eq!(a.resources().bw_min(), 1);
    }

    #[test]
    fn constructor_validates() {
        assert!(Platform::symmetric(0, 20).is_err());
        assert!(Platform::new(4, 1, 20, 2, 1).is_err()); // cache_min > cache_max
    }

    #[test]
    fn core_support_bounds() {
        let a = Platform::platform_a();
        assert!(a.supports_cores(4)); // 4 * 2 = 8 <= 20
        assert!(!a.supports_cores(5)); // more than M
        assert_eq!(a.max_usable_cores(), 4);

        // A tight platform: 4 cores but only 6 cache partitions at Cmin=2
        // supports at most 3 cores.
        let tight = Platform::new(4, 6, 20, 2, 1).unwrap();
        assert!(tight.supports_cores(3));
        assert!(!tight.supports_cores(4));
        assert_eq!(tight.max_usable_cores(), 3);
    }

    #[test]
    fn bw_partition_size() {
        let p = Platform::platform_a();
        assert_eq!(p.bw_partition_mbps(), DEFAULT_BW_PARTITION_MBPS);
        assert_eq!(p.with_bw_partition_mbps(100).bw_partition_mbps(), 100);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bw_partition_size_panics() {
        let _ = Platform::platform_a().with_bw_partition_mbps(0);
    }

    #[test]
    fn display_mentions_geometry() {
        let s = Platform::platform_a().to_string();
        assert!(s.contains("4 cores"));
        assert!(s.contains("C=20"));
    }
}
