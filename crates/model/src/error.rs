//! Error type shared by model constructors and validators.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or validating model objects.
///
/// Every constructor in this crate validates its arguments
/// (guideline C-VALIDATE) and reports violations through this type.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A time quantity (period, WCET, budget) was not strictly positive
    /// and finite where it must be.
    NonPositiveTime {
        /// Name of the offending quantity, e.g. `"period"`.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A WCET/budget exceeded the period it must fit inside.
    ExceedsPeriod {
        /// Name of the offending quantity.
        what: &'static str,
        /// The rejected value.
        value: f64,
        /// The period it was compared against.
        period: f64,
    },
    /// A resource-space bound was inconsistent
    /// (e.g. `cache_min > cache_max`, or a zero partition count).
    InvalidResourceSpace {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A surface was built with the wrong number of entries for its
    /// resource space.
    SurfaceShapeMismatch {
        /// Number of entries expected (`|c-range| × |b-range|`).
        expected: usize,
        /// Number of entries supplied.
        actual: usize,
    },
    /// A surface contained a non-finite or non-positive entry.
    InvalidSurfaceEntry {
        /// Cache allocation of the offending cell.
        cache: u32,
        /// Bandwidth allocation of the offending cell.
        bandwidth: u32,
        /// The rejected value.
        value: f64,
    },
    /// An allocation `(c, b)` fell outside the platform's resource space.
    AllocOutOfRange {
        /// The cache allocation requested.
        cache: u32,
        /// The bandwidth allocation requested.
        bandwidth: u32,
        /// Description of the valid region.
        space: String,
    },
    /// A platform parameter was invalid (e.g. zero cores).
    InvalidPlatform {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A collection that must be non-empty was empty.
    Empty {
        /// Name of the collection, e.g. `"taskset"`.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveTime { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            ModelError::ExceedsPeriod {
                what,
                value,
                period,
            } => write!(f, "{what} {value} exceeds period {period}"),
            ModelError::InvalidResourceSpace { detail } => {
                write!(f, "invalid resource space: {detail}")
            }
            ModelError::SurfaceShapeMismatch { expected, actual } => write!(
                f,
                "surface shape mismatch: expected {expected} entries, got {actual}"
            ),
            ModelError::InvalidSurfaceEntry {
                cache,
                bandwidth,
                value,
            } => write!(
                f,
                "invalid surface entry at (c={cache}, b={bandwidth}): {value}"
            ),
            ModelError::AllocOutOfRange {
                cache,
                bandwidth,
                space,
            } => write!(
                f,
                "allocation (c={cache}, b={bandwidth}) outside resource space {space}"
            ),
            ModelError::InvalidPlatform { detail } => {
                write!(f, "invalid platform: {detail}")
            }
            ModelError::Empty { what } => write!(f, "{what} must not be empty"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            ModelError::NonPositiveTime {
                what: "period",
                value: -1.0,
            },
            ModelError::ExceedsPeriod {
                what: "wcet",
                value: 5.0,
                period: 4.0,
            },
            ModelError::InvalidResourceSpace {
                detail: "cache_min > cache_max".into(),
            },
            ModelError::SurfaceShapeMismatch {
                expected: 4,
                actual: 3,
            },
            ModelError::InvalidSurfaceEntry {
                cache: 2,
                bandwidth: 1,
                value: f64::NAN,
            },
            ModelError::AllocOutOfRange {
                cache: 0,
                bandwidth: 0,
                space: "c in 2..=20".into(),
            },
            ModelError::InvalidPlatform {
                detail: "zero cores".into(),
            },
            ModelError::Empty { what: "taskset" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
