//! WCET / budget surfaces over the resource space.
//!
//! A *surface* is a table of positive values indexed by a per-core
//! allocation `(c, b)`: the WCET eᵢ(c,b) of a task, or the budget
//! Θⱼ(c,b) of a VCPU (Section 4.1). The value at the reference
//! allocation `(C, B)` is the *reference value*; dividing the table by
//! it yields the *slowdown vector*, which captures how sensitive the
//! task/VCPU is to cache and bandwidth resources and is the feature
//! vector used by the k-means clustering in the allocation algorithms.

use crate::{Alloc, ModelError, ResourceSpace};
use std::fmt;

/// A dense table of positive `f64` values over a [`ResourceSpace`].
///
/// Stored row-major with cache as the major axis, matching
/// [`ResourceSpace::index_of`].
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    space: ResourceSpace,
    values: Vec<f64>,
}

/// A task's WCET table eᵢ(c,b). Alias of [`Surface`] kept distinct in
/// signatures for readability.
pub type WcetSurface = Surface;

/// A VCPU's budget table Θⱼ(c,b). Alias of [`Surface`].
pub type BudgetSurface = Surface;

impl Surface {
    /// Builds a surface from `values` listed in the row-major order of
    /// [`ResourceSpace::iter`].
    ///
    /// # Errors
    ///
    /// * [`ModelError::SurfaceShapeMismatch`] if `values.len()` differs
    ///   from `space.len()`.
    /// * [`ModelError::InvalidSurfaceEntry`] if any entry is not finite
    ///   and strictly positive.
    pub fn from_values(space: ResourceSpace, values: Vec<f64>) -> Result<Self, ModelError> {
        if values.len() != space.len() {
            return Err(ModelError::SurfaceShapeMismatch {
                expected: space.len(),
                actual: values.len(),
            });
        }
        for (alloc, &v) in space.iter().zip(&values) {
            if !v.is_finite() || v <= 0.0 {
                return Err(ModelError::InvalidSurfaceEntry {
                    cache: alloc.cache,
                    bandwidth: alloc.bandwidth,
                    value: v,
                });
            }
        }
        Ok(Surface { space, values })
    }

    /// Builds a surface by evaluating `f` at every allocation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSurfaceEntry`] if `f` produces a
    /// non-finite or non-positive value anywhere.
    pub fn from_fn(
        space: &ResourceSpace,
        mut f: impl FnMut(Alloc) -> f64,
    ) -> Result<Self, ModelError> {
        let values: Vec<f64> = space.iter().map(&mut f).collect();
        Surface::from_values(*space, values)
    }

    /// Builds a surface that is the constant `value` everywhere —
    /// convenient for resource-insensitive tasks and for tests.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSurfaceEntry`] if `value` is not
    /// finite and strictly positive.
    pub fn flat(space: &ResourceSpace, value: f64) -> Result<Self, ModelError> {
        Surface::from_fn(space, |_| value)
    }

    /// The resource space this surface is defined over.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// Value at allocation `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` lies outside the surface's resource space.
    pub fn at(&self, alloc: Alloc) -> f64 {
        self.values[self.space.index_of(alloc)]
    }

    /// Value at the reference allocation `(C, B)` — the reference WCET
    /// e*ᵢ for tasks, or the reference budget Θ*ⱼ for VCPUs.
    pub fn reference(&self) -> f64 {
        self.at(self.space.reference())
    }

    /// Value at the minimum allocation `(Cmin, Bmin)` — the worst case
    /// over the space for monotone surfaces.
    pub fn at_minimum(&self) -> f64 {
        self.at(self.space.minimum())
    }

    /// The maximum value anywhere on the surface.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The slowdown vector sᵢ = \[eᵢ(c,b)/e*ᵢ\] of this surface
    /// (Section 4.1), used as the clustering feature.
    pub fn slowdown_vector(&self) -> SlowdownVector {
        SlowdownVector {
            space: self.space,
            values: self.slowdown_values(),
        }
    }

    /// The raw slowdown values eᵢ(c,b)/e*ᵢ in row-major order, without
    /// the [`SlowdownVector`] wrapper — the bare feature row consumed
    /// by the k-means clustering. Same numbers as
    /// `self.slowdown_vector().as_slice().to_vec()` with a single
    /// allocation instead of two.
    pub fn slowdown_values(&self) -> Vec<f64> {
        let reference = self.reference();
        self.values.iter().map(|v| v / reference).collect()
    }

    /// Batch slowdown-surface evaluation: one feature row per surface,
    /// in input order. The allocation algorithms feed a whole
    /// taskset's (or VCPU set's) surfaces through this before
    /// clustering.
    pub fn batch_slowdown_rows<'a>(
        surfaces: impl IntoIterator<Item = &'a Surface>,
    ) -> Vec<Vec<f64>> {
        surfaces.into_iter().map(Surface::slowdown_values).collect()
    }

    /// The maximum slowdown factor s^max = max eᵢ(c,b) / e*ᵢ.
    pub fn max_slowdown(&self) -> f64 {
        self.max_value() / self.reference()
    }

    /// Returns a new surface scaled by the positive factor `k`
    /// (used when deriving a task's WCET table from a benchmark's
    /// slowdown profile: eᵢ(c,b) = e*ᵢ · s(c,b)).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and strictly positive.
    pub fn scaled(&self, k: f64) -> Surface {
        assert!(
            k.is_finite() && k > 0.0,
            "scale factor must be positive and finite, got {k}"
        );
        Surface {
            space: self.space,
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// Pointwise sum of two surfaces over the same space — the combined
    /// demand of several tasks packed on one VCPU.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidResourceSpace`] if the spaces differ.
    pub fn try_add(&self, other: &Surface) -> Result<Surface, ModelError> {
        if self.space != other.space {
            return Err(ModelError::InvalidResourceSpace {
                detail: format!(
                    "cannot add surfaces over different spaces ({} vs {})",
                    self.space, other.space
                ),
            });
        }
        Ok(Surface {
            space: self.space,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Whether the surface is non-increasing in both cache and bandwidth
    /// (more resources never make a task slower). Physically-derived
    /// WCET surfaces satisfy this; noisy measured ones may not, which is
    /// why it is a query rather than a constructor invariant.
    pub fn is_monotone_non_increasing(&self) -> bool {
        let s = &self.space;
        s.iter().all(|a| {
            let v = self.at(a);
            let right_ok = a.bandwidth == s.bw_max()
                || v >= self.at(Alloc::new(a.cache, a.bandwidth + 1)) - 1e-12;
            let down_ok = a.cache == s.cache_max()
                || v >= self.at(Alloc::new(a.cache + 1, a.bandwidth)) - 1e-12;
            right_ok && down_ok
        })
    }

    /// Iterates over `(alloc, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Alloc, f64)> + '_ {
        self.space.iter().zip(self.values.iter().copied())
    }
}

impl fmt::Display for Surface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "surface over {} (ref={:.4}, max={:.4})",
            self.space,
            self.reference(),
            self.max_value()
        )
    }
}

/// A normalized slowdown vector sᵢ(c,b) = eᵢ(c,b)/e*ᵢ.
///
/// The entry at the reference allocation is exactly 1. Exposes the flat
/// feature vector consumed by the k-means clustering of the allocation
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownVector {
    space: ResourceSpace,
    values: Vec<f64>,
}

impl SlowdownVector {
    /// The resource space the vector is defined over.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// Slowdown at allocation `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` lies outside the resource space.
    pub fn at(&self, alloc: Alloc) -> f64 {
        self.values[self.space.index_of(alloc)]
    }

    /// The flat feature vector (row-major), for clustering distance
    /// computations.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Euclidean distance to another slowdown vector over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ — comparing sensitivities across
    /// different platforms is meaningless.
    pub fn distance(&self, other: &SlowdownVector) -> f64 {
        assert_eq!(
            self.space, other.space,
            "cannot compare slowdown vectors over different resource spaces"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 4, 1, 3).expect("valid space")
    }

    #[test]
    fn shape_is_validated() {
        let err = Surface::from_values(space(), vec![1.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::SurfaceShapeMismatch {
                expected: 9,
                actual: 5
            }
        ));
    }

    #[test]
    fn entries_are_validated() {
        let mut v = vec![1.0; 9];
        v[4] = -2.0;
        let err = Surface::from_values(space(), v).unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidSurfaceEntry {
                cache: 3,
                bandwidth: 2,
                ..
            }
        ));
        let mut v = vec![1.0; 9];
        v[0] = f64::NAN;
        assert!(Surface::from_values(space(), v).is_err());
    }

    #[test]
    fn from_fn_and_lookup() {
        let s = Surface::from_fn(&space(), |a| (a.cache * 10 + a.bandwidth) as f64).unwrap();
        assert_eq!(s.at(Alloc::new(2, 1)), 21.0);
        assert_eq!(s.at(Alloc::new(4, 3)), 43.0);
        assert_eq!(s.reference(), 43.0);
        assert_eq!(s.at_minimum(), 21.0);
    }

    #[test]
    fn slowdown_vector_reference_is_one() {
        let s = Surface::from_fn(&space(), |a| 10.0 / (a.cache + a.bandwidth) as f64).unwrap();
        let sd = s.slowdown_vector();
        let reference = sd.space().reference();
        assert!((sd.at(reference) - 1.0).abs() < 1e-12);
        assert!(s.max_slowdown() >= 1.0);
    }

    #[test]
    fn monotone_detection() {
        let mono = Surface::from_fn(&space(), |a| 10.0 - (a.cache + a.bandwidth) as f64).unwrap();
        assert!(mono.is_monotone_non_increasing());
        let bumpy = Surface::from_fn(
            &space(),
            |a| {
                if a == Alloc::new(3, 2) {
                    100.0
                } else {
                    10.0
                }
            },
        )
        .unwrap();
        assert!(!bumpy.is_monotone_non_increasing());
    }

    #[test]
    fn scaling_and_addition() {
        let s = Surface::flat(&space(), 2.0).unwrap();
        let doubled = s.scaled(2.0);
        assert_eq!(doubled.reference(), 4.0);
        let sum = s.try_add(&doubled).unwrap();
        assert_eq!(sum.reference(), 6.0);

        let other_space = ResourceSpace::new(1, 2, 1, 2).unwrap();
        let other = Surface::flat(&other_space, 1.0).unwrap();
        assert!(s.try_add(&other).is_err());
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let a = Surface::from_fn(&space(), |al| 1.0 + al.cache as f64)
            .unwrap()
            .slowdown_vector();
        let b = Surface::from_fn(&space(), |al| 1.0 + al.bandwidth as f64)
            .unwrap()
            .slowdown_vector();
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "different resource spaces")]
    fn distance_rejects_mismatched_spaces() {
        let a = Surface::flat(&space(), 1.0).unwrap().slowdown_vector();
        let other_space = ResourceSpace::new(1, 2, 1, 2).unwrap();
        let b = Surface::flat(&other_space, 1.0).unwrap().slowdown_vector();
        let _ = a.distance(&b);
    }

    #[test]
    fn iter_covers_all_cells() {
        let s = Surface::flat(&space(), 1.5).unwrap();
        assert_eq!(s.iter().count(), 9);
        assert!(s.iter().all(|(_, v)| v == 1.5));
    }

    #[test]
    fn slowdown_values_match_slowdown_vector_bitwise() {
        let a = Surface::from_fn(&space(), |al| 10.0 / (al.cache + al.bandwidth) as f64).unwrap();
        let b = Surface::from_fn(&space(), |al| 1.0 + al.cache as f64).unwrap();
        for s in [&a, &b] {
            let bits: Vec<u64> = s.slowdown_values().iter().map(|v| v.to_bits()).collect();
            let via_vector: Vec<u64> = s
                .slowdown_vector()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(bits, via_vector);
        }
        let rows = Surface::batch_slowdown_rows([&a, &b]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], a.slowdown_values());
        assert_eq!(rows[1], b.slowdown_values());
    }
}
