//! ASCII schedule charts from supply logs.
//!
//! Renders the per-VCPU execution intervals recorded by
//! [`SupplyLog`](crate::SupplyLog) as a text Gantt chart — a cheap way
//! to eyeball a schedule: release synchronization, the well-regulated
//! pattern, throttling gaps.
//!
//! ```text
//! time [0.0, 40.0] ms, '#' = running
//! V0 |####......####......####......####......|
//! V1 |....######....######....######....######|
//! ```

use crate::SupplyLog;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vc2m_model::{SimTime, VcpuId};

/// Renders the logs over `[from, to)` as one row per VCPU, `width`
/// characters wide.
///
/// Each character cell covers `(to − from)/width` of simulated time
/// and is drawn `#` if the VCPU ran during **any** part of the cell,
/// `.` otherwise. Rows are ordered by VCPU id.
///
/// # Panics
///
/// Panics if `from >= to` or `width` is zero.
pub fn render(
    logs: &BTreeMap<VcpuId, SupplyLog>,
    from: SimTime,
    to: SimTime,
    width: usize,
) -> String {
    assert!(from < to, "need a non-empty window");
    assert!(width > 0, "need a positive width");
    let span = to.as_ns() - from.as_ns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "time [{:.1}, {:.1}] ms, '#' = running",
        from.as_ms(),
        to.as_ms()
    );
    for (id, log) in logs {
        let mut cells = vec![false; width];
        for (start, end) in log.iter() {
            let (s, e) = (start.as_ns(), end.as_ns());
            if e <= from.as_ns() || s >= to.as_ns() {
                continue;
            }
            let s = s.max(from.as_ns()) - from.as_ns();
            let e = e.min(to.as_ns()) - from.as_ns();
            // Cell indices touched by [s, e): inclusive of the cell
            // containing e−1.
            let first = (s as u128 * width as u128 / span as u128) as usize;
            let last = ((e - 1) as u128 * width as u128 / span as u128) as usize;
            for cell in cells.iter_mut().take(last.min(width - 1) + 1).skip(first) {
                *cell = true;
            }
        }
        let row: String = cells.iter().map(|&r| if r { '#' } else { '.' }).collect();
        let _ = writeln!(out, "{id:>4} |{row}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::SimDuration;

    fn logs() -> BTreeMap<VcpuId, SupplyLog> {
        let mut l0 = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        l0.record(SimTime::from_ms(0.0), SimTime::from_ms(4.0));
        l0.record(SimTime::from_ms(10.0), SimTime::from_ms(14.0));
        let mut l1 = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        l1.record(SimTime::from_ms(4.0), SimTime::from_ms(10.0));
        l1.record(SimTime::from_ms(14.0), SimTime::from_ms(20.0));
        [(VcpuId(0), l0), (VcpuId(1), l1)].into_iter().collect()
    }

    #[test]
    fn renders_complementary_rows() {
        let out = render(&logs(), SimTime::ZERO, SimTime::from_ms(20.0), 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("[0.0, 20.0]"));
        // 1 ms per cell: V0 runs [0,4) and [10,14).
        assert!(lines[1].contains("|####......####......|"), "{out}");
        assert!(lines[2].contains("|....######....######|"), "{out}");
    }

    #[test]
    fn window_clipping() {
        let out = render(&logs(), SimTime::from_ms(10.0), SimTime::from_ms(20.0), 10);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].contains("|####......|"), "{out}");
        assert!(lines[2].contains("|....######|"), "{out}");
    }

    #[test]
    fn empty_logs_render_header_only() {
        let out = render(&BTreeMap::new(), SimTime::ZERO, SimTime::from_ms(1.0), 10);
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn sub_cell_execution_still_marks_the_cell() {
        let mut l = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        l.record(SimTime::from_ms(5.0), SimTime::from_ms(5.1));
        let logs: BTreeMap<VcpuId, SupplyLog> = [(VcpuId(0), l)].into_iter().collect();
        let out = render(&logs, SimTime::ZERO, SimTime::from_ms(10.0), 10);
        assert!(
            out.lines().nth(1).unwrap().contains("|.....#....|"),
            "{out}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty window")]
    fn empty_window_panics() {
        let _ = render(
            &BTreeMap::new(),
            SimTime::from_ms(5.0),
            SimTime::from_ms(5.0),
            10,
        );
    }
}
