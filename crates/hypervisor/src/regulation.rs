//! Well-regulated supply verification (Theorem 2's premise).
//!
//! A VCPU is *well-regulated* iff it executes at time `t` exactly when
//! it executes at `t + k·Π` for every k — its supply pattern repeats
//! each period. The paper claims (Section 3.2) that periodic servers +
//! harmonic periods + a common release offset + the deterministic EDF
//! tie-break produce well-regulated VCPUs; Theorem 2's overhead-free
//! budget rests on that claim.
//!
//! This module checks the claim *empirically*: [`SupplyLog`] records
//! the exact execution intervals of one VCPU during a simulation, and
//! [`SupplyLog::regulation_violation`] folds every interval into the
//! VCPU's period and reports the first position where two periods
//! disagree. The hypervisor records logs when
//! [`SimConfig::record_supply`](crate::SimConfig) is enabled.

use vc2m_model::{SimDuration, SimTime};

/// The execution intervals a single VCPU received on its core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupplyLog {
    /// Server period in nanoseconds.
    period_ns: u64,
    /// First release (pattern phase origin) in nanoseconds.
    origin_ns: u64,
    /// Closed-open execution intervals `[start, end)`, in ns,
    /// non-overlapping and sorted.
    intervals: Vec<(u64, u64)>,
}

/// A detected violation of the well-regulated property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegulationViolation {
    /// Offset within the period (ns) where two periods disagree.
    pub offset_ns: u64,
    /// Index of a period during which the VCPU ran at `offset_ns`.
    pub running_period: u64,
    /// Index of a period during which it did not.
    pub idle_period: u64,
}

impl SupplyLog {
    /// Creates an empty log for a server with the given period and
    /// first release.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period: SimDuration, origin: SimTime) -> Self {
        assert!(period.as_ns() > 0, "period must be positive");
        SupplyLog {
            period_ns: period.as_ns(),
            origin_ns: origin.as_ns(),
            intervals: Vec::new(),
        }
    }

    /// Records an execution interval `[start, end)`.
    ///
    /// Adjacent intervals are merged. Intervals must be appended in
    /// time order (the simulator's event order guarantees this).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty, precedes the origin, or
    /// overlaps the previously recorded one.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_ns(), end.as_ns());
        assert!(s < e, "interval must be non-empty");
        assert!(s >= self.origin_ns, "interval precedes the first release");
        if let Some(last) = self.intervals.last_mut() {
            assert!(s >= last.1, "intervals must be appended in order");
            if s == last.1 {
                last.1 = e;
                return;
            }
        }
        self.intervals.push((s, e));
    }

    /// Number of recorded (merged) intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total supply over the log, in nanoseconds.
    pub fn total_supply_ns(&self) -> u64 {
        self.intervals.iter().map(|(s, e)| e - s).sum()
    }

    /// The server period.
    pub fn period(&self) -> SimDuration {
        SimDuration(self.period_ns)
    }

    /// The pattern origin (first release).
    pub fn origin(&self) -> SimTime {
        SimTime(self.origin_ns)
    }

    /// Iterates the recorded execution intervals as
    /// `(start, end)` instants, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.intervals
            .iter()
            .map(|&(s, e)| (SimTime(s), SimTime(e)))
    }

    /// Number of *complete* periods covered by the log (only complete
    /// periods participate in the regulation check).
    pub fn complete_periods(&self, horizon: SimTime) -> u64 {
        horizon.as_ns().saturating_sub(self.origin_ns) / self.period_ns
    }

    /// Checks the well-regulated property over all complete periods up
    /// to `horizon`: folds every execution interval into `[0, Π)` and
    /// verifies that each period ran at exactly the same offsets.
    ///
    /// Offsets are compared at `tolerance` granularity — analysis
    /// budgets are real-valued while the simulator is nanosecond-
    /// quantized, so the boundary of a supply interval may wobble by a
    /// few nanoseconds between periods.
    ///
    /// Returns the first violation found, or `None` if the supply is
    /// well-regulated.
    pub fn regulation_violation(
        &self,
        horizon: SimTime,
        tolerance: SimDuration,
    ) -> Option<RegulationViolation> {
        let periods = self.complete_periods(horizon);
        if periods < 2 {
            return None; // nothing to compare
        }
        // Per-period folded interval lists.
        let mut folded: Vec<Vec<(u64, u64)>> = vec![Vec::new(); periods as usize];
        for &(s, e) in &self.intervals {
            // Clip to complete periods.
            let end_of_complete = self.origin_ns + periods * self.period_ns;
            let e = e.min(end_of_complete);
            if s >= e {
                continue;
            }
            let mut cursor = s;
            while cursor < e {
                let rel = cursor - self.origin_ns;
                let period_idx = rel / self.period_ns;
                let offset = rel % self.period_ns;
                let room = self.period_ns - offset;
                let span = (e - cursor).min(room);
                folded[period_idx as usize].push((offset, offset + span));
                cursor += span;
            }
        }
        // Compare every period's pattern to period 0's.
        let tol = tolerance.as_ns();
        let reference = &folded[0];
        for (idx, pattern) in folded.iter().enumerate().skip(1) {
            if let Some(offset) = first_mismatch(reference, pattern, self.period_ns, tol) {
                // Determine which side was running at the mismatch.
                let ref_running = covers(reference, offset);
                return Some(RegulationViolation {
                    offset_ns: offset,
                    running_period: if ref_running { 0 } else { idx as u64 },
                    idle_period: if ref_running { idx as u64 } else { 0 },
                });
            }
        }
        None
    }
}

/// Whether `intervals` (sorted, disjoint) cover the point `x`.
fn covers(intervals: &[(u64, u64)], x: u64) -> bool {
    intervals.iter().any(|&(s, e)| s <= x && x < e)
}

/// First offset where two folded patterns disagree by more than `tol`,
/// scanning the merged boundary set.
fn first_mismatch(a: &[(u64, u64)], b: &[(u64, u64)], period: u64, tol: u64) -> Option<u64> {
    // Sample at midpoints between all boundaries: the coverage of both
    // patterns is constant between consecutive boundaries.
    let mut bounds: Vec<u64> = a
        .iter()
        .chain(b)
        .flat_map(|&(s, e)| [s, e])
        .chain([0, period])
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo <= 2 * tol {
            continue; // boundary wobble inside the tolerance band
        }
        let mid = lo + (hi - lo) / 2;
        if covers(a, mid) != covers(b, mid) {
            return Some(mid);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(period_ms: f64) -> SupplyLog {
        SupplyLog::new(SimDuration::from_ms(period_ms), SimTime::ZERO)
    }

    fn ms(v: f64) -> SimTime {
        SimTime::from_ms(v)
    }

    const TOL: SimDuration = SimDuration(1_000);

    #[test]
    fn perfectly_periodic_supply_is_well_regulated() {
        let mut l = log(10.0);
        for k in 0..5 {
            let base = k as f64 * 10.0;
            l.record(ms(base + 2.0), ms(base + 6.0));
        }
        assert_eq!(l.regulation_violation(ms(50.0), TOL), None);
        assert_eq!(l.len(), 5);
        assert_eq!(l.total_supply_ns(), 5 * 4_000_000);
    }

    #[test]
    fn shifted_period_is_detected() {
        let mut l = log(10.0);
        l.record(ms(2.0), ms(6.0));
        l.record(ms(12.0), ms(16.0));
        // Third period: supply shifted by 3 ms.
        l.record(ms(25.0), ms(29.0));
        let v = l.regulation_violation(ms(30.0), TOL).expect("must detect");
        assert!(v.running_period == 0 || v.idle_period == 0);
    }

    #[test]
    fn split_supply_matching_pattern_is_fine() {
        // Supply split into two chunks per period, same offsets.
        let mut l = log(10.0);
        for k in 0..4 {
            let base = k as f64 * 10.0;
            l.record(ms(base + 1.0), ms(base + 2.5));
            l.record(ms(base + 7.0), ms(base + 9.0));
        }
        assert_eq!(l.regulation_violation(ms(40.0), TOL), None);
    }

    #[test]
    fn nanosecond_wobble_is_tolerated() {
        let mut l = log(10.0);
        l.record(ms(2.0), ms(6.0));
        // Boundary off by 400 ns in the second period.
        l.record(SimTime(12_000_400), SimTime(16_000_000));
        assert_eq!(l.regulation_violation(ms(20.0), TOL), None);
        // But a 100 µs shift is caught.
        let mut l = log(10.0);
        l.record(ms(2.0), ms(6.0));
        l.record(ms(12.1), ms(16.0));
        assert!(l.regulation_violation(ms(20.0), TOL).is_some());
    }

    #[test]
    fn incomplete_trailing_period_is_ignored() {
        let mut l = log(10.0);
        l.record(ms(2.0), ms(6.0));
        l.record(ms(12.0), ms(16.0));
        // Partial third period with different supply: clipped away at
        // horizon 20.
        l.record(ms(21.0), ms(22.0));
        assert_eq!(l.regulation_violation(ms(20.0), TOL), None);
    }

    #[test]
    fn interval_spanning_a_boundary_folds_into_both_periods() {
        // Supply [8, 12) = [8, 10) in period 0 and [0, 2) in period 1:
        // period 0 lacks [0, 2) and period 1 lacks [8, 10) → violation.
        let mut l = log(10.0);
        l.record(ms(8.0), ms(12.0));
        // Make period 1 complete by adding its tail supply [18, 20).
        l.record(ms(18.0), ms(20.0));
        assert!(l.regulation_violation(ms(20.0), TOL).is_some());
    }

    #[test]
    fn adjacent_records_merge() {
        let mut l = log(10.0);
        l.record(ms(1.0), ms(2.0));
        l.record(ms(2.0), ms(3.0));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn single_period_has_nothing_to_violate() {
        let mut l = log(10.0);
        l.record(ms(0.0), ms(1.0));
        assert_eq!(l.regulation_violation(ms(10.0), TOL), None);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_records_panic() {
        let mut l = log(10.0);
        l.record(ms(5.0), ms(6.0));
        l.record(ms(1.0), ms(2.0));
    }

    #[test]
    fn origin_shifts_the_fold() {
        // Same absolute intervals, origin at 3 ms: offsets fold
        // relative to 3.
        let mut l = SupplyLog::new(SimDuration::from_ms(10.0), ms(3.0));
        l.record(ms(5.0), ms(7.0)); // offset [2, 4) of period 0
        l.record(ms(15.0), ms(17.0)); // offset [2, 4) of period 1
        assert_eq!(l.regulation_violation(ms(23.0), TOL), None);
    }
}
