//! Sharded parallel execution of the hypervisor simulation.
//!
//! Under partitioned EDF the simulated cores couple through exactly
//! one mechanism: the shared bandwidth-regulation clock (the per-period
//! refill in [`BwRegulator`]). Everything else — server scheduling,
//! job release/completion, traffic accounting, fault effects — is
//! core-local. So *any* partition of the cores into groups yields
//! independent sub-simulations between regulation-period boundaries,
//! and a run decomposes into windows:
//!
//! 1. each shard drains its own event heap up to (but not through) the
//!    barrier's refill point `(t, PRIO_REFILL, REFILL_KEY)`;
//! 2. at the barrier, each shard replenishes *its own* cores
//!    ([`BwRegulator::replenish_cores`]) and re-runs its scheduler —
//!    the refill phases touch no foreign state, so the barrier needs
//!    no serial section at all;
//! 3. after the last window, shards drain to the horizon and flush.
//!
//! # Why the merge is deterministic and exact
//!
//! The event queue orders simultaneous events by
//! `(time, priority, key, seq)` where `key` is derived from event
//! *content* (target core/task/VCPU index — see `event_key`), never
//! from insertion history. Two events that land in different shards
//! therefore have the same relative order as in the serial queue, and
//! events that could tie completely (same time, priority and key)
//! always target the same entity, hence the same shard, where local
//! insertion order applies exactly as serially. The scheduler itself
//! is content-deterministic (deadline, period, index tie-breaks), so
//! equal event order means equal state trajectories per core.
//!
//! Merging after the run is then pure bookkeeping, in fixed core- or
//! key-order, independent of thread count and completion order:
//!
//! * **counters** (`jobs_*`, `throttle_events`, `context_switches`)
//!   add — each increment happens in exactly one shard;
//! * **deadline misses** sort by `(deadline, task index)` — the serial
//!   pop order of `DeadlineCheck` events — with a stable sort, and
//!   exact ties never span shards;
//! * **response times / supply logs** are unions over disjoint task
//!   and VCPU sets, so each per-task `MinAvgMax` is accumulated by a
//!   single shard in serial sample order — bit-identical floats, not
//!   merely equivalent ones;
//! * **core times** come from each core's owning shard;
//! * **trace records** carry a canonical tag (the ordering prefix of
//!   the event being handled plus an intra-handler lane, see
//!   `TaggedRing`); sorting the union of the per-shard rings and the
//!   coordinator's synthesized `Refill` records by tag reproduces the
//!   serial emission order, and keeping the newest `capacity` of them
//!   reproduces the serial ring's eviction: a shard ring evicts
//!   oldest-first in tag order, so a locally evicted record can never
//!   be among the globally newest `capacity`;
//! * **metrics** render through the same formatting path as the serial
//!   read-out (`render_metrics`) from the merged inputs.
//!
//! One caveat is inherited from the serial semantics: a zero-length
//! run segment (a zero-WCET task) would emit records *after* the
//! event that scheduled it while tagging them with an earlier
//! canonical position. Task WCETs in this codebase are strictly
//! positive (they come from positive utilizations over positive
//! periods), so segment-end events always fire strictly later than
//! the event that planned them.
//!
//! In [`IsolationMode::Shared`] there is no regulation and therefore
//! no barrier at all: shards run to the horizon fully independently.
//!
//! Errors (an overcommitted dynamic reallocation) are replicated:
//! every shard validates every reallocation against the same
//! deterministically-ordered allocation table, so a failing
//! reallocation fails identically in all shards and the run reports
//! the serial error.

use super::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A partition of the simulated cores into independently-advancing
/// groups for [`HypervisorSim::run_sharded_with`]. Any partition is
/// valid (cores couple only through the regulation barrier, which is
/// group-structure-independent); the choice affects load balance, not
/// results — pinned by the conformance suite's random-partition
/// property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorePartition {
    groups: Vec<Vec<usize>>,
}

impl CorePartition {
    /// One group per core — the maximally parallel partition, and the
    /// default of [`HypervisorSim::run_sharded`].
    pub fn singletons(cores: usize) -> Self {
        CorePartition {
            groups: (0..cores).map(|c| vec![c]).collect(),
        }
    }

    /// At most `groups` contiguous core ranges of near-equal size.
    pub fn chunks(cores: usize, groups: usize) -> Self {
        if cores == 0 {
            return CorePartition { groups: Vec::new() };
        }
        let groups = groups.clamp(1, cores);
        let per = cores.div_ceil(groups);
        CorePartition {
            groups: (0..cores)
                .collect::<Vec<_>>()
                .chunks(per)
                .map(<[usize]>::to_vec)
                .collect(),
        }
    }

    /// An explicit grouping. Group members are normalized to ascending
    /// order (the refill phases iterate a shard's cores ascending, as
    /// the serial refiller does); validity against a concrete
    /// simulation — every core exactly once, no empty group — is
    /// checked when a run starts.
    pub fn from_groups(groups: Vec<Vec<usize>>) -> Self {
        let mut groups = groups;
        for group in &mut groups {
            group.sort_unstable();
        }
        CorePartition { groups }
    }

    /// The core groups, each ascending.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Checks that the groups are a partition of `0..cores`.
    fn validate(&self, cores: usize) -> Result<(), SimError> {
        let mut seen = vec![false; cores];
        for group in &self.groups {
            if group.is_empty() {
                return Err(SimError::InvalidPartition {
                    detail: "partition contains an empty group".into(),
                });
            }
            for &core in group {
                if core >= cores {
                    return Err(SimError::InvalidPartition {
                        detail: format!("core {core} is out of range (simulation has {cores})"),
                    });
                }
                if seen[core] {
                    return Err(SimError::InvalidPartition {
                        detail: format!("core {core} appears twice"),
                    });
                }
                seen[core] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(SimError::InvalidPartition {
                detail: format!("core {missing} is missing from the partition"),
            });
        }
        Ok(())
    }
}

/// The shared state of one barrier-synchronized worker crew.
struct BarrierLoop<'a> {
    windows: u64,
    period: SimDuration,
    horizon: SimTime,
    barrier: &'a Barrier,
    /// Earliest window in which any shard failed (`u64::MAX` = none).
    /// Workers may observe a failure raised by a worker already one
    /// window ahead of them, so the exit test must be *window-bound* —
    /// "leave after the barrier of the failing window", which every
    /// worker still reaches — not a bare flag, or the early observer
    /// would leave one barrier short and strand the others.
    failed_window: &'a AtomicU64,
    error: &'a Mutex<Option<(usize, SimError)>>,
}

impl BarrierLoop<'_> {
    /// Advances `shards` (global indices `base..`) through every
    /// regulation window and the final drain, recording one wake count
    /// per shard per window into `woken`.
    fn run(&self, shards: &mut [HypervisorSim], woken: &mut [Vec<usize>], base: usize) {
        for w in 1..=self.windows {
            let boundary = SimTime(self.period.as_ns() * w);
            for (i, (shard, wok)) in shards.iter_mut().zip(woken.iter_mut()).enumerate() {
                match shard.advance(Some(boundary), self.horizon) {
                    Ok(()) => wok.push(shard.barrier_refill(boundary)),
                    Err(e) => self.record_error(base + i, w, e),
                }
            }
            // The barrier orders every shard's pre-boundary work before
            // any shard's next window. An error raised in window w' is
            // published before its raiser arrives at barrier w', so
            // after barrier w every worker sees every failure with
            // w' <= w — and exits — while a failure observed early
            // (w' > w: the raiser ran ahead) keeps everyone marching
            // to barrier w', where the raiser is provably waiting.
            self.barrier.wait();
            if self.failed_window.load(Ordering::Acquire) <= w {
                return;
            }
        }
        // Past the last barrier there is nothing left to rendezvous
        // for: each worker drains and flushes its own shards.
        for (i, shard) in shards.iter_mut().enumerate() {
            match shard.advance(None, self.horizon) {
                Ok(()) => shard.finish(self.horizon),
                Err(e) => {
                    self.record_error(base + i, u64::MAX, e);
                    return;
                }
            }
        }
    }

    /// Keeps the error of the lowest-indexed failing shard (all shards
    /// fail identically — see the module docs — so this is belt and
    /// braces for determinism, not semantics).
    fn record_error(&self, shard: usize, window: u64, e: SimError) {
        if let Ok(mut slot) = self.error.lock() {
            if slot.as_ref().is_none_or(|(s, _)| shard < *s) {
                *slot = Some((shard, e));
            }
        }
        self.failed_window.fetch_min(window, Ordering::AcqRel);
    }
}

impl HypervisorSim {
    /// Runs the simulation sharded one-group-per-core over `threads`
    /// OS threads and returns a report **bit-identical** to
    /// [`HypervisorSim::run`] — same misses, same counters, same
    /// float-for-float response times (only the wall-clock
    /// `handler_overheads` differ, as they do between any two runs).
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run`].
    pub fn run_sharded(self, threads: usize) -> Result<SimReport, SimError> {
        let partition = CorePartition::singletons(self.cores.len());
        self.run_sharded_with(&partition, threads)
    }

    /// [`HypervisorSim::run_sharded`] with an explicit core partition.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run`]; additionally
    /// [`SimError::InvalidPartition`] if `partition` is not a
    /// partition of this simulation's cores.
    pub fn run_sharded_with(
        self,
        partition: &CorePartition,
        threads: usize,
    ) -> Result<SimReport, SimError> {
        Ok(self.run_partitioned(partition, threads)?.0)
    }

    /// Sharded [`HypervisorSim::run_traced`]: the returned trace is
    /// bit-identical to the serial one — same records, same order,
    /// same ring eviction.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run_sharded`].
    pub fn run_traced_sharded(
        self,
        threads: usize,
    ) -> Result<(SimReport, Vec<(SimTime, TraceEvent)>), SimError> {
        let partition = CorePartition::singletons(self.cores.len());
        self.run_traced_sharded_with(&partition, threads)
    }

    /// [`HypervisorSim::run_traced_sharded`] with an explicit core
    /// partition.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run_sharded_with`].
    pub fn run_traced_sharded_with(
        self,
        partition: &CorePartition,
        threads: usize,
    ) -> Result<(SimReport, Vec<(SimTime, TraceEvent)>), SimError> {
        let (report, observation) = self.run_partitioned(partition, threads)?;
        Ok((report, observation.trace))
    }

    /// Sharded [`HypervisorSim::run_observed`]: trace, drop count and
    /// metrics registry are all bit-identical to the serial ones.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run_sharded`].
    pub fn run_observed_sharded(
        self,
        threads: usize,
    ) -> Result<(SimReport, SimObservation), SimError> {
        let partition = CorePartition::singletons(self.cores.len());
        self.run_observed_sharded_with(&partition, threads)
    }

    /// [`HypervisorSim::run_observed_sharded`] with an explicit core
    /// partition.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run_sharded_with`].
    pub fn run_observed_sharded_with(
        self,
        partition: &CorePartition,
        threads: usize,
    ) -> Result<(SimReport, SimObservation), SimError> {
        self.run_partitioned(partition, threads)
    }

    /// The sharded engine: clone-and-restrict, barrier loop, merge.
    fn run_partitioned(
        mut self,
        partition: &CorePartition,
        threads: usize,
    ) -> Result<(SimReport, SimObservation), SimError> {
        partition.validate(self.cores.len())?;
        if self.cores.is_empty() {
            // Degenerate: nothing to shard; the serial path is exact.
            let report = self.run_inner()?;
            let metrics = self.collect_metrics(&report);
            let observation = SimObservation {
                trace: self.trace.iter().map(|r| (r.time, r.payload)).collect(),
                trace_dropped: self.trace.dropped(),
                metrics,
            };
            return Ok((report, observation));
        }

        let horizon = SimTime::ZERO + self.config.horizon;
        let period = self.config.regulation_period;
        // One barrier per refill the serial run would execute: the
        // refiller first fires at `period` and re-arms while at or
        // before the horizon.
        let windows = if self.config.isolation == IsolationMode::Isolated {
            self.config.horizon.as_ns() / period.as_ns()
        } else {
            0
        };

        let groups = partition.groups();
        let shard_count = groups.len();
        let mut shards: Vec<HypervisorSim> =
            groups.iter().map(|g| self.shard_clone(g)).collect();
        let mut woken: Vec<Vec<usize>> = vec![Vec::with_capacity(windows as usize); shard_count];

        let worker_count = threads.clamp(1, shard_count);
        let chunk = shard_count.div_ceil(worker_count);
        let barrier = Barrier::new(shard_count.div_ceil(chunk));
        let failed_window = AtomicU64::new(u64::MAX);
        let error: Mutex<Option<(usize, SimError)>> = Mutex::new(None);
        let crew = BarrierLoop {
            windows,
            period,
            horizon,
            barrier: &barrier,
            failed_window: &failed_window,
            error: &error,
        };
        std::thread::scope(|s| {
            for (index, (shard_chunk, woken_chunk)) in shards
                .chunks_mut(chunk)
                .zip(woken.chunks_mut(chunk))
                .enumerate()
            {
                let crew = &crew;
                s.spawn(move || crew.run(shard_chunk, woken_chunk, index * chunk));
            }
        });
        if let Ok(Some((_, e))) = error.into_inner() {
            return Err(e);
        }

        // Coordinator stream: one `Refill` record per barrier, from
        // the summed per-shard wake counts, ring-capped like any other
        // emission stream. Its tag subkey slots it between the
        // barrier's phase-0 (suspend) and phase-2 (unthrottle) record
        // lanes — where the serial refill handler emits it.
        let capacity = self.config.trace_capacity;
        let mut refill_records: VecDeque<ShardTraceRecord> = VecDeque::new();
        for w in 1..=windows {
            let woken_total: usize = woken.iter().map(|per| per[(w - 1) as usize]).sum();
            if capacity == 0 {
                continue;
            }
            if refill_records.len() == capacity {
                refill_records.pop_front();
            }
            refill_records.push_back(ShardTraceRecord {
                time: SimTime(period.as_ns() * w),
                priority: PRIO_REFILL,
                key: REFILL_KEY,
                subkey: TAG_SPAN,
                order: w,
                event: TraceEvent::Refill { woken: woken_total },
            });
        }

        let reports: Vec<SimReport> = shards.iter_mut().map(HypervisorSim::build_report).collect();
        let report = self.merged_report(&shards, reports);
        let (trace, trace_recorded, trace_dropped) =
            merged_trace(&mut shards, refill_records, windows, capacity);

        let mut regulator = shards[0].regulator.clone();
        for shard in &shards[1..] {
            regulator.merge_stats(&shard.regulator);
        }
        let mut fault_stats = FaultStats::default();
        for shard in &shards {
            fault_stats.absorb(&shard.fault_stats);
        }
        let metrics = Self::render_metrics(
            &self.config,
            &report,
            trace_recorded,
            trace_dropped,
            &regulator,
            self.fault_plan.is_some().then_some(fault_stats),
        );
        let observation = SimObservation {
            trace,
            trace_dropped,
            metrics,
        };
        Ok((report, observation))
    }

    /// A clone of this (not-yet-started) simulation restricted to one
    /// core group: scope set, tagged trace ring armed, and the event
    /// population seeded under that scope.
    fn shard_clone(&self, group: &[usize]) -> HypervisorSim {
        let mut shard = self.clone();
        let mut local = vec![false; self.cores.len()];
        for &core in group {
            local[core] = true;
        }
        shard.scope = Some(ShardScope {
            cores: group.to_vec(),
            local,
        });
        shard.tagged = Some(TaggedRing::new(self.config.trace_capacity));
        shard.seed_events();
        shard
    }

    /// Merges per-shard reports in fixed core-/key-order (see the
    /// module docs for why each field merge is exact).
    fn merged_report(&self, shards: &[HypervisorSim], reports: Vec<SimReport>) -> SimReport {
        let task_order: HashMap<TaskId, usize> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect();
        let mut merged = SimReport {
            core_times: vec![crate::energy::CoreTime::default(); self.cores.len()],
            horizon_ms: self.config.horizon.as_ms(),
            ..SimReport::default()
        };
        for (shard, mut rep) in shards.iter().zip(reports) {
            merged.deadline_misses.append(&mut rep.deadline_misses);
            merged.jobs_completed += rep.jobs_completed;
            merged.jobs_released += rep.jobs_released;
            merged.throttle_events += rep.throttle_events;
            merged.context_switches += rep.context_switches;
            for (kind, stats) in &rep.handler_overheads {
                merged
                    .handler_overheads
                    .entry(*kind)
                    .or_default()
                    .merge(stats);
            }
            merged.response_times.extend(rep.response_times);
            merged.supply_logs.extend(rep.supply_logs);
            if let Some(scope) = &shard.scope {
                for &core in &scope.cores {
                    merged.core_times[core] = rep.core_times[core];
                }
            }
        }
        // Serial miss order is the pop order of `DeadlineCheck` events:
        // `(deadline, task key)`, with exact ties (same task, same
        // deadline) in shard-local — i.e. serial — order, preserved
        // here because the sort is stable and such ties never span
        // shards.
        merged
            .deadline_misses
            .sort_by_key(|m| (m.deadline, task_order.get(&m.task).copied().unwrap_or(usize::MAX)));
        merged
    }
}

/// Merges the per-shard tagged rings and the coordinator's refill
/// stream into the exact serial trace: sort by canonical tag, keep the
/// newest `capacity`. Returns `(trace, recorded, dropped)`.
fn merged_trace(
    shards: &mut [HypervisorSim],
    refill_records: VecDeque<ShardTraceRecord>,
    refill_emitted: u64,
    capacity: usize,
) -> (Vec<(SimTime, TraceEvent)>, u64, u64) {
    let mut emitted = refill_emitted;
    let mut all: Vec<ShardTraceRecord> = refill_records.into_iter().collect();
    for shard in shards.iter_mut() {
        if let Some(ring) = shard.tagged.take() {
            emitted += ring.emitted;
            all.extend(ring.ring);
        }
    }
    all.sort_by_key(ShardTraceRecord::sort_key);
    let kept = (capacity as u64).min(emitted) as usize;
    let tail = all.split_off(all.len().saturating_sub(kept));
    let dropped = emitted - tail.len() as u64;
    let trace = tail.into_iter().map(|r| (r.time, r.event)).collect();
    (trace, kept as u64, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_partition_covers_every_core() {
        let p = CorePartition::singletons(4);
        assert_eq!(p.groups().len(), 4);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn chunked_partition_is_valid_and_balanced() {
        let p = CorePartition::chunks(10, 3);
        assert!(p.validate(10).is_ok());
        assert_eq!(p.groups().len(), 3);
        assert!(p.groups().iter().all(|g| g.len() <= 4));
        // Degenerate shapes.
        assert_eq!(CorePartition::chunks(0, 3).groups().len(), 0);
        assert_eq!(CorePartition::chunks(2, 9).groups().len(), 2);
    }

    #[test]
    fn from_groups_normalizes_and_validates() {
        let p = CorePartition::from_groups(vec![vec![2, 0], vec![1]]);
        assert_eq!(p.groups()[0], vec![0, 2]);
        assert!(p.validate(3).is_ok());

        let dup = CorePartition::from_groups(vec![vec![0, 1], vec![1]]);
        assert!(matches!(
            dup.validate(2),
            Err(SimError::InvalidPartition { .. })
        ));
        let missing = CorePartition::from_groups(vec![vec![0]]);
        assert!(matches!(
            missing.validate(2),
            Err(SimError::InvalidPartition { .. })
        ));
        let out_of_range = CorePartition::from_groups(vec![vec![0, 5]]);
        assert!(matches!(
            out_of_range.validate(2),
            Err(SimError::InvalidPartition { .. })
        ));
        let empty_group = CorePartition::from_groups(vec![vec![0], vec![]]);
        assert!(matches!(
            empty_group.validate(1),
            Err(SimError::InvalidPartition { .. })
        ));
    }
}
