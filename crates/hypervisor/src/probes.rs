//! Wall-clock probes for the hypervisor's handler hot paths.
//!
//! The paper measures its prototype's run-time overhead by
//! timestamping each handler invocation (the approach of \[14\]) and
//! reporting min/avg/max (Tables 1 and 2). The simulator does the
//! same: every throttle, refill, budget replenishment, scheduling
//! decision and context switch is timed with the host's monotonic
//! clock. Absolute values measure *this simulator on this machine*,
//! not Xen on a Xeon — what carries over is the shape: which handlers
//! are cheap, which are expensive, and how costs scale with the number
//! of VCPUs.

use crate::HandlerKind;
use std::collections::BTreeMap;
use std::time::Instant;
use vc2m_simcore::MinAvgMax;

/// A set of per-handler wall-clock accumulators (microseconds).
#[derive(Debug, Clone, Default)]
pub struct Probes {
    stats: BTreeMap<HandlerKind, MinAvgMax>,
}

impl Probes {
    /// Creates an empty probe set.
    pub fn new() -> Self {
        Probes::default()
    }

    /// Runs `f`, recording its wall-clock duration under `kind`.
    pub fn time<T>(&mut self, kind: HandlerKind, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let micros = start.elapsed().as_nanos() as f64 / 1e3;
        self.stats.entry(kind).or_default().record(micros);
        out
    }

    /// Records an externally measured duration (microseconds) under
    /// `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is not finite.
    pub fn record(&mut self, kind: HandlerKind, micros: f64) {
        self.stats.entry(kind).or_default().record(micros);
    }

    /// The statistics gathered for `kind`, if any invocation was
    /// recorded.
    pub fn stats(&self, kind: HandlerKind) -> Option<&MinAvgMax> {
        self.stats.get(&kind)
    }

    /// All gathered statistics, keyed by handler.
    pub fn into_map(self) -> BTreeMap<HandlerKind, MinAvgMax> {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_records_samples() {
        let mut p = Probes::new();
        let value = p.time(HandlerKind::Scheduling, || 21 * 2);
        assert_eq!(value, 42);
        let s = p.stats(HandlerKind::Scheduling).unwrap();
        assert_eq!(s.count(), 1);
        assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn manual_record() {
        let mut p = Probes::new();
        p.record(HandlerKind::Throttle, 0.5);
        p.record(HandlerKind::Throttle, 1.5);
        let s = p.stats(HandlerKind::Throttle).unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.avg(), Some(1.0));
    }

    #[test]
    fn untouched_handler_has_no_stats() {
        let p = Probes::new();
        assert!(p.stats(HandlerKind::ContextSwitch).is_none());
        assert!(p.into_map().is_empty());
    }
}
