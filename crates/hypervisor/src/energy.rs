//! Energy accounting: idling vs spinning throttled cores.
//!
//! The paper's regulator *idles* a core for the rest of the regulation
//! period once its bandwidth budget is exhausted, and argues this is
//! more energy-efficient than MemGuard's approach of keeping the core
//! busy. This module quantifies that claim: the simulator tracks how
//! long each core spent executing tasks, sitting throttled, and
//! sitting idle; [`EnergyModel::joules`] converts those durations into
//! energy under either throttling policy.

use std::fmt;

/// What a throttled core does until the refiller wakes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThrottlePolicy {
    /// vC²M: the hypervisor de-schedules the VCPU and the core enters
    /// an idle (low-power) state.
    Idle,
    /// MemGuard-style: the core spins at full power until the budget
    /// is replenished.
    Busy,
}

/// Per-core power draw in the two states, in watts.
///
/// The defaults (24 W busy, 8 W idle per core) are illustrative
/// server-class figures; only the *ratio* matters for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power while executing (or spinning), in watts.
    pub busy_watts: f64,
    /// Power in the idle state, in watts.
    pub idle_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            busy_watts: 24.0,
            idle_watts: 8.0,
        }
    }
}

impl EnergyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if either power is negative/non-finite or
    /// `idle_watts > busy_watts`.
    pub fn new(busy_watts: f64, idle_watts: f64) -> Self {
        assert!(
            busy_watts.is_finite() && busy_watts >= 0.0,
            "busy watts must be non-negative, got {busy_watts}"
        );
        assert!(
            idle_watts.is_finite() && (0.0..=busy_watts).contains(&idle_watts),
            "idle watts must lie in [0, busy], got {idle_watts}"
        );
        EnergyModel {
            busy_watts,
            idle_watts,
        }
    }

    /// Energy of one core over a window, given how it spent the time.
    ///
    /// `busy_ms` is task execution, `throttled_ms` is time spent
    /// bandwidth-throttled, and the remainder of `total_ms` is idle.
    /// Under [`ThrottlePolicy::Idle`] throttled time costs idle power;
    /// under [`ThrottlePolicy::Busy`] it costs busy power.
    ///
    /// # Panics
    ///
    /// Panics if `busy_ms + throttled_ms` exceeds `total_ms`.
    pub fn joules(
        &self,
        policy: ThrottlePolicy,
        busy_ms: f64,
        throttled_ms: f64,
        total_ms: f64,
    ) -> f64 {
        assert!(
            busy_ms + throttled_ms <= total_ms + 1e-6,
            "busy {busy_ms} + throttled {throttled_ms} exceeds window {total_ms}"
        );
        let idle_ms = (total_ms - busy_ms - throttled_ms).max(0.0);
        let throttled_watts = match policy {
            ThrottlePolicy::Idle => self.idle_watts,
            ThrottlePolicy::Busy => self.busy_watts,
        };
        (busy_ms * self.busy_watts + throttled_ms * throttled_watts + idle_ms * self.idle_watts)
            / 1e3
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}W busy / {}W idle", self.busy_watts, self.idle_watts)
    }
}

/// Per-core time accounting exported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreTime {
    /// Milliseconds spent executing tasks.
    pub busy_ms: f64,
    /// Milliseconds spent bandwidth-throttled.
    pub throttled_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_policy_charges_idle_power_for_throttled_time() {
        let m = EnergyModel::new(20.0, 5.0);
        // 100 ms window: 40 busy, 30 throttled, 30 idle.
        let idle = m.joules(ThrottlePolicy::Idle, 40.0, 30.0, 100.0);
        let busy = m.joules(ThrottlePolicy::Busy, 40.0, 30.0, 100.0);
        assert!((idle - (40.0 * 20.0 + 60.0 * 5.0) / 1e3).abs() < 1e-9);
        assert!((busy - (70.0 * 20.0 + 30.0 * 5.0) / 1e3).abs() < 1e-9);
        assert!(idle < busy);
        // The saving is exactly the throttled time × power gap.
        assert!((busy - idle - 30.0 * 15.0 / 1e3).abs() < 1e-9);
    }

    #[test]
    fn no_throttling_makes_policies_equal() {
        let m = EnergyModel::default();
        let a = m.joules(ThrottlePolicy::Idle, 50.0, 0.0, 100.0);
        let b = m.joules(ThrottlePolicy::Busy, 50.0, 0.0, 100.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds window")]
    fn overfull_window_panics() {
        EnergyModel::default().joules(ThrottlePolicy::Idle, 80.0, 30.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "idle watts")]
    fn idle_above_busy_rejected() {
        let _ = EnergyModel::new(10.0, 12.0);
    }

    #[test]
    fn display() {
        assert_eq!(EnergyModel::default().to_string(), "24W busy / 8W idle");
    }
}
