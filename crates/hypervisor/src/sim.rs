//! The discrete-event hypervisor simulation.
//!
//! Realizes a [`SystemAllocation`] as a running two-level system:
//!
//! * each physical core runs the VCPUs assigned to it under
//!   partitioned EDF with the paper's deterministic tie-break
//!   (deadline, then period, then VCPU index);
//! * each VCPU is a **periodic server** — its budget replenishes every
//!   period, drains while it runs (even when its tasks are idle, which
//!   is what makes the supply pattern *well-regulated*), and is lost at
//!   the period boundary;
//! * tasks inside a VCPU run under EDF (for implicit deadlines this is
//!   FIFO per task with earliest-deadline-first across tasks);
//! * the CAT partition plan and the bandwidth regulator are programmed
//!   from the allocation; task memory traffic (when enabled) drains
//!   per-core request budgets, and overflow throttles the core — the
//!   core idles until the refiller's next period.
//!
//! Execution requirements are the allocation-dependent WCETs
//! `eᵢ(c, b)` of each task's core — exactly the quantities the
//! analyses reason about — so a run is a direct check of the analyses'
//! verdicts: an allocation declared schedulable must produce zero
//! deadline misses.

mod shard;

pub use shard::CorePartition;

use crate::config::{IsolationMode, SimConfig};
use crate::error::{SimConfigError, SimError};
use crate::fault::{Fault, FaultKind, FaultPlan, FaultStats};
use crate::probes::Probes;
use crate::report::{DeadlineMiss, HandlerKind, SimReport};
use crate::trace::{SimObservation, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use vc2m_alloc::SystemAllocation;
use vc2m_cat::{CatController, PartitionPlan};
use vc2m_membw::{budget_requests_per_period, BwRegulator, RegulatorConfig, ThrottleAction};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, SimTime, Task, TaskId, TaskSet, VmId, WcetSurface,
};
use vc2m_sched::server::{PeriodicServer, ServerState};
use vc2m_simcore::{EventQueue, MetricsRegistry, MinAvgMax, TraceBuffer};

/// Error building a simulation from an allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimBuildError {
    /// A task referenced by the allocation was missing from the task
    /// table.
    UnknownTask {
        /// The missing task id.
        task: TaskId,
    },
    /// A VCPU's budget exceeds its period at its core's allocation —
    /// the allocation is infeasible and cannot be realized as a
    /// periodic server.
    InfeasibleBudget {
        /// Index of the offending VCPU in the allocation.
        vcpu: usize,
    },
    /// The allocation failed CAT programming (overcommitted
    /// partitions).
    Cat(vc2m_cat::CatError),
    /// The simulation configuration is malformed (see
    /// [`SimConfig::validate`]).
    Config(SimConfigError),
}

impl fmt::Display for SimBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimBuildError::UnknownTask { task } => {
                write!(f, "allocation references unknown task {task}")
            }
            SimBuildError::InfeasibleBudget { vcpu } => {
                write!(
                    f,
                    "vcpu #{vcpu} has budget exceeding its period at its core's allocation"
                )
            }
            SimBuildError::Cat(e) => write!(f, "cache programming failed: {e}"),
            SimBuildError::Config(e) => write!(f, "invalid simulation config: {e}"),
        }
    }
}

impl Error for SimBuildError {}

impl From<vc2m_cat::CatError> for SimBuildError {
    fn from(e: vc2m_cat::CatError) -> Self {
        SimBuildError::Cat(e)
    }
}

impl From<SimConfigError> for SimBuildError {
    fn from(e: SimConfigError) -> Self {
        SimBuildError::Config(e)
    }
}

/// A pending job of a task.
#[derive(Debug, Clone, Copy)]
struct Job {
    index: u64,
    release: SimTime,
    deadline: SimTime,
    remaining: SimDuration,
}

#[derive(Debug, Clone)]
struct SimTask {
    id: TaskId,
    period: SimDuration,
    exec: SimDuration,
    /// The full WCET surface, for dynamic reallocations.
    wcet_surface: WcetSurface,
    /// First-release offset (the delay L between task initialization
    /// and first release of Section 3.2).
    offset: SimDuration,
    vcpu: usize,
    /// Memory requests per millisecond of execution.
    request_rate: f64,
    /// Pending jobs, oldest first (FIFO = EDF for implicit deadlines).
    pending: Vec<Job>,
    next_index: u64,
    response: MinAvgMax,
    /// Active WCET-overrun fault: jobs released before `overrun_until`
    /// carry `overrun_factor ×` their declared demand.
    overrun_factor: f64,
    overrun_until: SimTime,
}

impl SimTask {
    /// The execution demand of a job released at `now`, including any
    /// active overrun fault. Returns the demand and whether the
    /// overrun applied.
    fn release_demand(&self, now: SimTime) -> (SimDuration, bool) {
        if now < self.overrun_until && self.overrun_factor > 1.0 {
            let inflated = (self.exec.as_ns() as f64 * self.overrun_factor).round() as u64;
            (SimDuration(inflated), true)
        } else {
            (self.exec, false)
        }
    }
}

#[derive(Debug, Clone)]
struct SimVcpu {
    server: PeriodicServer,
    tasks: Vec<usize>,
    core: usize,
    /// The VM this VCPU belongs to (fault targeting).
    vm: VmId,
    /// The full budget surface, for dynamic reallocations.
    budget_surface: BudgetSurface,
    /// A pending replenishment-delay fault: the next replenishment is
    /// postponed by this much.
    pending_replenish_delay: Option<SimDuration>,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    vcpu: usize,
    task: Option<usize>,
    start: SimTime,
}

#[derive(Debug, Clone)]
struct SimCore {
    vcpus: Vec<usize>,
    running: Option<Running>,
    generation: u64,
    throttled: bool,
    /// When the current throttle/stall began (for time accounting).
    throttled_since: Option<SimTime>,
    /// An injected throttle fault or core stall holds the core idle
    /// until this instant (cleared by its `FaultClear` event).
    fault_until: Option<SimTime>,
    last_vcpu: Option<usize>,
    /// Nanoseconds spent executing tasks.
    busy_ns: u64,
    /// Nanoseconds spent bandwidth-throttled or fault-stalled.
    throttled_ns: u64,
}

impl SimCore {
    /// Whether the core may not execute anything right now.
    fn is_held(&self) -> bool {
        self.throttled || self.fault_until.is_some()
    }
}

/// A fault with its targets resolved to internal indices (validated by
/// [`HypervisorSim::with_fault_plan`]).
#[derive(Debug, Clone)]
enum ResolvedFault {
    WcetOverrun {
        task: usize,
        factor: f64,
        window: SimDuration,
    },
    ReplenishDelay {
        vcpu: usize,
        delay: SimDuration,
    },
    ThrottleFault {
        core: usize,
    },
    CoreStall {
        core: usize,
        duration: SimDuration,
    },
    LoadSpike {
        tasks: Vec<usize>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A planned run segment on a core ended (completion, budget
    /// exhaustion, server deadline, or traffic overflow).
    SegmentEnd { core: usize, generation: u64 },
    /// A VCPU's period boundary: replenish its budget.
    ServerReplenish { vcpu: usize },
    /// The bandwidth refiller's period boundary.
    Refill,
    /// A scheduled dynamic reallocation (vCAT-style mode change).
    Reallocate { index: usize },
    /// A scheduled fault is injected (index into the resolved plan).
    FaultInject { index: usize },
    /// An injected throttle fault or core stall expires.
    FaultClear { core: usize },
    /// A task releases its next job.
    JobRelease { task: usize },
    /// A job's deadline passes: check for a miss.
    DeadlineCheck { task: usize, job: u64 },
}

// Same-instant ordering: account run segments first, then replenish
// CPU budgets, then refill bandwidth (fault expiries behave like
// refill wakes), then inject faults, then release jobs (so an overrun
// window opening at t already covers releases at t), then check
// deadlines. The relative order of the pre-fault event kinds is
// unchanged from before fault injection existed, which keeps every
// fault-free schedule — and the golden traces pinned over them —
// bit-identical.
const PRIO_SEGMENT_END: u64 = 0;
const PRIO_REPLENISH: u64 = 1;
const PRIO_REFILL: u64 = 2;
const PRIO_REALLOC: u64 = 2;
const PRIO_FAULT: u64 = 3;
const PRIO_RELEASE: u64 = 4;
const PRIO_DEADLINE: u64 = 5;

// Canonical keys order simultaneous equal-priority events by content,
// so the serial delivery order is reconstructible from independently
// advancing shards (see [`shard`]). Within the shared priority class 2
// the order is: reallocations (key = index), then the bandwidth refill
// (`REFILL_KEY`), then fault-stall expiries (`FAULT_CLEAR_BASE +
// core`) — matching the historical insertion order, where the refill
// chain and reallocations are seeded up front while `FaultClear` is
// pushed mid-run.
const REFILL_KEY: u64 = 1 << 60;
const FAULT_CLEAR_BASE: u64 = REFILL_KEY + 1;

// Trace-tag subkey lanes for records emitted *within* one event's
// handling (see `TaggedRing`): the refill phases stamp
// `phase * TAG_SPAN + core`, a load spike stamps `1 + task` per
// released job. Core/task indices stay far below `TAG_SPAN`.
const TAG_SPAN: u64 = 1 << 32;

// Horizon-flush trace records sort after every real event priority.
const PRIO_FLUSH: u64 = PRIO_DEADLINE + 1;

/// Numeric-residue tolerance at a deadline: real-valued budgets meet
/// integer-nanosecond time, so up to ~a microsecond of a job can
/// remain at its deadline purely from rounding. See the
/// `DeadlineCheck` handler.
const MISS_TOLERANCE: SimDuration = SimDuration(1_000);

/// Restricts a simulation clone to one core group of a sharded run:
/// the shard advances only events whose target lives on an owned core
/// and merges with its peers at regulation barriers.
#[derive(Debug, Clone)]
struct ShardScope {
    /// Owned core indices, ascending.
    cores: Vec<usize>,
    /// `local[k]` for every core of the full system.
    local: Vec<bool>,
}

/// One record of a shard's trace ring, tagged with its canonical
/// position in the serial emission order: the `(time, priority, key)`
/// ordering prefix of the event being handled when it was emitted, a
/// `subkey` separating emission lanes within one handler (refill
/// phases, load-spike job releases), and the shard-local emission
/// counter `order`. Sorting the union of shard rings by
/// `(time, priority, key, subkey, order)` reproduces the serial ring.
#[derive(Debug, Clone, Copy)]
struct ShardTraceRecord {
    time: SimTime,
    priority: u64,
    key: u64,
    subkey: u64,
    order: u64,
    event: TraceEvent,
}

impl ShardTraceRecord {
    fn sort_key(&self) -> (SimTime, u64, u64, u64, u64) {
        (self.time, self.priority, self.key, self.subkey, self.order)
    }
}

/// A shard's bounded trace ring. Mirrors `TraceBuffer` eviction (keep
/// the newest `capacity` records, count the rest as dropped) but tags
/// each record for the cross-shard merge. A shard's records are
/// emitted in ascending tag order, so a record evicted *locally* can
/// never belong to the newest `capacity` records *globally* — which is
/// what makes merging the per-shard rings exact.
#[derive(Debug, Clone)]
struct TaggedRing {
    ring: VecDeque<ShardTraceRecord>,
    capacity: usize,
    emitted: u64,
    priority: u64,
    key: u64,
    subkey: u64,
}

impl TaggedRing {
    fn new(capacity: usize) -> Self {
        TaggedRing {
            ring: VecDeque::new(),
            capacity,
            emitted: 0,
            priority: 0,
            key: 0,
            subkey: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: TraceEvent) {
        let order = self.emitted;
        self.emitted += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ShardTraceRecord {
            time,
            priority: self.priority,
            key: self.key,
            subkey: self.subkey,
            order,
            event,
        });
    }
}

/// The simulated hypervisor (see the [crate docs](crate) for the
/// model).
#[derive(Debug, Clone)]
pub struct HypervisorSim {
    config: SimConfig,
    tasks: Vec<SimTask>,
    vcpus: Vec<SimVcpu>,
    cores: Vec<SimCore>,
    queue: EventQueue<Event>,
    regulator: BwRegulator,
    /// Fractional memory-request carry per core (exact long-run
    /// traffic accounting).
    traffic_carry: Vec<f64>,
    /// Current per-core allocations (change under dynamic
    /// reallocation).
    core_allocs: Vec<Alloc>,
    /// Scheduled dynamic reallocations: (time, core, new allocation).
    reallocations: Vec<(SimTime, usize, Alloc)>,
    /// Platform geometry, needed to validate reallocations.
    platform: Platform,
    #[allow(dead_code)] // programmed for fidelity; queried by tests
    cat: CatController,
    probes: Probes,
    trace: TraceBuffer<TraceEvent>,
    /// Per-VCPU execution logs (only when config.record_supply).
    supply_logs: Vec<Option<crate::regulation::SupplyLog>>,
    /// The attached fault plan, if any (kept for replay/reporting; the
    /// `faults.*` metrics are exported exactly when this is set).
    fault_plan: Option<FaultPlan>,
    /// The plan with targets resolved to internal indices.
    resolved_faults: Vec<(SimTime, ResolvedFault)>,
    fault_stats: FaultStats,
    misses: Vec<DeadlineMiss>,
    jobs_completed: u64,
    jobs_released: u64,
    throttle_events: u64,
    context_switches: u64,
    /// Set on shard clones of a sharded run; `None` on the serial path.
    scope: Option<ShardScope>,
    /// Tag-merging trace ring of a shard clone; `None` on the serial
    /// path (which records into `trace` directly).
    tagged: Option<TaggedRing>,
}

impl HypervisorSim {
    /// Builds a simulation of `allocation` running `tasks` on
    /// `platform`.
    ///
    /// # Errors
    ///
    /// * [`SimBuildError::UnknownTask`] if the allocation references a
    ///   task not present in `tasks`.
    /// * [`SimBuildError::InfeasibleBudget`] if some VCPU's budget
    ///   exceeds its period at its core's allocation.
    /// * [`SimBuildError::Cat`] if the cache plan cannot be programmed.
    /// * [`SimBuildError::Config`] if the configuration fails
    ///   [`SimConfig::validate`].
    pub fn new(
        platform: &Platform,
        allocation: &SystemAllocation,
        tasks: &TaskSet,
        config: SimConfig,
    ) -> Result<Self, SimBuildError> {
        config.validate()?;
        let by_id: HashMap<TaskId, &Task> = tasks.iter().map(|t| (t.id(), t)).collect();
        let core_count = allocation.cores_used().max(1);

        // Cache plan: disjoint contiguous masks per core (isolated
        // mode) or the full cache for everyone (shared mode).
        let mut cat = CatController::new(
            core_count,
            core_count.max(1) as u32,
            platform.cache_partitions(),
        )?;
        if config.isolation == IsolationMode::Isolated && allocation.cores_used() > 0 {
            let counts: Vec<u32> = allocation.cores().iter().map(|c| c.alloc.cache).collect();
            PartitionPlan::contiguous(platform.cache_partitions(), &counts)?.program(&mut cat)?;
        }

        // Bandwidth regulator: per-core request budgets from the
        // allocation (isolated mode only).
        let regulation_ms = config.regulation_period.as_ms();
        // Audited expect: `config.validate()` above established a
        // positive regulation period and `core_count` is >= 1, the
        // only `RegulatorConfig::new` failure modes.
        #[allow(clippy::expect_used)]
        let mut regulator = BwRegulator::new(
            RegulatorConfig::new(core_count, regulation_ms).expect("validated config"),
        );
        if config.isolation == IsolationMode::Isolated {
            for (k, core) in allocation.cores().iter().enumerate() {
                let budget = budget_requests_per_period(
                    core.alloc.bandwidth,
                    platform.bw_partition_mbps(),
                    regulation_ms,
                );
                // Audited expect: `k` enumerates `allocation.cores()`
                // and the regulator was sized from the same count.
                #[allow(clippy::expect_used)]
                regulator
                    .set_budget(k, budget)
                    .expect("core index is in range");
            }
        }

        // Task and VCPU tables.
        let mut sim_tasks: Vec<SimTask> = Vec::new();
        let mut sim_vcpus: Vec<SimVcpu> = Vec::new();
        let mut cores: Vec<SimCore> = Vec::new();
        for (k, core) in allocation.cores().iter().enumerate() {
            let mut core_vcpus = Vec::new();
            // Traffic rates are defined relative to the *enforced*
            // budget; in shared mode there is no regulation and no
            // request accounting.
            let budget_rate = if config.isolation == IsolationMode::Isolated {
                regulator.budget(k).unwrap_or(u64::MAX) as f64 / regulation_ms
            } else {
                0.0
            };
            for &vi in &core.vcpus {
                let spec = &allocation.vcpus()[vi];
                let period = SimDuration::from_ms(spec.period());
                let budget_ms = spec.budget(core.alloc);
                if budget_ms > spec.period() + 1e-9 {
                    return Err(SimBuildError::InfeasibleBudget { vcpu: vi });
                }
                let budget = SimDuration::from_ms(budget_ms.min(spec.period()));
                let mut task_indices = Vec::new();
                for &tid in spec.tasks() {
                    let task = by_id
                        .get(&tid)
                        .ok_or(SimBuildError::UnknownTask { task: tid })?;
                    task_indices.push(sim_tasks.len());
                    sim_tasks.push(SimTask {
                        id: tid,
                        period: SimDuration::from_ms(task.period()),
                        exec: SimDuration::from_ms(task.wcet(core.alloc)),
                        wcet_surface: task.wcet_surface().clone(),
                        offset: SimDuration::ZERO,
                        vcpu: sim_vcpus.len(),
                        request_rate: config.traffic_fraction * budget_rate,
                        pending: Vec::new(),
                        next_index: 0,
                        response: MinAvgMax::new(),
                        overrun_factor: 1.0,
                        overrun_until: SimTime::ZERO,
                    });
                }
                core_vcpus.push(sim_vcpus.len());
                sim_vcpus.push(SimVcpu {
                    server: PeriodicServer::new(spec.id(), period, budget, SimTime::ZERO),
                    tasks: task_indices,
                    core: k,
                    vm: spec.vm(),
                    budget_surface: spec.budget_surface().clone(),
                    pending_replenish_delay: None,
                });
            }
            cores.push(SimCore {
                vcpus: core_vcpus,
                running: None,
                generation: 0,
                throttled: false,
                throttled_since: None,
                fault_until: None,
                last_vcpu: None,
                busy_ns: 0,
                throttled_ns: 0,
            });
        }

        let trace = TraceBuffer::with_capacity(config.trace_capacity);
        let supply_logs = vec![None; sim_vcpus.len()];
        let core_count = cores.len();
        Ok(HypervisorSim {
            config,
            tasks: sim_tasks,
            vcpus: sim_vcpus,
            cores,
            queue: EventQueue::new(),
            regulator,
            traffic_carry: vec![0.0; core_count],
            core_allocs: allocation.cores().iter().map(|c| c.alloc).collect(),
            reallocations: Vec::new(),
            platform: *platform,
            cat,
            probes: Probes::new(),
            trace,
            supply_logs,
            fault_plan: None,
            resolved_faults: Vec::new(),
            fault_stats: FaultStats::default(),
            misses: Vec::new(),
            jobs_completed: 0,
            jobs_released: 0,
            throttle_events: 0,
            context_switches: 0,
            scope: None,
            tagged: None,
        })
    }

    /// Runs the simulation and also returns the retained event trace
    /// (useful for debugging scheduling behavior; enable tracing via
    /// [`SimConfig::with_trace_capacity`]).
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run`].
    pub fn run_traced(mut self) -> Result<(SimReport, Vec<(SimTime, TraceEvent)>), SimError> {
        let report = self.run_inner()?;
        let trace = self.trace.iter().map(|r| (r.time, r.payload)).collect();
        Ok((report, trace))
    }

    /// Runs the simulation and returns the report together with the
    /// full [`SimObservation`] — the retained trace and a
    /// [`MetricsRegistry`] of the run's deterministic counters,
    /// gauges and histograms (simulator event counts, per-core time
    /// accounting, per-task response summaries, trace ring statistics,
    /// and the bandwidth regulator's counters).
    ///
    /// Observation is passive: the report is bit-identical to what
    /// [`HypervisorSim::run`] produces for the same configuration.
    ///
    /// # Errors
    ///
    /// See [`HypervisorSim::run`].
    pub fn run_observed(mut self) -> Result<(SimReport, SimObservation), SimError> {
        let report = self.run_inner()?;
        let metrics = self.collect_metrics(&report);
        let observation = SimObservation {
            trace: self.trace.iter().map(|r| (r.time, r.payload)).collect(),
            trace_dropped: self.trace.dropped(),
            metrics,
        };
        Ok((report, observation))
    }

    /// Builds the metrics registry from the finished run. Strictly a
    /// read-out of already-accumulated state — nothing here may touch
    /// simulation behavior.
    fn collect_metrics(&self, report: &SimReport) -> MetricsRegistry {
        Self::render_metrics(
            &self.config,
            report,
            self.trace.len() as u64,
            self.trace.dropped(),
            &self.regulator,
            self.fault_plan.is_some().then_some(self.fault_stats),
        )
    }

    /// Renders the deterministic run counters into a registry — the
    /// single formatting point shared by the serial read-out and the
    /// sharded merge, so both produce byte-identical exports from equal
    /// inputs. Wall-clock handler overheads are left out deliberately:
    /// the registry holds only deterministic values, so its JSON
    /// rendering can be golden-pinned.
    fn render_metrics(
        config: &SimConfig,
        report: &SimReport,
        trace_recorded: u64,
        trace_dropped: u64,
        regulator: &BwRegulator,
        fault_stats: Option<FaultStats>,
    ) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("sim.jobs.released", report.jobs_released);
        m.counter_add("sim.jobs.completed", report.jobs_completed);
        m.counter_add("sim.deadline.misses", report.deadline_misses.len() as u64);
        m.counter_add("sim.throttle.events", report.throttle_events);
        m.counter_add("sim.context.switches", report.context_switches);
        m.counter_add("sim.trace.recorded", trace_recorded);
        m.counter_add("sim.trace.dropped", trace_dropped);
        m.gauge_set("sim.horizon_ms", report.horizon_ms);
        for (k, ct) in report.core_times.iter().enumerate() {
            m.gauge_set(&format!("sim.core{k}.busy_ms"), ct.busy_ms);
            m.gauge_set(&format!("sim.core{k}.throttled_ms"), ct.throttled_ms);
        }
        for (task, response) in &report.response_times {
            m.observe_summary(&format!("sim.response_ms.{task}"), response);
        }
        if config.isolation == IsolationMode::Isolated {
            regulator.export_metrics("membw.", &mut m);
        }
        // Fault counters appear exactly when a plan was attached, so
        // fault-free runs keep their metrics renderings byte-identical
        // to before fault injection existed (golden-pinned).
        if let Some(s) = fault_stats {
            m.counter_add("faults.injected", s.injected);
            m.counter_add("faults.overruns", s.overruns);
            m.counter_add("faults.overrun_jobs", s.overrun_jobs);
            m.counter_add("faults.replenish_delays", s.replenish_delays);
            m.counter_add("faults.throttle_faults", s.throttle_faults);
            m.counter_add("faults.core_stalls", s.core_stalls);
            m.counter_add("faults.load_spikes", s.load_spikes);
            m.counter_add("faults.load_spike_jobs", s.load_spike_jobs);
        }
        m
    }

    /// Runs the simulation to the configured horizon and produces the
    /// report.
    ///
    /// # Errors
    ///
    /// * [`SimError::OvercommittedReallocation`] if a scheduled
    ///   dynamic reallocation, applied at its switch instant against
    ///   the allocations current at that moment, would overcommit the
    ///   platform's partition budgets. This is the only failure mode
    ///   detectable strictly at event-fire time; everything else is
    ///   rejected by the `with_*` builders.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        self.run_inner()
    }

    /// Sets a task's first-release offset: the task is initialized at
    /// time zero but releases its first job `offset_ms` later (the
    /// delay `L` of Section 3.2's release-synchronization hypercall).
    ///
    /// When [`SimConfig::synchronize_releases`] is on (the default),
    /// each VCPU's first release is aligned with the earliest offset
    /// among its tasks — the hypercall's effect. When off, VCPUs are
    /// released at time zero regardless, exposing the abstraction
    /// overhead the paper eliminates.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidOffset`] if the offset is negative or
    ///   non-finite.
    /// * [`SimError::UnknownTask`] if the task is not part of the
    ///   simulated system.
    pub fn with_task_offset(mut self, task: TaskId, offset_ms: f64) -> Result<Self, SimError> {
        if !offset_ms.is_finite() || offset_ms < 0.0 {
            return Err(SimError::InvalidOffset { task, offset_ms });
        }
        let index = self
            .tasks
            .iter()
            .position(|t| t.id == task)
            .ok_or(SimError::UnknownTask { task })?;
        self.tasks[index].offset = SimDuration::from_ms(offset_ms);
        Ok(self)
    }

    /// Schedules a dynamic reallocation: at `at_ms`, core `core`
    /// switches to `alloc` (a vCAT-style mode change). VCPU budgets
    /// and task WCETs follow their surfaces at the new allocation;
    /// budgets exceeding the VCPU period are clamped to it (the core
    /// is then overloaded and will miss deadlines — visible in the
    /// report). In-flight jobs keep their remaining work; new releases
    /// use the new WCET.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidReallocation`] if the switch time is
    ///   negative/non-finite or the allocation lies outside the
    ///   platform's resource space.
    /// * [`SimError::UnknownCore`] if `core` is out of range.
    ///
    /// An *overcommitment* of the total partition budgets is only
    /// detectable when the event fires (against the allocations
    /// current at that moment) and surfaces from `run*` as
    /// [`SimError::OvercommittedReallocation`].
    pub fn with_reallocation(
        mut self,
        at_ms: f64,
        core: usize,
        alloc: Alloc,
    ) -> Result<Self, SimError> {
        if !at_ms.is_finite() || at_ms < 0.0 {
            return Err(SimError::InvalidReallocation {
                core,
                detail: format!("switch time must be finite and >= 0, got {at_ms}"),
            });
        }
        if core >= self.cores.len() {
            return Err(SimError::UnknownCore {
                core,
                cores: self.cores.len(),
            });
        }
        self.platform
            .resources()
            .check(alloc)
            .map_err(|e| SimError::InvalidReallocation {
                core,
                detail: e.to_string(),
            })?;
        self.reallocations
            .push((SimTime::from_ms(at_ms), core, alloc));
        Ok(self)
    }

    /// Attaches a [`FaultPlan`]: each scheduled fault is injected at
    /// its instant during the run. Targets are resolved and parameters
    /// validated here, up front — a malformed plan never starts
    /// running. Attaching a plan (even an empty one) switches on the
    /// `faults.*` metrics in [`HypervisorSim::run_observed`].
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTask`] / [`SimError::UnknownVcpu`] /
    ///   [`SimError::UnknownVm`] / [`SimError::UnknownCore`] if a
    ///   fault targets an entity not part of the simulated system.
    /// * [`SimError::InvalidFault`] if a parameter is out of range
    ///   (non-finite or sub-unity overrun factor; zero window, delay,
    ///   or stall duration).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, SimError> {
        let mut resolved = Vec::with_capacity(plan.len());
        for scheduled in plan.faults() {
            let fault = match scheduled.fault {
                Fault::WcetOverrun {
                    task,
                    factor,
                    window,
                } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(SimError::InvalidFault {
                            detail: format!(
                                "overrun factor for {task} must be finite and >= 1, got {factor}"
                            ),
                        });
                    }
                    if window <= SimDuration::ZERO {
                        return Err(SimError::InvalidFault {
                            detail: format!("overrun window for {task} must be positive"),
                        });
                    }
                    let index = self
                        .tasks
                        .iter()
                        .position(|t| t.id == task)
                        .ok_or(SimError::UnknownTask { task })?;
                    ResolvedFault::WcetOverrun {
                        task: index,
                        factor,
                        window,
                    }
                }
                Fault::ReplenishDelay { vcpu, delay } => {
                    if delay <= SimDuration::ZERO {
                        return Err(SimError::InvalidFault {
                            detail: format!("replenish delay for {vcpu} must be positive"),
                        });
                    }
                    let index = self
                        .vcpus
                        .iter()
                        .position(|v| v.server.id() == vcpu)
                        .ok_or(SimError::UnknownVcpu { vcpu })?;
                    ResolvedFault::ReplenishDelay {
                        vcpu: index,
                        delay,
                    }
                }
                Fault::ThrottleFault { core } => {
                    if core >= self.cores.len() {
                        return Err(SimError::UnknownCore {
                            core,
                            cores: self.cores.len(),
                        });
                    }
                    ResolvedFault::ThrottleFault { core }
                }
                Fault::CoreStall { core, duration } => {
                    if core >= self.cores.len() {
                        return Err(SimError::UnknownCore {
                            core,
                            cores: self.cores.len(),
                        });
                    }
                    if duration <= SimDuration::ZERO {
                        return Err(SimError::InvalidFault {
                            detail: format!("stall duration for core {core} must be positive"),
                        });
                    }
                    ResolvedFault::CoreStall { core, duration }
                }
                Fault::LoadSpike { vm } => {
                    let tasks: Vec<usize> = self
                        .tasks
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| self.vcpus[t.vcpu].vm == vm)
                        .map(|(i, _)| i)
                        .collect();
                    if tasks.is_empty() {
                        return Err(SimError::UnknownVm { vm });
                    }
                    ResolvedFault::LoadSpike { tasks }
                }
            };
            resolved.push((scheduled.at, fault));
        }
        self.resolved_faults = resolved;
        self.fault_plan = Some(plan);
        Ok(self)
    }

    fn run_inner(&mut self) -> Result<SimReport, SimError> {
        self.seed_events();
        let horizon = SimTime::ZERO + self.config.horizon;
        self.advance(None, horizon)?;
        self.finish(horizon);
        Ok(self.build_report())
    }

    // ---- Scope helpers -------------------------------------------------
    //
    // A serial run has no scope: every core, VCPU and task is local. A
    // shard clone owns a core subset; a VCPU or task is local exactly
    // when its core is, so any core partition cleanly partitions the
    // whole entity graph (cores couple only through the regulation
    // barrier).

    fn core_is_local(&self, core: usize) -> bool {
        self.scope.as_ref().is_none_or(|s| s.local[core])
    }

    fn vcpu_is_local(&self, vcpu: usize) -> bool {
        self.core_is_local(self.vcpus[vcpu].core)
    }

    fn task_is_local(&self, task: usize) -> bool {
        self.vcpu_is_local(self.tasks[task].vcpu)
    }

    /// The cores this simulation advances, ascending.
    fn own_cores(&self) -> Vec<usize> {
        match &self.scope {
            Some(s) => s.cores.clone(),
            None => (0..self.cores.len()).collect(),
        }
    }

    /// Whether this shard handles `fault` at all (owns any target).
    fn fault_is_relevant(&self, fault: &ResolvedFault) -> bool {
        match fault {
            ResolvedFault::WcetOverrun { task, .. } => self.task_is_local(*task),
            ResolvedFault::ReplenishDelay { vcpu, .. } => self.vcpu_is_local(*vcpu),
            ResolvedFault::ThrottleFault { core } | ResolvedFault::CoreStall { core, .. } => {
                self.core_is_local(*core)
            }
            ResolvedFault::LoadSpike { tasks } => tasks.iter().any(|&t| self.task_is_local(t)),
        }
    }

    // ---- Event keying --------------------------------------------------

    /// The canonical key of `event`: derived from content, never from
    /// insertion history, so simultaneous equal-priority events order
    /// identically whether they live in one queue or are split across
    /// shard queues.
    fn event_key(&self, event: &Event) -> u64 {
        match *event {
            Event::SegmentEnd { core, .. } => core as u64,
            Event::ServerReplenish { vcpu } => vcpu as u64,
            Event::Refill => REFILL_KEY,
            Event::Reallocate { index } => index as u64,
            Event::FaultInject { index } => index as u64,
            Event::FaultClear { core } => FAULT_CLEAR_BASE + core as u64,
            Event::JobRelease { task } => task as u64,
            Event::DeadlineCheck { task, .. } => task as u64,
        }
    }

    fn push_event(&mut self, time: SimTime, priority: u64, event: Event) {
        let key = self.event_key(&event);
        self.queue.push_keyed(time, priority, key, event);
    }

    /// Points the tagged trace ring (if any) at a new canonical
    /// position. No-op on the serial path.
    fn set_tag(&mut self, priority: u64, key: u64, subkey: u64) {
        if let Some(tag) = &mut self.tagged {
            tag.priority = priority;
            tag.key = key;
            tag.subkey = subkey;
        }
    }

    /// Advances only the emission lane within the current event's tag.
    fn set_subkey(&mut self, subkey: u64) {
        if let Some(tag) = &mut self.tagged {
            tag.subkey = subkey;
        }
    }

    // ---- Run phases ----------------------------------------------------

    /// Seeds the initial event population. Scope-aware: a shard seeds
    /// only releases/replenishments of its own tasks and VCPUs and the
    /// faults it owns a target of, never the `Refill` chain (barriers
    /// replace it) — but *every* reallocation, because reallocation
    /// validity depends on the global allocation table and each shard
    /// must track it identically (see [`Self::apply_reallocation`]).
    fn seed_events(&mut self) {
        // Release synchronization (Section 3.2): align each VCPU's
        // first release with its earliest task release.
        if self.config.synchronize_releases {
            for v in 0..self.vcpus.len() {
                let earliest = self.vcpus[v]
                    .tasks
                    .iter()
                    .map(|&t| self.tasks[t].offset)
                    .min()
                    .unwrap_or(SimDuration::ZERO);
                if earliest > SimDuration::ZERO {
                    self.vcpus[v]
                        .server
                        .synchronize_release(SimTime::ZERO + earliest);
                }
            }
        }
        if self.config.record_supply {
            for v in 0..self.vcpus.len() {
                if !self.vcpu_is_local(v) {
                    continue;
                }
                let server = &self.vcpus[v].server;
                self.supply_logs[v] = Some(crate::regulation::SupplyLog::new(
                    server.period(),
                    server.release(),
                ));
            }
        }
        // Initial events: task releases at their offsets, server
        // replenishments at the first period boundaries, the refiller.
        for t in 0..self.tasks.len() {
            if !self.task_is_local(t) {
                continue;
            }
            let offset = self.tasks[t].offset;
            self.push_event(
                SimTime::ZERO + offset,
                PRIO_RELEASE,
                Event::JobRelease { task: t },
            );
        }
        for v in 0..self.vcpus.len() {
            if !self.vcpu_is_local(v) {
                continue;
            }
            let deadline = self.vcpus[v].server.deadline();
            self.push_event(deadline, PRIO_REPLENISH, Event::ServerReplenish { vcpu: v });
        }
        if self.scope.is_none()
            && self.config.isolation == IsolationMode::Isolated
            && !self.cores.is_empty()
        {
            self.push_event(
                SimTime::ZERO + self.config.regulation_period,
                PRIO_REFILL,
                Event::Refill,
            );
        }
        for index in 0..self.reallocations.len() {
            let (at, _, _) = self.reallocations[index];
            self.push_event(at, PRIO_REALLOC, Event::Reallocate { index });
        }
        for index in 0..self.resolved_faults.len() {
            let (at, fault) = &self.resolved_faults[index];
            if !self.fault_is_relevant(fault) {
                continue;
            }
            let at = *at;
            self.push_event(at, PRIO_FAULT, Event::FaultInject { index });
        }
    }

    /// Drains events up to `horizon`, stopping — without popping — at
    /// the first event whose `(time, priority, key)` is at or past the
    /// refill point of `barrier`, when one is given. Sharded runs
    /// advance window by window with a barrier at every
    /// regulation-period boundary; the serial run passes `None` and
    /// drains to the horizon in one call.
    fn advance(&mut self, barrier: Option<SimTime>, horizon: SimTime) -> Result<(), SimError> {
        while let Some((time, priority, key)) = self.queue.peek_order() {
            if time > horizon {
                break;
            }
            if let Some(b) = barrier {
                if (time, priority, key) >= (b, PRIO_REFILL, REFILL_KEY) {
                    break;
                }
            }
            let Some((now, priority, key, event)) = self.queue.pop_keyed() else {
                break;
            };
            self.set_tag(priority, key, 0);
            self.handle(now, event)?;
        }
        Ok(())
    }

    /// One regulation barrier of a shard: performs the refill phases
    /// over the shard's own cores. The `Refill` trace record itself is
    /// synthesized by the coordinator from the summed per-shard wake
    /// counts (see [`shard`]), so it is not emitted here.
    fn barrier_refill(&mut self, now: SimTime) -> usize {
        self.set_tag(PRIO_REFILL, REFILL_KEY, 0);
        self.refill_phases(now, false)
    }

    /// Horizon flush: close in-flight run segments and open
    /// throttle intervals, or busy/throttled time (and supply logs,
    /// and the energy model on top of them) undercount the final
    /// partial period. The flush cannot complete a job: every event
    /// at or before the horizon has been drained, so an in-flight
    /// segment's planned end lies strictly beyond it, and the
    /// elapsed slice is strictly shorter than the job's remaining
    /// work. A flush-induced throttle opens its interval *at* the
    /// horizon and closes immediately — zero length, as it must be.
    fn finish(&mut self, horizon: SimTime) {
        for core in self.own_cores() {
            self.set_tag(PRIO_FLUSH, core as u64, 0);
            self.suspend(core, horizon);
            if let Some(since) = self.cores[core].throttled_since.take() {
                self.cores[core].throttled_ns += horizon.since(since).as_ns();
            }
        }
    }

    /// Reads the finished run out into a report. Scope-aware: a shard
    /// reports only its own tasks' response times and supply logs
    /// (foreign `core_times` entries are zero and are replaced by the
    /// owning shard's at merge).
    fn build_report(&mut self) -> SimReport {
        let local: Vec<bool> = (0..self.tasks.len()).map(|t| self.task_is_local(t)).collect();
        SimReport {
            deadline_misses: std::mem::take(&mut self.misses),
            jobs_completed: self.jobs_completed,
            jobs_released: self.jobs_released,
            throttle_events: self.throttle_events,
            context_switches: self.context_switches,
            handler_overheads: std::mem::take(&mut self.probes).into_map(),
            response_times: self
                .tasks
                .iter()
                .zip(&local)
                .filter(|(_, &l)| l)
                .map(|(t, _)| (t.id, t.response.clone()))
                .collect(),
            supply_logs: self
                .vcpus
                .iter()
                .zip(std::mem::take(&mut self.supply_logs))
                .filter_map(|(v, log)| log.map(|l| (v.server.id(), l)))
                .collect(),
            core_times: self
                .cores
                .iter()
                .map(|c| crate::energy::CoreTime {
                    busy_ms: c.busy_ns as f64 / 1e6,
                    throttled_ms: c.throttled_ns as f64 / 1e6,
                })
                .collect(),
            horizon_ms: self.config.horizon.as_ms(),
        }
    }

    fn handle(&mut self, now: SimTime, event: Event) -> Result<(), SimError> {
        match event {
            Event::SegmentEnd { core, generation } => {
                if self.cores[core].generation != generation {
                    return Ok(()); // stale: the segment was already preempted
                }
                self.suspend(core, now);
                self.schedule(core, now);
            }
            Event::ServerReplenish { vcpu } => {
                let core = self.vcpus[vcpu].core;
                // If this server is mid-segment, close the segment
                // first (its unused budget is lost at the boundary).
                if self.cores[core].running.is_some_and(|r| r.vcpu == vcpu) {
                    self.suspend(core, now);
                }
                // An injected replenishment-delay fault postpones this
                // replenishment: the server keeps its expired window
                // (deadline <= now, so the scheduler skips it — no
                // supply) until the delayed event fires. The server's
                // replenishment then advances its window by whole
                // periods, so later replenishments return to the
                // period grid.
                if let Some(delay) = self.vcpus[vcpu].pending_replenish_delay.take() {
                    self.push_event(now + delay, PRIO_REPLENISH, Event::ServerReplenish { vcpu });
                    self.schedule(core, now);
                    return Ok(());
                }
                self.probes.time(HandlerKind::CpuBudgetReplenish, || {
                    self.vcpus[vcpu].server.replenish(now);
                });
                let next = self.vcpus[vcpu].server.deadline();
                self.push_event(next, PRIO_REPLENISH, Event::ServerReplenish { vcpu });
                let id = self.vcpus[vcpu].server.id();
                self.trace(now, TraceEvent::Replenish { vcpu: id });
                self.schedule(core, now);
            }
            Event::Refill => {
                self.refill_phases(now, true);
                self.push_event(
                    now + self.config.regulation_period,
                    PRIO_REFILL,
                    Event::Refill,
                );
            }
            Event::Reallocate { index } => {
                let (_, core, alloc) = self.reallocations[index];
                self.apply_reallocation(core, alloc, now)?;
            }
            Event::FaultInject { index } => {
                self.inject_fault(index, now);
            }
            Event::FaultClear { core } => {
                let Some(until) = self.cores[core].fault_until else {
                    return Ok(());
                };
                if now < until {
                    return Ok(()); // superseded by a longer stall
                }
                self.cores[core].fault_until = None;
                if !self.cores[core].throttled {
                    if let Some(since) = self.cores[core].throttled_since.take() {
                        self.cores[core].throttled_ns += now.since(since).as_ns();
                    }
                    self.trace(now, TraceEvent::Unthrottle { core });
                    self.schedule(core, now);
                }
            }
            Event::JobRelease { task } => {
                let (deadline, index, overran) = {
                    let t = &mut self.tasks[task];
                    let index = t.next_index;
                    t.next_index += 1;
                    let deadline = now + t.period;
                    let (remaining, overran) = t.release_demand(now);
                    t.pending.push(Job {
                        index,
                        release: now,
                        deadline,
                        remaining,
                    });
                    (deadline, index, overran)
                };
                if overran {
                    self.fault_stats.overrun_jobs += 1;
                }
                self.jobs_released += 1;
                let period = self.tasks[task].period;
                self.push_event(now + period, PRIO_RELEASE, Event::JobRelease { task });
                self.push_event(
                    deadline,
                    PRIO_DEADLINE,
                    Event::DeadlineCheck { task, job: index },
                );
                let core = self.vcpus[self.tasks[task].vcpu].core;
                // A new job may preempt the current guest-level choice.
                self.schedule(core, now);
            }
            Event::DeadlineCheck { task, job } => {
                // Account the in-flight segment (only if it is this very
                // job) so completions that land exactly on the deadline
                // are not scored as misses.
                let core = self.vcpus[self.tasks[task].vcpu].core;
                let running_this_job = self.cores[core]
                    .running
                    .is_some_and(|r| r.task == Some(task));
                if running_this_job {
                    self.suspend(core, now);
                }
                // Budgets are real-valued (Θ = Π·ΣU) while simulated
                // time is integer nanoseconds, so a job can be left
                // with a few nanoseconds of numeric residue at its
                // deadline. Anything below the tolerance (1 µs, i.e.
                // 10⁻⁵ of the shortest paper-scale period) counts as
                // completed on time and is retired here.
                let position = self.tasks[task].pending.iter().position(|j| j.index == job);
                if let Some(pos) = position {
                    if self.tasks[task].pending[pos].remaining <= MISS_TOLERANCE {
                        let done = self.tasks[task].pending.remove(pos);
                        let response = now.since(done.release).as_ms();
                        self.tasks[task].response.record(response);
                        self.jobs_completed += 1;
                    } else {
                        self.misses.push(DeadlineMiss {
                            task: self.tasks[task].id,
                            job,
                            deadline: now,
                        });
                        let id = self.tasks[task].id;
                        self.trace(now, TraceEvent::Miss { task: id, job });
                    }
                }
                if running_this_job {
                    self.schedule(core, now);
                }
            }
        }
        Ok(())
    }

    /// The bandwidth refiller's period boundary, in its fixed phase
    /// order over the cores this simulation owns (all of them on the
    /// serial path): (0) close in-flight segments of traffic-generating
    /// tasks so their requests are charged to the period that just
    /// ended, not lumped into a later one; (1) replenish budgets —
    /// and, when `record` is set, emit the `Refill` trace record;
    /// (2) wake throttled cores; (3) re-run the scheduler on every
    /// unheld core, ascending. Returns the number of cores woken.
    ///
    /// The serial event loop passes `record = true`; shard barriers
    /// pass `false` and let the coordinator synthesize one record per
    /// barrier from the summed per-shard wake counts, slotted between
    /// the phase-0 and phase-2 lanes by its tag subkey.
    fn refill_phases(&mut self, now: SimTime, record: bool) -> usize {
        let own = self.own_cores();
        let mut suspended = Vec::new();
        for &core in &own {
            self.set_subkey(core as u64);
            let generates_traffic = self.cores[core]
                .running
                .and_then(|r| r.task)
                .is_some_and(|t| self.tasks[t].request_rate > 0.0);
            if generates_traffic {
                self.suspend(core, now);
                suspended.push(core);
            }
        }
        let woken = self
            .probes
            .time(HandlerKind::BwReplenish, || self.regulator.replenish_cores(&own));
        if record {
            self.trace(now, TraceEvent::Refill { woken: woken.len() });
        }
        let woken_count = woken.len();
        for core in woken {
            self.set_subkey(2 * TAG_SPAN + core as u64);
            self.cores[core].throttled = false;
            // A concurrent fault stall keeps the core held (and
            // its idle interval open); its FaultClear closes
            // both.
            if self.cores[core].fault_until.is_none() {
                if let Some(since) = self.cores[core].throttled_since.take() {
                    self.cores[core].throttled_ns += now.since(since).as_ns();
                }
                self.trace(now, TraceEvent::Unthrottle { core });
            }
        }
        suspended.extend(own.iter().copied().filter(|&c| !self.cores[c].is_held()));
        suspended.sort_unstable();
        suspended.dedup();
        for core in suspended {
            self.set_subkey(3 * TAG_SPAN + core as u64);
            self.schedule(core, now);
        }
        woken_count
    }

    /// Injects the `index`-th resolved fault at `now` (see
    /// [`fault`](crate::fault) for the taxonomy and containment
    /// semantics). Scope-aware: single-target faults are only ever
    /// seeded in the shard owning the target; a load spike spanning
    /// shards is seeded in each, with the shard owning the
    /// lowest-indexed target acting as *owner* — it alone counts the
    /// plan-level stats and emits the `FaultInjected` record, while
    /// every shard releases the spike jobs of its own tasks.
    fn inject_fault(&mut self, index: usize, now: SimTime) {
        let fault = self.resolved_faults[index].1.clone();
        let owner = match &fault {
            ResolvedFault::WcetOverrun { task, .. } => self.task_is_local(*task),
            ResolvedFault::ReplenishDelay { vcpu, .. } => self.vcpu_is_local(*vcpu),
            ResolvedFault::ThrottleFault { core } | ResolvedFault::CoreStall { core, .. } => {
                self.core_is_local(*core)
            }
            ResolvedFault::LoadSpike { tasks } => {
                tasks.first().is_some_and(|&t| self.task_is_local(t))
            }
        };
        if owner {
            self.fault_stats.injected += 1;
            let kind = match &fault {
                ResolvedFault::WcetOverrun { .. } => FaultKind::WcetOverrun,
                ResolvedFault::ReplenishDelay { .. } => FaultKind::ReplenishDelay,
                ResolvedFault::ThrottleFault { .. } => FaultKind::ThrottleFault,
                ResolvedFault::CoreStall { .. } => FaultKind::CoreStall,
                ResolvedFault::LoadSpike { .. } => FaultKind::LoadSpike,
            };
            self.trace(now, TraceEvent::FaultInjected { kind });
        }
        match fault {
            ResolvedFault::WcetOverrun {
                task,
                factor,
                window,
            } => {
                self.fault_stats.overruns += 1;
                let t = &mut self.tasks[task];
                t.overrun_factor = factor;
                t.overrun_until = now + window;
            }
            ResolvedFault::ReplenishDelay { vcpu, delay } => {
                self.fault_stats.replenish_delays += 1;
                self.vcpus[vcpu].pending_replenish_delay = Some(delay);
            }
            ResolvedFault::ThrottleFault { core } => {
                self.fault_stats.throttle_faults += 1;
                // Held until the next regulation-period boundary — the
                // same wake instant a genuine budget overflow would
                // observe (a refill exactly at `now` has already fired:
                // PRIO_REFILL < PRIO_FAULT).
                let period = self.config.regulation_period.as_ns();
                let into_period = now.as_ns() % period;
                let until = SimTime(now.as_ns() + (period - into_period));
                self.stall_core(core, until, now);
            }
            ResolvedFault::CoreStall { core, duration } => {
                self.fault_stats.core_stalls += 1;
                self.stall_core(core, now + duration, now);
            }
            ResolvedFault::LoadSpike { tasks } => {
                if owner {
                    self.fault_stats.load_spikes += 1;
                }
                for task in tasks {
                    if !self.task_is_local(task) {
                        continue;
                    }
                    self.set_subkey(1 + task as u64);
                    let (deadline, job_index, overran) = {
                        let t = &mut self.tasks[task];
                        let job_index = t.next_index;
                        t.next_index += 1;
                        let deadline = now + t.period;
                        let (remaining, overran) = t.release_demand(now);
                        // Spike jobs join the back of the FIFO: same
                        // period, so their deadline is no earlier than
                        // any backlogged job's.
                        t.pending.push(Job {
                            index: job_index,
                            release: now,
                            deadline,
                            remaining,
                        });
                        (deadline, job_index, overran)
                    };
                    if overran {
                        self.fault_stats.overrun_jobs += 1;
                    }
                    self.jobs_released += 1;
                    self.fault_stats.load_spike_jobs += 1;
                    self.push_event(
                        deadline,
                        PRIO_DEADLINE,
                        Event::DeadlineCheck {
                            task,
                            job: job_index,
                        },
                    );
                    let core = self.vcpus[self.tasks[task].vcpu].core;
                    self.schedule(core, now);
                }
            }
        }
    }

    /// Holds `core` idle until `until` (throttle fault / core stall).
    /// Overlapping stalls extend to the furthest expiry; the stale
    /// `FaultClear` events of shorter stalls are ignored when they
    /// fire.
    fn stall_core(&mut self, core: usize, until: SimTime, now: SimTime) {
        self.suspend(core, now);
        if self.cores[core].fault_until.is_none_or(|u| until > u) {
            self.cores[core].fault_until = Some(until);
            self.push_event(until, PRIO_REFILL, Event::FaultClear { core });
        }
        if !self.cores[core].throttled && self.cores[core].throttled_since.is_none() {
            self.cores[core].throttled_since = Some(now);
            self.throttle_events += 1;
            self.trace(now, TraceEvent::Throttle { core });
        }
    }

    /// Closes the current run segment on `core`: consumes server
    /// budget, advances the running job, accounts memory traffic, and
    /// (on overflow) throttles the core.
    fn suspend(&mut self, core: usize, now: SimTime) {
        let Some(run) = self.cores[core].running.take() else {
            return;
        };
        self.cores[core].generation += 1;
        let elapsed = now.since(run.start);
        self.vcpus[run.vcpu].server.stop_running(elapsed);
        if elapsed > SimDuration::ZERO {
            if let Some(log) = &mut self.supply_logs[run.vcpu] {
                log.record(run.start, now);
            }
            if run.task.is_some() {
                self.cores[core].busy_ns += elapsed.as_ns();
            }
        }
        if let Some(task) = run.task {
            let completed = {
                let t = &mut self.tasks[task];
                // Audited expect: a segment only starts for a task with
                // a pending head job, and the job can only be retired
                // by this very accounting.
                #[allow(clippy::expect_used)]
                let job = t.pending.first_mut().expect("running task has a job");
                job.remaining = job.remaining.saturating_sub(elapsed);
                if job.remaining == SimDuration::ZERO {
                    let job = t.pending.remove(0);
                    let response = now.since(job.release).as_ms();
                    t.response.record(response);
                    true
                } else {
                    false
                }
            };
            if completed {
                self.jobs_completed += 1;
            }
            // Memory traffic of this segment, with a fractional carry
            // per core so long-run request counts are exact.
            let rate = self.tasks[task].request_rate;
            if rate > 0.0 && elapsed > SimDuration::ZERO {
                let total = rate * elapsed.as_ms() + self.traffic_carry[core];
                let requests = total.floor();
                self.traffic_carry[core] = total - requests;
                // Audited expect: `core` indexes `self.cores`, and the
                // regulator was sized from the same count.
                #[allow(clippy::expect_used)]
                let action = self
                    .regulator
                    .record_requests(core, requests as u64)
                    .expect("core index is in range");
                if action == ThrottleAction::Throttle {
                    self.probes.time(HandlerKind::Throttle, || {
                        self.cores[core].throttled = true;
                    });
                    // A concurrent fault stall already opened the idle
                    // interval; keep its start.
                    if self.cores[core].throttled_since.is_none() {
                        self.cores[core].throttled_since = Some(now);
                    }
                    self.throttle_events += 1;
                    self.trace(now, TraceEvent::Throttle { core });
                }
            }
        }
    }

    /// The scheduler: picks the highest-priority ready server on
    /// `core` (deadline, period, index), and within it the
    /// earliest-deadline pending job, preempting as needed.
    fn schedule(&mut self, core: usize, now: SimTime) {
        if self.cores[core].is_held() {
            // Throttled or fault-stalled cores idle until the refiller
            // (or the fault expiry) wakes them.
            if self.cores[core].running.is_some() {
                self.suspend(core, now);
            }
            return;
        }
        let current = self.cores[core].running;
        let choice = self.probes.time(HandlerKind::Scheduling, || {
            let mut best: Option<(u64, u64, usize)> = None; // (deadline, period, vcpu)
            for &v in &self.cores[core].vcpus {
                let server = &self.vcpus[v].server;
                let ready = match server.state() {
                    ServerState::Ready => true,
                    ServerState::Running => current.is_some_and(|r| r.vcpu == v),
                    ServerState::Depleted => false,
                };
                // A server exactly at its period boundary waits for its
                // replenishment event (same instant, later priority);
                // a server whose (synchronized) first release lies in
                // the future is not active yet.
                if !ready || server.deadline() <= now || server.release() > now {
                    continue;
                }
                let key = (server.deadline().as_ns(), server.period().as_ns(), v);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            best.map(|(_, _, v)| v)
        });
        let Some(next_vcpu) = choice else {
            // Nothing runnable: idle the core.
            if current.is_some() {
                self.suspend(core, now);
            }
            return;
        };
        let next_task = self.pick_job(next_vcpu);
        if let Some(run) = current {
            if run.vcpu == next_vcpu && run.task == next_task {
                return; // no change
            }
            self.suspend(core, now);
        }
        self.start(core, next_vcpu, next_task, now);
    }

    /// The earliest-deadline pending job among a VCPU's tasks.
    fn pick_job(&self, vcpu: usize) -> Option<usize> {
        self.vcpus[vcpu]
            .tasks
            .iter()
            .filter_map(|&t| self.tasks[t].pending.first().map(|j| (j.deadline, t)))
            .min()
            .map(|(_, t)| t)
    }

    /// Starts a run segment for `vcpu` (running `task`'s head job, or
    /// idling its budget away) and plans the segment's end.
    fn start(&mut self, core: usize, vcpu: usize, task: Option<usize>, now: SimTime) {
        let is_switch = self.cores[core].last_vcpu != Some(vcpu);
        self.probes.time(HandlerKind::ContextSwitch, || {
            self.cores[core].last_vcpu = Some(vcpu);
        });
        if is_switch {
            self.context_switches += 1;
        }

        let server = &mut self.vcpus[vcpu].server;
        server.start_running();
        let mut limit = server.remaining_budget();
        // Budget not used by the period boundary is lost.
        limit = limit.min(server.deadline().saturating_since(now));
        if let Some(t) = task {
            // Audited expect: `pick_job` only returns tasks with a
            // pending head job, and nothing ran in between.
            #[allow(clippy::expect_used)]
            let job = self.tasks[t].pending.first().expect("picked job exists");
            limit = limit.min(job.remaining);
            // Traffic overflow caps the segment just past the throttle
            // point (one extra request and one extra nanosecond, so the
            // overflow is guaranteed to fire rather than land short of
            // the boundary by rounding).
            let rate = self.tasks[t].request_rate;
            if rate > 0.0 {
                // Audited expect: `core` indexes `self.cores`, and the
                // regulator was sized from the same count.
                #[allow(clippy::expect_used)]
                let remaining = self
                    .regulator
                    .remaining(core)
                    .expect("core index is in range");
                let to_overflow_ms =
                    (remaining as f64 + 1.0 - self.traffic_carry[core]).max(0.0) / rate;
                let cap = SimDuration(vc2m_model::ms_to_ns(to_overflow_ms) + 1);
                limit = limit.min(cap);
            }
        }
        let generation = self.cores[core].generation;
        self.cores[core].running = Some(Running {
            vcpu,
            task,
            start: now,
        });
        self.push_event(
            now + limit,
            PRIO_SEGMENT_END,
            Event::SegmentEnd { core, generation },
        );
        self.trace(
            now,
            TraceEvent::RunSegment {
                vcpu: self.vcpus[vcpu].server.id(),
                task: task.map(|t| self.tasks[t].id),
                limit,
            },
        );
    }

    /// Applies a dynamic reallocation to `core` (see
    /// [`HypervisorSim::with_reallocation`]).
    fn apply_reallocation(&mut self, core: usize, alloc: Alloc, now: SimTime) -> Result<(), SimError> {
        // Validate the global partition budgets with the new value in
        // place.
        let space = self.platform.resources();
        let mut cache_total = 0u32;
        let mut bw_total = 0u32;
        for (k, a) in self.core_allocs.iter().enumerate() {
            let effective = if k == core { alloc } else { *a };
            cache_total += effective.cache;
            bw_total += effective.bandwidth;
        }
        if cache_total > space.cache_max() || bw_total > space.bw_max() {
            return Err(SimError::OvercommittedReallocation {
                core,
                cache_total,
                cache_max: space.cache_max(),
                bw_total,
                bw_max: space.bw_max(),
            });
        }

        // Every shard of a sharded run processes every reallocation so
        // the global-budget validation above runs against the same
        // allocation table everywhere (reallocations are totally
        // ordered by their canonical keys, and `core_allocs` is mutated
        // by nothing else — so a failing reallocation fails in every
        // shard, identically, and nothing past it is processed). For a
        // foreign core only the bookkeeping applies.
        if !self.core_is_local(core) {
            self.core_allocs[core] = alloc;
            return Ok(());
        }

        // Close the in-flight segment so consumption is accounted at
        // the old parameters.
        self.suspend(core, now);
        self.core_allocs[core] = alloc;

        // Reprogram the bandwidth regulator.
        if self.config.isolation == IsolationMode::Isolated {
            let budget = budget_requests_per_period(
                alloc.bandwidth,
                self.platform.bw_partition_mbps(),
                self.config.regulation_period.as_ms(),
            );
            // Audited expect: `core` was range-checked by
            // `with_reallocation`.
            #[allow(clippy::expect_used)]
            self.regulator
                .set_budget(core, budget)
                .expect("core index is in range");
        }

        // New VCPU budgets and task WCETs from the surfaces. Task
        // request rates are left unchanged: a task's memory demand is a
        // property of the task, so tightening the budget makes the old
        // traffic rate throttle-prone — exactly the regulator's job.
        for vi in self.cores[core].vcpus.clone() {
            let period = self.vcpus[vi].server.period();
            let budget_ms = self.vcpus[vi].budget_surface.at(alloc);
            let budget = SimDuration::from_ms(budget_ms).min(period);
            self.vcpus[vi].server.set_full_budget(budget);
            for ti in self.vcpus[vi].tasks.clone() {
                let wcet = self.tasks[ti].wcet_surface.at(alloc);
                self.tasks[ti].exec = SimDuration::from_ms(wcet);
            }
        }
        self.trace(now, TraceEvent::Reallocate { core, alloc });
        self.schedule(core, now);
        Ok(())
    }

    /// Records a trace event. `TraceEvent` is `Copy`, so the event is
    /// built on the caller's stack and pushing is allocation-free
    /// whether or not the buffer is enabled — the disabled-path
    /// guarantee the `trace_alloc` test pins. A disabled buffer counts
    /// the push as dropped, so `recorded + dropped` is always the total
    /// number of events the run emitted. Shard clones record into
    /// their tagged ring instead, carrying the canonical position for
    /// the cross-shard merge.
    fn trace(&mut self, now: SimTime, event: TraceEvent) {
        if let Some(tag) = &mut self.tagged {
            tag.push(now, event);
        } else {
            self.trace.push(now, event);
        }
    }
}
