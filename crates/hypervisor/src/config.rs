//! Simulation configuration.

use crate::error::SimConfigError;
use vc2m_model::SimDuration;

/// Whether vC²M's cache and bandwidth isolation is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationMode {
    /// Cache partitions are disjoint per core and the bandwidth
    /// regulator enforces per-core budgets (the vC²M configuration).
    Isolated,
    /// No partitioning, no regulation: concurrent tasks contend for
    /// the shared cache and memory bus (the configuration the paper's
    /// Section 3.3 study compares against).
    Shared,
}

/// Configuration of a hypervisor simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// How long to simulate. The default of 10 s covers more than two
    /// hyperperiods of the paper's workloads (periods ≤ 1100 ms with
    /// synchronized releases, so the first hyperperiod after time zero
    /// is the critical one).
    pub horizon: SimDuration,
    /// The bandwidth-regulation period (the paper uses a small
    /// configurable interval, e.g. 1 ms — the default).
    pub regulation_period: SimDuration,
    /// Isolation mode (default: isolated, the vC²M configuration).
    pub isolation: IsolationMode,
    /// Memory requests issued per millisecond of execution by each
    /// task, as a fraction of its core's per-period budget rate.
    /// The default of 0 disables traffic generation: WCET surfaces
    /// already internalize bandwidth stalls (they are measured *under*
    /// regulation), so validation runs must not double-charge them.
    /// Interference studies set this to exercise the regulator.
    pub traffic_fraction: f64,
    /// Whether VCPU first releases are synchronized with their tasks'
    /// first releases (the Section 3.2 hypercall; default true).
    /// Disabling it reproduces the classical unsynchronized setting in
    /// which a task can be released just after its VCPU's budget was
    /// exhausted.
    pub synchronize_releases: bool,
    /// Capacity of the event trace kept for debugging (0 disables).
    pub trace_capacity: usize,
    /// Whether to record each VCPU's exact execution intervals for
    /// well-regulated supply verification
    /// (see [`SupplyLog`](crate::SupplyLog)). Off by default — logs
    /// grow with the number of preemptions.
    pub record_supply: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: SimDuration::from_ms(10_000.0),
            regulation_period: SimDuration::from_ms(1.0),
            isolation: IsolationMode::Isolated,
            traffic_fraction: 0.0,
            synchronize_releases: true,
            trace_capacity: 0,
            record_supply: false,
        }
    }
}

impl SimConfig {
    /// Returns a copy with a different horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Returns a copy with traffic generation at `fraction` of each
    /// core's budget rate (> 1 forces throttling).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or non-finite.
    pub fn with_traffic_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "traffic fraction must be non-negative, got {fraction}"
        );
        self.traffic_fraction = fraction;
        self
    }

    /// Returns a copy with the given trace capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Returns a copy with release synchronization toggled.
    pub fn with_release_synchronization(mut self, on: bool) -> Self {
        self.synchronize_releases = on;
        self
    }

    /// Returns a copy with supply recording toggled.
    pub fn with_supply_recording(mut self, on: bool) -> Self {
        self.record_supply = on;
        self
    }

    /// Re-validates every field. The fields are public (sweep drivers
    /// build configs directly), so the builder assertions can be
    /// bypassed; the simulator constructor calls this before building
    /// any state, turning a malformed config into a typed error
    /// instead of a hang (zero regulation period) or NaN-poisoned
    /// traffic accounting.
    ///
    /// # Errors
    ///
    /// * [`SimConfigError::NonPositiveRegulationPeriod`] if the
    ///   regulation period is zero;
    /// * [`SimConfigError::InvalidTrafficFraction`] if the traffic
    ///   fraction is NaN, infinite, or negative.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.regulation_period <= SimDuration::ZERO {
            return Err(SimConfigError::NonPositiveRegulationPeriod);
        }
        if !self.traffic_fraction.is_finite() || self.traffic_fraction < 0.0 {
            return Err(SimConfigError::InvalidTrafficFraction {
                value: self.traffic_fraction,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::default();
        assert_eq!(c.horizon, SimDuration::from_ms(10_000.0));
        assert_eq!(c.regulation_period, SimDuration::from_ms(1.0));
        assert_eq!(c.isolation, IsolationMode::Isolated);
        assert_eq!(c.traffic_fraction, 0.0);
    }

    #[test]
    fn builders() {
        let c = SimConfig::default()
            .with_horizon(SimDuration::from_ms(500.0))
            .with_traffic_fraction(1.5)
            .with_trace_capacity(128);
        assert_eq!(c.horizon.as_ms(), 500.0);
        assert_eq!(c.traffic_fraction, 1.5);
        assert_eq!(c.trace_capacity, 128);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_traffic_rejected() {
        let _ = SimConfig::default().with_traffic_fraction(-0.1);
    }

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate().expect("default is valid");
    }

    #[test]
    fn zero_regulation_period_rejected() {
        let config = SimConfig {
            regulation_period: SimDuration::ZERO,
            ..SimConfig::default()
        };
        assert_eq!(
            config.validate(),
            Err(SimConfigError::NonPositiveRegulationPeriod)
        );
    }

    #[test]
    fn nan_traffic_fraction_rejected() {
        let config = SimConfig {
            traffic_fraction: f64::NAN,
            ..SimConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(SimConfigError::InvalidTrafficFraction { .. })
        ));
    }

    #[test]
    fn infinite_traffic_fraction_rejected() {
        let config = SimConfig {
            traffic_fraction: f64::INFINITY,
            ..SimConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(SimConfigError::InvalidTrafficFraction { .. })
        ));
    }

    #[test]
    fn negative_traffic_fraction_rejected_by_validate() {
        let config = SimConfig {
            traffic_fraction: -0.5,
            ..SimConfig::default()
        };
        assert_eq!(
            config.validate(),
            Err(SimConfigError::InvalidTrafficFraction { value: -0.5 })
        );
    }
}
