//! Deterministic fault injection.
//!
//! The paper's central claim is *isolation*: under vC²M's holistic
//! CPU + cache + memory-bandwidth allocation, a misbehaving VM cannot
//! steal resources from its schedulable neighbors. A simulator that
//! only ever runs well-behaved workloads never tests that claim. This
//! module supplies the adversary: a [`FaultPlan`] is a replayable
//! schedule of injected faults — WCET overruns, budget-replenishment
//! delays, spurious regulator throttles, transient core stalls, and VM
//! load spikes — that the simulator executes as first-class
//! discrete events.
//!
//! # Determinism
//!
//! A plan is either built explicitly ([`FaultPlan::inject`]) or drawn
//! from a seeded [`DetRng`] ([`FaultPlan::generate`]); either way the
//! plan is plain data, and the simulator injects it at fixed event
//! priorities, so the same plan over the same workload yields a
//! bit-identical [`SimReport`](crate::SimReport) every run. That is
//! what makes chaos campaigns diffable: a failing seed *is* the
//! reproduction recipe.
//!
//! # Containment semantics
//!
//! The simulator's periodic servers drain budget even while their
//! tasks idle, and the core scheduler picks servers by
//! (deadline, period, index) only — never by job content. VM-scoped
//! faults (overruns, load spikes) therefore inflate only the faulty
//! VM's own job backlog: an overrunning job is capped by its VCPU's
//! server budget, so the damage surfaces as deadline misses in the
//! faulty VM alone, while every other VM's supply, response times and
//! miss counts stay bit-identical to a fault-free run (pinned by the
//! `fault_properties` suite and the `chaos_soak` bench). Core-scoped
//! faults (throttle faults, stalls) deliberately break this: they
//! model the infrastructure itself failing, and harm every VM sharing
//! the core.

use std::fmt;
use vc2m_model::{SimDuration, SimTime, TaskId, VcpuId, VmId};
use vc2m_rng::{DetRng, Rng};

/// The kind of an injected fault (used in metrics and traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A task's jobs run a multiple of their declared cost.
    WcetOverrun,
    /// A VCPU's next budget replenishment arrives late.
    ReplenishDelay,
    /// A core is spuriously throttled until the next regulation
    /// boundary.
    ThrottleFault,
    /// A core stalls (executes nothing) for a fixed duration.
    CoreStall,
    /// Every task of a VM releases one extra job immediately.
    LoadSpike,
}

impl FaultKind {
    /// All fault kinds.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::WcetOverrun,
        FaultKind::ReplenishDelay,
        FaultKind::ThrottleFault,
        FaultKind::CoreStall,
        FaultKind::LoadSpike,
    ];

    /// The kinds whose blast radius is a single VM — the kinds the
    /// containment invariant is stated over. Core-scoped kinds
    /// (throttle faults, stalls) and replenishment delays act on
    /// shared infrastructure or the supply side and are excluded.
    pub const VM_SCOPED: [FaultKind; 2] = [FaultKind::WcetOverrun, FaultKind::LoadSpike];

    /// A stable kebab-case name (used in traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WcetOverrun => "wcet-overrun",
            FaultKind::ReplenishDelay => "replenish-delay",
            FaultKind::ThrottleFault => "throttle-fault",
            FaultKind::CoreStall => "core-stall",
            FaultKind::LoadSpike => "load-spike",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Jobs of `task` released within `window` of the injection
    /// instant carry `factor ×` their declared execution demand. The
    /// overrun is still capped by the VCPU's server budget each
    /// period, so it cannot consume another VM's supply.
    WcetOverrun {
        /// The misbehaving task.
        task: TaskId,
        /// Execution-demand multiplier (finite, ≥ 1).
        factor: f64,
        /// How long after injection releases are inflated (> 0).
        window: SimDuration,
    },
    /// The target VCPU's next budget replenishment is delivered
    /// `delay` late; the VCPU has no supply between its period
    /// boundary and the late replenishment. Subsequent replenishments
    /// return to the period grid (the server window advances by whole
    /// periods).
    ReplenishDelay {
        /// The starved VCPU.
        vcpu: VcpuId,
        /// How late the replenishment arrives (> 0).
        delay: SimDuration,
    },
    /// The core is throttled as if its bandwidth budget had
    /// overflowed, until the next regulation-period boundary. The
    /// regulator's own request accounting is untouched — this models a
    /// spurious throttle (e.g. a misread performance counter).
    ThrottleFault {
        /// The throttled core.
        core: usize,
    },
    /// The core executes nothing for `duration` (an SMI storm, a
    /// firmware hiccup). Server budgets on the core keep draining —
    /// unavailable time is real time.
    CoreStall {
        /// The stalled core.
        core: usize,
        /// Stall length (> 0).
        duration: SimDuration,
    },
    /// Every task of `vm` releases one extra job at the injection
    /// instant (a burst arrival / retry storm inside the guest).
    LoadSpike {
        /// The spiking VM.
        vm: VmId,
    },
}

impl Fault {
    /// This fault's kind.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::WcetOverrun { .. } => FaultKind::WcetOverrun,
            Fault::ReplenishDelay { .. } => FaultKind::ReplenishDelay,
            Fault::ThrottleFault { .. } => FaultKind::ThrottleFault,
            Fault::CoreStall { .. } => FaultKind::CoreStall,
            Fault::LoadSpike { .. } => FaultKind::LoadSpike,
        }
    }
}

/// A fault with its injection instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// The valid targets a generated plan may aim at. Collections left
/// empty simply exclude the corresponding fault kinds from the draw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTargets {
    /// Tasks eligible for WCET overruns.
    pub tasks: Vec<TaskId>,
    /// VCPUs eligible for replenishment delays.
    pub vcpus: Vec<VcpuId>,
    /// VMs eligible for load spikes.
    pub vms: Vec<VmId>,
    /// Number of cores eligible for throttle faults and stalls
    /// (cores `0..cores`).
    pub cores: usize,
}

impl FaultTargets {
    /// Whether `kind` has at least one target to aim at.
    pub fn supports(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::WcetOverrun => !self.tasks.is_empty(),
            FaultKind::ReplenishDelay => !self.vcpus.is_empty(),
            FaultKind::ThrottleFault | FaultKind::CoreStall => self.cores > 0,
            FaultKind::LoadSpike => !self.vms.is_empty(),
        }
    }
}

/// Shape of a randomly generated plan: how many faults, over what
/// horizon, which kinds, and the parameter ranges to draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// Number of faults to draw.
    pub count: usize,
    /// Injection instants are uniform in `[0, horizon)`.
    pub horizon: SimDuration,
    /// Kinds to draw from (uniformly). Kinds without a target in the
    /// [`FaultTargets`] are skipped at generation time.
    pub kinds: Vec<FaultKind>,
    /// WCET-overrun factor range (inclusive).
    pub overrun_factor: (f64, f64),
    /// WCET-overrun window range in milliseconds (inclusive).
    pub overrun_window_ms: (f64, f64),
    /// Replenishment-delay range in milliseconds (inclusive).
    pub delay_ms: (f64, f64),
    /// Core-stall duration range in milliseconds (inclusive).
    pub stall_ms: (f64, f64),
}

impl FaultPlanSpec {
    /// A spec drawing all five kinds with paper-scale default
    /// parameter ranges (periods are 10–1100 ms, so windows, delays
    /// and stalls of a few milliseconds to tens of milliseconds are
    /// disruptive without being degenerate).
    pub fn new(count: usize, horizon: SimDuration) -> Self {
        FaultPlanSpec {
            count,
            horizon,
            kinds: FaultKind::ALL.to_vec(),
            overrun_factor: (1.5, 4.0),
            overrun_window_ms: (5.0, 50.0),
            delay_ms: (0.5, 5.0),
            stall_ms: (0.5, 5.0),
        }
    }

    /// A spec restricted to the VM-scoped kinds
    /// ([`FaultKind::VM_SCOPED`]) — the configuration the containment
    /// invariant is checked under.
    pub fn vm_targeted(count: usize, horizon: SimDuration) -> Self {
        FaultPlanSpec {
            kinds: FaultKind::VM_SCOPED.to_vec(),
            ..FaultPlanSpec::new(count, horizon)
        }
    }
}

/// A replayable schedule of faults to inject into a simulation run.
///
/// Attach with
/// [`HypervisorSim::with_fault_plan`](crate::HypervisorSim::with_fault_plan);
/// targets and parameters are validated there, so a plan itself is
/// just data. Faults sharing an injection instant fire in plan order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (attachable; enables `faults.*` metrics export
    /// with zero counts).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `at` (builder style).
    pub fn inject(mut self, at: SimTime, fault: Fault) -> Self {
        self.faults.push(ScheduledFault { at, fault });
        self
    }

    /// The scheduled faults, in plan order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Draws a plan from a seeded RNG: `spec.count` faults, each with
    /// a uniform instant in `[0, spec.horizon)`, a uniform kind among
    /// those `targets` supports, a uniform target, and parameters
    /// uniform in the spec's ranges. Fully determined by
    /// `(seed, targets, spec)`; the result is sorted by injection
    /// instant (stable, so equal instants keep draw order).
    pub fn generate(seed: u64, targets: &FaultTargets, spec: &FaultPlanSpec) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let kinds: Vec<FaultKind> = spec
            .kinds
            .iter()
            .copied()
            .filter(|&k| targets.supports(k))
            .collect();
        let mut faults = Vec::new();
        if kinds.is_empty() || spec.horizon == SimDuration::ZERO {
            return FaultPlan { faults };
        }
        let horizon_ns = spec.horizon.as_ns();
        for _ in 0..spec.count {
            let at = SimTime(rng.gen_range(0..horizon_ns));
            let kind = kinds[rng.gen_range(0..kinds.len() as u64) as usize];
            let fault = match kind {
                FaultKind::WcetOverrun => Fault::WcetOverrun {
                    task: pick(&mut rng, &targets.tasks),
                    factor: rng.gen_range(spec.overrun_factor.0..=spec.overrun_factor.1),
                    window: ms_range(&mut rng, spec.overrun_window_ms),
                },
                FaultKind::ReplenishDelay => Fault::ReplenishDelay {
                    vcpu: pick(&mut rng, &targets.vcpus),
                    delay: ms_range(&mut rng, spec.delay_ms),
                },
                FaultKind::ThrottleFault => Fault::ThrottleFault {
                    core: rng.gen_range(0..targets.cores as u64) as usize,
                },
                FaultKind::CoreStall => Fault::CoreStall {
                    core: rng.gen_range(0..targets.cores as u64) as usize,
                    duration: ms_range(&mut rng, spec.stall_ms),
                },
                FaultKind::LoadSpike => Fault::LoadSpike {
                    vm: pick(&mut rng, &targets.vms),
                },
            };
            faults.push(ScheduledFault { at, fault });
        }
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults }
    }
}

fn pick<T: Copy>(rng: &mut DetRng, from: &[T]) -> T {
    from[rng.gen_range(0..from.len() as u64) as usize]
}

fn ms_range(rng: &mut DetRng, (lo, hi): (f64, f64)) -> SimDuration {
    SimDuration::from_ms(rng.gen_range(lo..=hi))
}

/// Counters of what a run actually injected, exported as the
/// `faults.*` metrics family when a plan is attached (see
/// DESIGN.md, "Fault model").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults whose injection event fired within the horizon.
    pub injected: u64,
    /// WCET-overrun faults injected.
    pub overruns: u64,
    /// Jobs released with inflated execution demand.
    pub overrun_jobs: u64,
    /// Replenishment-delay faults injected.
    pub replenish_delays: u64,
    /// Spurious throttle faults injected.
    pub throttle_faults: u64,
    /// Core stalls injected.
    pub core_stalls: u64,
    /// Load-spike faults injected.
    pub load_spikes: u64,
    /// Extra jobs released by load spikes.
    pub load_spike_jobs: u64,
}

impl FaultStats {
    /// Adds another accumulator's counts into this one. Sharded runs
    /// attribute every fault to exactly one owning shard (a load spike
    /// spanning shards counts plan-level stats in the shard owning its
    /// lowest-indexed target task, per-job stats where each job
    /// lands), so absorbing all per-shard accumulators reproduces the
    /// serial totals.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.overruns += other.overruns;
        self.overrun_jobs += other.overrun_jobs;
        self.replenish_delays += other.replenish_delays;
        self.throttle_faults += other.throttle_faults;
        self.core_stalls += other.core_stalls;
        self.load_spikes += other.load_spikes;
        self.load_spike_jobs += other.load_spike_jobs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> FaultTargets {
        FaultTargets {
            tasks: vec![TaskId(0), TaskId(1), TaskId(2)],
            vcpus: vec![VcpuId(0), VcpuId(1)],
            vms: vec![VmId(0), VmId(1)],
            cores: 2,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultPlanSpec::new(32, SimDuration::from_ms(1000.0));
        let a = FaultPlan::generate(7, &targets(), &spec);
        let b = FaultPlan::generate(7, &targets(), &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let c = FaultPlan::generate(8, &targets(), &spec);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn generated_plans_are_time_sorted_and_in_range() {
        let horizon = SimDuration::from_ms(500.0);
        let spec = FaultPlanSpec::new(64, horizon);
        let plan = FaultPlan::generate(3, &targets(), &spec);
        let mut last = SimTime::ZERO;
        for sf in plan.faults() {
            assert!(sf.at >= last);
            assert!(sf.at < SimTime::ZERO + horizon);
            last = sf.at;
            match sf.fault {
                Fault::WcetOverrun { factor, window, .. } => {
                    assert!((1.5..=4.0).contains(&factor));
                    assert!(window > SimDuration::ZERO);
                }
                Fault::ReplenishDelay { delay, .. } => assert!(delay > SimDuration::ZERO),
                Fault::CoreStall { core, duration } => {
                    assert!(core < 2);
                    assert!(duration > SimDuration::ZERO);
                }
                Fault::ThrottleFault { core } => assert!(core < 2),
                Fault::LoadSpike { .. } => {}
            }
        }
    }

    #[test]
    fn vm_targeted_spec_draws_only_vm_scoped_kinds() {
        let spec = FaultPlanSpec::vm_targeted(64, SimDuration::from_ms(1000.0));
        let plan = FaultPlan::generate(11, &targets(), &spec);
        assert_eq!(plan.len(), 64);
        for sf in plan.faults() {
            assert!(
                FaultKind::VM_SCOPED.contains(&sf.fault.kind()),
                "unexpected kind {:?}",
                sf.fault.kind()
            );
        }
    }

    #[test]
    fn unsupported_kinds_are_skipped() {
        let only_cores = FaultTargets {
            cores: 1,
            ..FaultTargets::default()
        };
        let spec = FaultPlanSpec::new(16, SimDuration::from_ms(100.0));
        let plan = FaultPlan::generate(1, &only_cores, &spec);
        assert_eq!(plan.len(), 16);
        for sf in plan.faults() {
            assert!(matches!(
                sf.fault.kind(),
                FaultKind::ThrottleFault | FaultKind::CoreStall
            ));
        }
        let nothing = FaultTargets::default();
        assert!(FaultPlan::generate(1, &nothing, &spec).is_empty());
    }

    #[test]
    fn builder_keeps_plan_order() {
        let plan = FaultPlan::new()
            .inject(SimTime::from_ms(5.0), Fault::ThrottleFault { core: 0 })
            .inject(
                SimTime::from_ms(1.0),
                Fault::LoadSpike { vm: VmId(0) },
            );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.faults()[0].at, SimTime::from_ms(5.0));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        for kind in FaultKind::ALL {
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
    }
}
