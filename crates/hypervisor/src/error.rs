//! Typed runtime errors for the simulator.
//!
//! Historically the simulator panicked on malformed input (unknown
//! task offsets, out-of-range reallocation targets, overcommitted
//! reallocations discovered at event-fire time). Robust operation —
//! fault-injection campaigns feed the simulator adversarial inputs by
//! design — demands that every such path surface as a typed error the
//! caller can handle, log, and degrade around. [`SimError`] is that
//! type: it is returned by the `with_*` configuration builders and by
//! `run`/`run_traced`/`run_observed`, whose in-run failure modes
//! (today: an overcommitted dynamic reallocation) are only detectable
//! when the event fires.

use std::error::Error;
use std::fmt;
use vc2m_model::{TaskId, VcpuId, VmId};

/// A malformed [`SimConfig`](crate::SimConfig).
///
/// The config struct has public fields (sweep drivers build it
/// directly), so the builder-method assertions can be bypassed;
/// [`SimConfig::validate`](crate::SimConfig::validate) re-checks every
/// field and is called by the simulator constructor before any state
/// is built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimConfigError {
    /// The bandwidth-regulation period is zero — the refiller would
    /// re-arm itself at the same instant forever.
    NonPositiveRegulationPeriod,
    /// The traffic fraction is NaN, infinite, or negative.
    InvalidTrafficFraction {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::NonPositiveRegulationPeriod => {
                write!(f, "regulation period must be positive")
            }
            SimConfigError::InvalidTrafficFraction { value } => {
                write!(f, "traffic fraction must be finite and >= 0, got {value}")
            }
        }
    }
}

impl Error for SimConfigError {}

/// Error configuring or running a [`HypervisorSim`](crate::HypervisorSim).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task id was not part of the simulated system.
    UnknownTask {
        /// The missing task.
        task: TaskId,
    },
    /// A VCPU id was not part of the simulated system.
    UnknownVcpu {
        /// The missing VCPU.
        vcpu: VcpuId,
    },
    /// A VM id owns no task in the simulated system.
    UnknownVm {
        /// The missing VM.
        vm: VmId,
    },
    /// A core index was out of range.
    UnknownCore {
        /// The requested core.
        core: usize,
        /// Number of cores the simulation has.
        cores: usize,
    },
    /// A first-release offset was negative or non-finite.
    InvalidOffset {
        /// The task the offset was for.
        task: TaskId,
        /// The rejected offset.
        offset_ms: f64,
    },
    /// A scheduled reallocation was structurally invalid (bad switch
    /// time, or an allocation outside the platform's resource space).
    InvalidReallocation {
        /// The targeted core.
        core: usize,
        /// What was wrong.
        detail: String,
    },
    /// A dynamic reallocation, applied at its switch instant against
    /// the allocations current at that moment, would overcommit the
    /// platform's partition budgets. Detected when the event fires, so
    /// it surfaces from `run*`, not from the builder.
    OvercommittedReallocation {
        /// The targeted core.
        core: usize,
        /// Total cache partitions after the switch.
        cache_total: u32,
        /// The platform's cache partition budget.
        cache_max: u32,
        /// Total bandwidth partitions after the switch.
        bw_total: u32,
        /// The platform's bandwidth partition budget.
        bw_max: u32,
    },
    /// A fault in an attached [`FaultPlan`](crate::fault::FaultPlan)
    /// carries an out-of-range parameter (non-finite overrun factor,
    /// zero window/delay/duration, ...).
    InvalidFault {
        /// What was wrong.
        detail: String,
    },
    /// A sharded run was given a core partition that is not a
    /// permutation of the simulated cores (a core missing, duplicated,
    /// out of range, or an empty group).
    InvalidPartition {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTask { task } => write!(f, "unknown task {task}"),
            SimError::UnknownVcpu { vcpu } => write!(f, "unknown vcpu {vcpu}"),
            SimError::UnknownVm { vm } => write!(f, "no task of {vm} is simulated"),
            SimError::UnknownCore { core, cores } => {
                write!(f, "unknown core {core} (simulation has {cores})")
            }
            SimError::InvalidOffset { task, offset_ms } => {
                write!(
                    f,
                    "offset for {task} must be finite and >= 0, got {offset_ms}"
                )
            }
            SimError::InvalidReallocation { core, detail } => {
                write!(f, "invalid reallocation of core {core}: {detail}")
            }
            SimError::OvercommittedReallocation {
                core,
                cache_total,
                cache_max,
                bw_total,
                bw_max,
            } => write!(
                f,
                "reallocation of core {core} overcommits partitions \
                 (cache {cache_total}/{cache_max}, bw {bw_total}/{bw_max})"
            ),
            SimError::InvalidFault { detail } => write!(f, "invalid fault: {detail}"),
            SimError::InvalidPartition { detail } => {
                write!(f, "invalid core partition: {detail}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let cases: Vec<(SimError, &str)> = vec![
            (SimError::UnknownTask { task: TaskId(7) }, "T7"),
            (SimError::UnknownVcpu { vcpu: VcpuId(3) }, "V3"),
            (SimError::UnknownVm { vm: VmId(2) }, "VM2"),
            (SimError::UnknownCore { core: 9, cores: 4 }, "core 9"),
            (
                SimError::InvalidOffset {
                    task: TaskId(1),
                    offset_ms: -2.0,
                },
                "-2",
            ),
            (
                SimError::InvalidReallocation {
                    core: 0,
                    detail: "outside space".into(),
                },
                "outside space",
            ),
            (
                SimError::OvercommittedReallocation {
                    core: 1,
                    cache_total: 25,
                    cache_max: 20,
                    bw_total: 3,
                    bw_max: 20,
                },
                "25/20",
            ),
            (
                SimError::InvalidFault {
                    detail: "factor NaN".into(),
                },
                "factor NaN",
            ),
            (
                SimError::InvalidPartition {
                    detail: "core 3 appears twice".into(),
                },
                "appears twice",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn config_error_display() {
        assert!(SimConfigError::NonPositiveRegulationPeriod
            .to_string()
            .contains("positive"));
        assert!(SimConfigError::InvalidTrafficFraction { value: f64::NAN }
            .to_string()
            .contains("NaN"));
    }
}
