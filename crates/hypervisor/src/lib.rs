//! The simulated vC²M hypervisor.
//!
//! This crate stands in for the paper's prototype — Xen 4.8 with a
//! modified RTDS scheduler, vCAT cache management and the
//! performance-counter bandwidth regulator, hosting LITMUS^RT guests —
//! as a deterministic discrete-event simulation:
//!
//! * [`HypervisorSim`] executes a [`SystemAllocation`] end-to-end:
//!   VCPUs run as periodic servers under partitioned EDF with the
//!   paper's deterministic tie-break; tasks run under EDF inside their
//!   VCPUs; the CAT plan isolates per-core cache; the bandwidth
//!   regulator throttles cores that exceed their budgets. The
//!   resulting [`SimReport`] carries deadline misses (the ground truth
//!   the analyses are validated against), job counts, throttle events
//!   and handler-overhead statistics.
//! * [`probes`] exposes the scheduler and regulator hot paths with
//!   wall-clock timing, regenerating the shape of the paper's
//!   overhead Tables 1 and 2.
//! * [`interference`] models co-runner interference on the shared
//!   cache and memory bus, with and without vC²M's isolation — the
//!   WCET-impact study of Section 3.3.
//!
//! [`SystemAllocation`]: vc2m_alloc::SystemAllocation
//!
//! # Example
//!
//! ```
//! use vc2m_alloc::Solution;
//! use vc2m_hypervisor::{HypervisorSim, SimConfig};
//! use vc2m_model::{Platform, Task, TaskId, TaskSet, VmId, VmSpec, WcetSurface};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::platform_a();
//! let space = platform.resources();
//! let tasks: TaskSet = (0..3)
//!     .map(|i| Task::new(TaskId(i), 10.0, WcetSurface::flat(&space, 2.0).unwrap()))
//!     .collect::<Result<_, _>>()?;
//! let vms = vec![VmSpec::new(VmId(0), tasks.clone())?];
//! let allocation = Solution::HeuristicFlattening
//!     .allocate(&vms, &platform, 7)
//!     .into_allocation()
//!     .expect("light workload is schedulable");
//!
//! let report = HypervisorSim::new(&platform, &allocation, &tasks, SimConfig::default())?
//!     .run()?;
//! assert_eq!(report.deadline_misses.len(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Robustness: the simulator is fed adversarial inputs by design
// (fault-injection campaigns), so non-test code must surface failures
// as typed errors, not aborts. The few invariant-backed `expect`s
// carry a targeted, justified `#[allow]`. CI runs clippy with
// `-D warnings`, making these denials there.
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod config;
mod error;
mod report;
mod sim;

pub mod energy;
pub mod fault;
pub mod gantt;
pub mod interference;
pub mod probes;
pub mod regulation;
pub mod trace;

pub use config::{IsolationMode, SimConfig};
pub use energy::{CoreTime, EnergyModel, ThrottlePolicy};
pub use error::{SimConfigError, SimError};
pub use fault::{
    Fault, FaultKind, FaultPlan, FaultPlanSpec, FaultStats, FaultTargets, ScheduledFault,
};
pub use regulation::{RegulationViolation, SupplyLog};
pub use report::{DeadlineMiss, HandlerKind, SimReport};
pub use sim::{CorePartition, HypervisorSim, SimBuildError};
pub use trace::{SimObservation, TraceEvent};
