//! Co-runner interference model: the WCET-impact study of Section 3.3.
//!
//! The paper measures PARSEC WCETs on its prototype with and without
//! cache + bandwidth isolation and finds that isolation substantially
//! reduces WCETs (by eliminating conflict misses and bus contention),
//! with the exact benefit varying per benchmark. Without the
//! prototype, this module substitutes an analytical contention model
//! over the same parametric benchmark profiles used for workload
//! generation:
//!
//! * **with isolation**, a task on a core with allocation `(c, b)` has
//!   the deterministic WCET `e(c, b)` — co-runners cannot touch its
//!   cache partitions or its bandwidth budget;
//! * **without isolation**, `n` co-runners share the whole cache and
//!   bus. The task's *effective* cache shrinks to its
//!   footprint-proportional share of `C`, its effective bandwidth to a
//!   `1/(n+1)` share of `B`, and measurement jitter (seeded, uniform)
//!   models the run-to-run variation of contention. The observed WCET
//!   is the maximum over a configurable number of runs, as in the
//!   paper's max-of-25 measurements.

use vc2m_rng::Rng;
use vc2m_model::{Alloc, ResourceSpace};
use vc2m_simcore::MinAvgMax;
use vc2m_workload::BenchmarkProfile;

/// Result of one isolation-study measurement for a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationMeasurement {
    /// Observed execution-time statistics *with* vC²M isolation, as a
    /// slowdown relative to the benchmark's reference execution time.
    pub isolated: MinAvgMax,
    /// Observed statistics *without* isolation (shared cache and bus).
    pub shared: MinAvgMax,
}

impl IsolationMeasurement {
    /// The ratio of worst observed shared-mode slowdown to worst
    /// isolated slowdown: how much isolation reduced the WCET.
    ///
    /// Returns `None` if either side recorded no runs.
    pub fn wcet_reduction(&self) -> Option<f64> {
        Some(self.shared.max()? / self.isolated.max()?)
    }
}

/// Configuration of the interference study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceConfig {
    /// Number of memory-intensive co-runners on other cores.
    pub co_runners: usize,
    /// Runs per configuration (the paper uses 25).
    pub runs: usize,
    /// Relative measurement jitter (standard deviation of the uniform
    /// noise applied per run).
    pub jitter: f64,
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        InterferenceConfig {
            co_runners: 3,
            runs: 25,
            jitter: 0.03,
        }
    }
}

/// Measures a benchmark's execution-time distribution with and
/// without isolation.
///
/// `alloc` is the per-core allocation the task receives under vC²M
/// (with isolation); without isolation it effectively shares the whole
/// cache and bus with `config.co_runners` contenders.
///
/// # Panics
///
/// Panics if `alloc` lies outside `space` or `config.runs` is zero.
// Audited panics: documented preconditions of this study-driver API
// ("# Panics" above); the callers are fixed experiment binaries with
// literal arguments, not adversarial input paths.
#[allow(clippy::panic)]
pub fn measure<R: Rng>(
    profile: &BenchmarkProfile,
    space: &ResourceSpace,
    alloc: Alloc,
    config: &InterferenceConfig,
    rng: &mut R,
) -> IsolationMeasurement {
    assert!(config.runs > 0, "need at least one run");
    space
        .check(alloc)
        .unwrap_or_else(|e| panic!("interference measure: {e}"));

    let isolated_slowdown = profile.slowdown_at(space, alloc);
    let shared_slowdown = profile.slowdown_at(space, shared_equivalent(space, config.co_runners));

    let mut isolated = MinAvgMax::new();
    let mut shared = MinAvgMax::new();
    for _ in 0..config.runs {
        // With isolation, contention jitter vanishes: only intrinsic
        // measurement noise remains (an order of magnitude smaller).
        let iso_noise = 1.0 + config.jitter * 0.1 * rng.gen_f64();
        isolated.record(isolated_slowdown * iso_noise);
        // Without isolation, contention adds both a systematic factor
        // (already in shared_slowdown) and run-to-run jitter that
        // grows with the number of co-runners.
        let contention_jitter =
            1.0 + config.jitter * (1.0 + config.co_runners as f64) * rng.gen_f64();
        shared.record(shared_slowdown * contention_jitter);
    }
    IsolationMeasurement { isolated, shared }
}

/// The `(c, b)` cell that best approximates running unprotected
/// against `co_runners` memory-intensive contenders: an equal share of
/// the cache and of the bus, clamped to the valid range.
pub fn shared_equivalent(space: &ResourceSpace, co_runners: usize) -> Alloc {
    let share = (co_runners + 1) as u32;
    Alloc::new(
        (space.cache_max() / share).clamp(space.cache_min(), space.cache_max()),
        (space.bw_max() / share).clamp(space.bw_min(), space.bw_max()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;
    use vc2m_workload::ParsecBenchmark;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 20, 1, 20).unwrap()
    }

    #[test]
    fn isolation_reduces_wcet_for_memory_bound_benchmarks() {
        let mut rng = DetRng::seed_from_u64(1);
        let space = space();
        let profile = ParsecBenchmark::Canneal.profile();
        // vC²M gives the task a healthy allocation.
        let m = measure(
            &profile,
            &space,
            Alloc::new(16, 16),
            &InterferenceConfig::default(),
            &mut rng,
        );
        let reduction = m.wcet_reduction().unwrap();
        assert!(
            reduction > 1.5,
            "canneal should benefit substantially, got {reduction}"
        );
    }

    #[test]
    fn compute_bound_benchmarks_gain_less_than_memory_bound() {
        let space = space();
        let config = InterferenceConfig::default();
        let mut rng = DetRng::seed_from_u64(2);
        let light = measure(
            &ParsecBenchmark::Swaptions.profile(),
            &space,
            Alloc::new(16, 16),
            &config,
            &mut rng,
        );
        let mut rng = DetRng::seed_from_u64(2);
        let heavy = measure(
            &ParsecBenchmark::Canneal.profile(),
            &space,
            Alloc::new(16, 16),
            &config,
            &mut rng,
        );
        let light_reduction = light.wcet_reduction().unwrap();
        let heavy_reduction = heavy.wcet_reduction().unwrap();
        assert!(
            heavy_reduction > 1.5 * light_reduction.min(2.0) || heavy_reduction > light_reduction,
            "isolation must matter more for canneal ({heavy_reduction}) than swaptions ({light_reduction})"
        );
        assert!(light_reduction < heavy_reduction);
    }

    #[test]
    fn more_co_runners_mean_more_interference() {
        let space = space();
        let profile = ParsecBenchmark::Streamcluster.profile();
        let mut shared_max = Vec::new();
        for co_runners in [1, 3, 7] {
            let mut rng = DetRng::seed_from_u64(3);
            let config = InterferenceConfig {
                co_runners,
                ..InterferenceConfig::default()
            };
            let m = measure(&profile, &space, Alloc::new(10, 10), &config, &mut rng);
            shared_max.push(m.shared.max().unwrap());
        }
        assert!(shared_max[0] < shared_max[1] && shared_max[1] < shared_max[2]);
    }

    #[test]
    fn isolated_runs_are_tight() {
        let mut rng = DetRng::seed_from_u64(4);
        let m = measure(
            &ParsecBenchmark::Ferret.profile(),
            &space(),
            Alloc::new(10, 10),
            &InterferenceConfig::default(),
            &mut rng,
        );
        let spread = m.isolated.max().unwrap() / m.isolated.min().unwrap();
        assert!(
            spread < 1.01,
            "isolation should remove jitter, got {spread}"
        );
    }

    #[test]
    fn shared_equivalent_clamps() {
        let space = space();
        assert_eq!(shared_equivalent(&space, 1), Alloc::new(10, 10));
        assert_eq!(shared_equivalent(&space, 3), Alloc::new(5, 5));
        // 20 co-runners: the floor kicks in.
        assert_eq!(shared_equivalent(&space, 20), Alloc::new(2, 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let space = space();
        let profile = ParsecBenchmark::X264.profile();
        let a = measure(
            &profile,
            &space,
            Alloc::new(8, 8),
            &InterferenceConfig::default(),
            &mut DetRng::seed_from_u64(5),
        );
        let b = measure(
            &profile,
            &space,
            Alloc::new(8, 8),
            &InterferenceConfig::default(),
            &mut DetRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let config = InterferenceConfig {
            runs: 0,
            ..InterferenceConfig::default()
        };
        let mut rng = DetRng::seed_from_u64(1);
        let _ = measure(
            &ParsecBenchmark::Vips.profile(),
            &space(),
            Alloc::new(8, 8),
            &config,
            &mut rng,
        );
    }
}
