//! Typed simulator trace events.
//!
//! The simulator used to trace by pushing `format!`-built `String`s
//! into its [`TraceBuffer`](vc2m_simcore::TraceBuffer) — which meant a
//! heap allocation per event *even with tracing disabled* (the string
//! was built before the buffer could reject it). [`TraceEvent`] is the
//! structured replacement: a small `Copy` enum carrying the event's
//! identifiers and quantities, constructed on the stack at the call
//! site. A disabled buffer now performs **zero** allocations on the
//! event path, and an enabled one allocates only its preallocated
//! ring — properties pinned by the `trace_alloc` integration test.
//!
//! Rendering to text is deferred to consumers via [`fmt::Display`]
//! (e.g. `vc2m simulate --trace-out`), so the cost of formatting is
//! paid only for the records actually retained and printed.

use crate::fault::FaultKind;
use std::fmt;
use vc2m_model::{Alloc, SimDuration, SimTime, TaskId, VcpuId};
use vc2m_simcore::MetricsRegistry;

/// One structured event of the hypervisor simulation.
///
/// Variants mirror the handler paths of the discrete-event loop; each
/// carries just enough identifiers to reconstruct what happened. The
/// enum is `Copy` (a few words), so emitting an event never touches
/// the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A VCPU's periodic server replenished its budget.
    Replenish {
        /// The replenished VCPU.
        vcpu: VcpuId,
    },
    /// A run segment started on a core: `vcpu` executes `task` (or
    /// idles its budget away when `None`) for at most `limit`.
    RunSegment {
        /// The VCPU whose server runs.
        vcpu: VcpuId,
        /// The task executing inside the VCPU, if any.
        task: Option<TaskId>,
        /// The planned segment length (budget, deadline gap, remaining
        /// work, and traffic cap already applied).
        limit: SimDuration,
    },
    /// A core's bandwidth budget overflowed: the core is throttled for
    /// the rest of the regulation period.
    Throttle {
        /// The throttled core.
        core: usize,
    },
    /// The refiller woke a previously throttled core.
    Unthrottle {
        /// The woken core.
        core: usize,
    },
    /// A job exhausted its deadline with work remaining.
    Miss {
        /// The tardy task.
        task: TaskId,
        /// The tardy job's index (0 = first release).
        job: u64,
    },
    /// A dynamic (vCAT-style) reallocation was applied to a core.
    Reallocate {
        /// The re-programmed core.
        core: usize,
        /// The core's new resource allocation.
        alloc: Alloc,
    },
    /// The bandwidth refiller ran at a regulation-period boundary.
    Refill {
        /// Number of throttled cores woken by this refill.
        woken: usize,
    },
    /// A scheduled fault was injected (see
    /// [`fault`](crate::fault)).
    FaultInjected {
        /// The kind of fault injected.
        kind: FaultKind,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Replenish { vcpu } => write!(f, "replenish {vcpu}"),
            TraceEvent::RunSegment {
                vcpu,
                task: Some(task),
                limit,
            } => write!(f, "run {vcpu} task {task} for {limit}"),
            TraceEvent::RunSegment {
                vcpu,
                task: None,
                limit,
            } => write!(f, "run {vcpu} idle for {limit}"),
            TraceEvent::Throttle { core } => write!(f, "throttle core {core}"),
            TraceEvent::Unthrottle { core } => write!(f, "unthrottle core {core}"),
            TraceEvent::Miss { task, job } => write!(f, "MISS {task} job {job}"),
            TraceEvent::Reallocate { core, alloc } => {
                write!(f, "reallocate core {core} to {alloc}")
            }
            TraceEvent::Refill { woken } => write!(f, "refill woke {woken} cores"),
            TraceEvent::FaultInjected { kind } => write!(f, "inject {kind}"),
        }
    }
}

/// Everything the simulator observed beyond the [`SimReport`]: the
/// retained trace and the metrics registry.
///
/// Produced by [`HypervisorSim::run_observed`]; observation is
/// strictly *passive* — both the trace and the metrics are derived
/// from state the simulation accumulates anyway, so a `SimReport` is
/// bit-identical whether or not it was observed (pinned by the
/// `observability_conformance` test).
///
/// [`SimReport`]: crate::SimReport
/// [`HypervisorSim::run_observed`]: crate::HypervisorSim::run_observed
#[derive(Debug, Clone, PartialEq)]
pub struct SimObservation {
    /// The retained trace records, oldest first (empty unless
    /// [`SimConfig::trace_capacity`](crate::SimConfig) was non-zero).
    pub trace: Vec<(SimTime, TraceEvent)>,
    /// Events not retained: discarded while disabled, or evicted when
    /// the ring was full.
    pub trace_dropped: u64,
    /// Deterministic counters/gauges/histograms of the run (see the
    /// DESIGN.md trace/metrics section for the name schema). Wall-clock
    /// handler overheads stay in
    /// [`SimReport::handler_overheads`](crate::SimReport) — the
    /// registry holds only values that are reproducible bit-for-bit.
    pub metrics: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let cases = [
            (
                TraceEvent::Replenish { vcpu: VcpuId(3) },
                "replenish V3".to_string(),
            ),
            (
                TraceEvent::RunSegment {
                    vcpu: VcpuId(0),
                    task: Some(TaskId(7)),
                    limit: SimDuration::from_ms(4.0),
                },
                format!("run V0 task T7 for {}", SimDuration::from_ms(4.0)),
            ),
            (
                TraceEvent::RunSegment {
                    vcpu: VcpuId(1),
                    task: None,
                    limit: SimDuration::from_ms(2.0),
                },
                format!("run V1 idle for {}", SimDuration::from_ms(2.0)),
            ),
            (TraceEvent::Throttle { core: 2 }, "throttle core 2".into()),
            (
                TraceEvent::Unthrottle { core: 2 },
                "unthrottle core 2".into(),
            ),
            (
                TraceEvent::Miss {
                    task: TaskId(5),
                    job: 9,
                },
                "MISS T5 job 9".into(),
            ),
            (
                TraceEvent::Reallocate {
                    core: 0,
                    alloc: Alloc::new(14, 8),
                },
                "reallocate core 0 to (c=14, b=8)".into(),
            ),
            (TraceEvent::Refill { woken: 1 }, "refill woke 1 cores".into()),
            (
                TraceEvent::FaultInjected {
                    kind: FaultKind::WcetOverrun,
                },
                "inject wcet-overrun".into(),
            ),
        ];
        for (event, expected) in cases {
            assert_eq!(event.to_string(), expected);
        }
    }

    #[test]
    fn trace_event_is_small_and_copy() {
        // The zero-allocation guarantee rests on events being plain
        // stack values; keep them a few words at most.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceEvent>();
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }
}
