//! Simulation reports.

use crate::energy::{CoreTime, EnergyModel, ThrottlePolicy};
use crate::regulation::SupplyLog;
use std::collections::BTreeMap;
use std::fmt;
use vc2m_model::{SimTime, TaskId, VcpuId};
use vc2m_simcore::MinAvgMax;

/// A deadline miss observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineMiss {
    /// The task whose job missed.
    pub task: TaskId,
    /// The job index (0 = first release).
    pub job: u64,
    /// The missed absolute deadline.
    pub deadline: SimTime,
}

/// The hypervisor handler paths whose cost the simulator measures —
/// the rows of the paper's overhead Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HandlerKind {
    /// De-scheduling a VCPU when its core's bandwidth budget overflows
    /// (Table 1, "Throttle").
    Throttle,
    /// The periodic bandwidth refiller (Table 1, "Memory BW budget
    /// replenishment").
    BwReplenish,
    /// Replenishing a VCPU's CPU budget at a period boundary (Table 2,
    /// "CPU budget replenish.").
    CpuBudgetReplenish,
    /// Picking the next VCPU on a core (Table 2, "Scheduling").
    Scheduling,
    /// Switching the running VCPU on a core (Table 2, "Context
    /// switching").
    ContextSwitch,
}

impl HandlerKind {
    /// All handler kinds, in table order.
    pub const ALL: [HandlerKind; 5] = [
        HandlerKind::Throttle,
        HandlerKind::BwReplenish,
        HandlerKind::CpuBudgetReplenish,
        HandlerKind::Scheduling,
        HandlerKind::ContextSwitch,
    ];

    /// The row label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            HandlerKind::Throttle => "Throttle",
            HandlerKind::BwReplenish => "Memory BW budget replenishment",
            HandlerKind::CpuBudgetReplenish => "CPU budget replenish.",
            HandlerKind::Scheduling => "Scheduling",
            HandlerKind::ContextSwitch => "Context switching",
        }
    }
}

impl fmt::Display for HandlerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// All deadline misses, in time order (at most one per job).
    pub deadline_misses: Vec<DeadlineMiss>,
    /// Jobs that completed within the horizon.
    pub jobs_completed: u64,
    /// Jobs released within the horizon.
    pub jobs_released: u64,
    /// Bandwidth throttle events.
    pub throttle_events: u64,
    /// VCPU context switches across all cores.
    pub context_switches: u64,
    /// Measured wall-clock cost of each handler path, in microseconds.
    pub handler_overheads: BTreeMap<HandlerKind, MinAvgMax>,
    /// Observed response times per task, in milliseconds.
    pub response_times: BTreeMap<TaskId, MinAvgMax>,
    /// Per-VCPU execution-interval logs, present when
    /// [`SimConfig::record_supply`](crate::SimConfig) was enabled.
    pub supply_logs: BTreeMap<VcpuId, SupplyLog>,
    /// Per-core busy/throttled time accounting.
    pub core_times: Vec<CoreTime>,
    /// Simulated horizon, in milliseconds.
    pub horizon_ms: f64,
}

impl SimReport {
    /// Whether the run completed with no deadline miss.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// The largest observed response time of `task`, if it completed
    /// any job.
    pub fn worst_response_ms(&self, task: TaskId) -> Option<f64> {
        self.response_times.get(&task).and_then(MinAvgMax::max)
    }

    /// Exact field-wise equality over every **deterministic** field,
    /// ignoring only `handler_overheads` — the one field holding
    /// wall-clock measurements, which legitimately differ run to run
    /// (and, under sharded execution, in sample count: each shard
    /// times its own refill barrier).
    ///
    /// This is the single notion of report equality every conformance
    /// suite pins: serial-vs-serial replay, parallel-vs-serial
    /// sharding, and fault-containment baselines all compare with it.
    /// Float fields compare bitwise (via `PartialEq` on `f64`), so
    /// "equal" here means *bit-identical*, not approximately equal.
    pub fn structural_eq(&self, other: &SimReport) -> bool {
        self.deadline_misses == other.deadline_misses
            && self.jobs_completed == other.jobs_completed
            && self.jobs_released == other.jobs_released
            && self.throttle_events == other.throttle_events
            && self.context_switches == other.context_switches
            && self.response_times == other.response_times
            && self.supply_logs == other.supply_logs
            && self.core_times == other.core_times
            && self.horizon_ms == other.horizon_ms
    }

    /// Total energy of the run under `model` and the given throttling
    /// policy (the paper's regulator uses [`ThrottlePolicy::Idle`];
    /// MemGuard-style regulation corresponds to
    /// [`ThrottlePolicy::Busy`]).
    pub fn energy_joules(&self, model: &EnergyModel, policy: ThrottlePolicy) -> f64 {
        self.core_times
            .iter()
            .map(|ct| model.joules(policy, ct.busy_ms, ct.throttled_ms, self.horizon_ms))
            .sum()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation: {}/{} jobs completed, {} misses, {} throttles, {} context switches",
            self.jobs_completed,
            self.jobs_released,
            self.deadline_misses.len(),
            self.throttle_events,
            self.context_switches
        )?;
        for (kind, stats) in &self.handler_overheads {
            writeln!(f, "  {kind}: {stats} us")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_meets_deadlines() {
        let r = SimReport::default();
        assert!(r.all_deadlines_met());
        assert_eq!(r.worst_response_ms(TaskId(0)), None);
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(HandlerKind::Throttle.label(), "Throttle");
        assert_eq!(HandlerKind::ALL.len(), 5);
        assert!(HandlerKind::BwReplenish
            .to_string()
            .contains("replenishment"));
    }

    #[test]
    fn structural_eq_ignores_only_wall_clock_fields() {
        let mut a = SimReport {
            jobs_released: 4,
            jobs_completed: 4,
            horizon_ms: 100.0,
            ..SimReport::default()
        };
        let mut b = a.clone();
        assert!(a.structural_eq(&b));

        // Wall-clock overheads differing must NOT break equality.
        b.handler_overheads
            .insert(HandlerKind::Scheduling, [1.0, 2.0].into_iter().collect());
        assert!(a.structural_eq(&b));

        // Any deterministic field differing must break it.
        b.jobs_completed = 3;
        assert!(!a.structural_eq(&b));
        b.jobs_completed = 4;
        b.context_switches = 1;
        assert!(!a.structural_eq(&b));
        b.context_switches = 0;
        a.deadline_misses.push(DeadlineMiss {
            task: TaskId(0),
            job: 0,
            deadline: SimTime::from_ms(10.0),
        });
        assert!(!a.structural_eq(&b));
    }

    #[test]
    fn report_display_summarizes() {
        let mut r = SimReport {
            jobs_released: 10,
            jobs_completed: 9,
            ..SimReport::default()
        };
        r.deadline_misses.push(DeadlineMiss {
            task: TaskId(1),
            job: 3,
            deadline: SimTime::from_ms(40.0),
        });
        assert!(!r.all_deadlines_met());
        let s = r.to_string();
        assert!(s.contains("9/10"));
        assert!(s.contains("1 misses"));
    }
}
