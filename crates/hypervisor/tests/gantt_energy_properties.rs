//! Property-based tests for the gantt renderer, supply logs and
//! energy accounting, driven by the in-tree seeded case harness
//! (`vc2m_rng::cases`).

use std::collections::BTreeMap;
use vc2m_hypervisor::gantt;
use vc2m_hypervisor::{EnergyModel, SupplyLog, ThrottlePolicy};
use vc2m_model::{SimDuration, SimTime, VcpuId};
use vc2m_rng::{cases::check, DetRng, Rng};

/// Random disjoint sorted intervals inside `[0, span_ms]`.
fn arb_intervals(span_ms: f64, rng: &mut DetRng) -> Vec<(f64, f64)> {
    let n = rng.gen_range(0usize..12);
    let mut cursor = 0.0;
    let mut out = Vec::new();
    for _ in 0..n {
        let gap = rng.gen_range(0.0f64..1.0) * span_ms * 0.05;
        let len = rng.gen_range(0.001f64..0.2) * span_ms * 0.1;
        let start = cursor + gap;
        let end = start + len;
        if end >= span_ms {
            break;
        }
        out.push((start, end));
        cursor = end;
    }
    out
}

#[test]
fn gantt_marks_exactly_the_executed_cells() {
    check(48, |rng| {
        let intervals = arb_intervals(100.0, rng);
        let mut log = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        for &(s, e) in &intervals {
            log.record(SimTime::from_ms(s), SimTime::from_ms(e));
        }
        let logs: BTreeMap<VcpuId, SupplyLog> = [(VcpuId(0), log)].into_iter().collect();
        let width = 100usize;
        let out = gantt::render(&logs, SimTime::ZERO, SimTime::from_ms(100.0), width);
        let row = out.lines().nth(1).expect("one row");
        let cells: Vec<char> = row
            .split('|')
            .nth(1)
            .expect("framed row")
            .chars()
            .collect();
        assert_eq!(cells.len(), width);
        // Every '#' cell must intersect some interval; every interval
        // must have marked at least one cell.
        let cell_ms = 1.0; // 100 ms / 100 cells
        for (i, &c) in cells.iter().enumerate() {
            let lo = i as f64 * cell_ms;
            let hi = lo + cell_ms;
            let intersects = intervals.iter().any(|&(s, e)| s < hi && e > lo);
            if c == '#' {
                assert!(intersects, "cell {i} marked without execution");
            } else {
                // An unmarked cell may still intersect an interval only
                // through boundary-rounding; require that any interval
                // overlapping it by more than 2x float-eps marks it.
                let overlap: f64 = intervals
                    .iter()
                    .map(|&(s, e)| (e.min(hi) - s.max(lo)).max(0.0))
                    .sum();
                assert!(overlap < 1e-6, "cell {i} unmarked despite {overlap} ms overlap");
            }
        }
    });
}

/// Regression (from a retired shrinker seed): intervals whose
/// endpoints carry float noise near cell boundaries — e.g. an
/// execution ending at `0.020000000000000004` ms inside a 1 ms cell,
/// or one spanning `10.243…‥10.263…` right at the start of cell 10.
/// The renderer must mark exactly the cells these intervals overlap
/// (beyond the 1e-6 ms rounding tolerance) and no others.
#[test]
fn regression_gantt_boundary_noise_intervals_mark_exact_cells() {
    let intervals = [
        (0.0, 0.020000000000000004),
        (3.2315874535240154, 3.2515874535240155),
        (10.243242625565522, 10.263242625565521),
        (10.920415198067866, 13.228895548928268),
        (22.350581221842855, 24.347602527483613),
    ];
    let mut log = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
    for &(s, e) in &intervals {
        log.record(SimTime::from_ms(s), SimTime::from_ms(e));
    }
    let logs: BTreeMap<VcpuId, SupplyLog> = [(VcpuId(0), log)].into_iter().collect();
    let width = 100usize;
    let out = gantt::render(&logs, SimTime::ZERO, SimTime::from_ms(100.0), width);
    let row = out.lines().nth(1).expect("one row");
    let cells: Vec<char> = row
        .split('|')
        .nth(1)
        .expect("framed row")
        .chars()
        .collect();
    assert_eq!(cells.len(), width);
    let cell_ms = 1.0;
    for (i, &c) in cells.iter().enumerate() {
        let lo = i as f64 * cell_ms;
        let hi = lo + cell_ms;
        let intersects = intervals.iter().any(|&(s, e)| s < hi && e > lo);
        if c == '#' {
            assert!(intersects, "cell {i} marked without execution");
        } else {
            let overlap: f64 = intervals
                .iter()
                .map(|&(s, e)| (e.min(hi) - s.max(lo)).max(0.0))
                .sum();
            assert!(overlap < 1e-6, "cell {i} unmarked despite {overlap} ms overlap");
        }
    }
    // The seed's specific cells: 0–3 and 10–13 and 22–24 executed.
    for marked in [0, 3, 10, 11, 12, 13, 22, 23, 24] {
        assert_eq!(cells[marked], '#', "cell {marked} must be marked");
    }
}

#[test]
fn supply_log_total_matches_interval_sum() {
    check(48, |rng| {
        let intervals = arb_intervals(200.0, rng);
        let mut log = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        let mut expected = 0.0;
        for &(s, e) in &intervals {
            log.record(SimTime::from_ms(s), SimTime::from_ms(e));
            expected += e - s;
        }
        let total_ms = log.total_supply_ns() as f64 / 1e6;
        // Each endpoint rounds to whole nanoseconds, so the recorded
        // total may drift by up to ~1 ns per interval.
        assert!((total_ms - expected).abs() < 1e-4);
    });
}

#[test]
fn energy_is_monotone_in_throttled_time() {
    check(48, |rng| {
        let busy = rng.gen_range(0.0f64..400.0);
        let throttled_a = rng.gen_range(0.0f64..300.0);
        let throttled_b = rng.gen_range(0.0f64..300.0);
        let model = EnergyModel::default();
        let total = 1000.0;
        let (lo, hi) = if throttled_a <= throttled_b {
            (throttled_a, throttled_b)
        } else {
            (throttled_b, throttled_a)
        };
        // Under the busy policy, more throttled time costs more energy;
        // under the idle policy it costs the same as idling.
        let busy_lo = model.joules(ThrottlePolicy::Busy, busy, lo, total);
        let busy_hi = model.joules(ThrottlePolicy::Busy, busy, hi, total);
        assert!(busy_hi >= busy_lo - 1e-12);
        let idle_lo = model.joules(ThrottlePolicy::Idle, busy, lo, total);
        let idle_hi = model.joules(ThrottlePolicy::Idle, busy, hi, total);
        assert!((idle_hi - idle_lo).abs() < 1e-9);
        // And idle never exceeds busy.
        assert!(idle_hi <= busy_hi + 1e-12);
    });
}

#[test]
fn regulation_check_accepts_any_single_period() {
    check(48, |rng| {
        // Whatever happens within one period cannot violate
        // well-regulation (there is nothing to compare against).
        let intervals = arb_intervals(9.0, rng);
        let mut log = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        for &(s, e) in &intervals {
            log.record(SimTime::from_ms(s), SimTime::from_ms(e));
        }
        assert_eq!(
            log.regulation_violation(SimTime::from_ms(10.0), SimDuration(1_000)),
            None
        );
    });
}

#[test]
fn repeating_any_pattern_is_well_regulated() {
    check(48, |rng| {
        // Replicating an arbitrary intra-period pattern across periods
        // is by definition well-regulated.
        let intervals = arb_intervals(9.5, rng);
        let mut log = SupplyLog::new(SimDuration::from_ms(10.0), SimTime::ZERO);
        for k in 0..5 {
            let base = k as f64 * 10.0;
            for &(s, e) in &intervals {
                log.record(SimTime::from_ms(base + s), SimTime::from_ms(base + e));
            }
        }
        assert_eq!(
            log.regulation_violation(SimTime::from_ms(50.0), SimDuration(1_000)),
            None
        );
    });
}
