//! Regression tests for the horizon-flush accounting fix, the pinned
//! tardy-job semantics, and the passivity of the observability layer
//! (typed trace + metrics registry).

use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{HypervisorSim, SimConfig, TraceEvent};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    WcetSurface,
};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

fn flat_task(id: usize, period: f64, wcet: f64) -> Task {
    Task::new(
        TaskId(id),
        period,
        WcetSurface::flat(&space(), wcet).unwrap(),
    )
    .unwrap()
}

fn vcpu(id: usize, period: f64, budget: f64, tasks: Vec<TaskId>) -> VcpuSpec {
    VcpuSpec::new(
        VcpuId(id),
        VmId(0),
        period,
        BudgetSurface::flat(&space(), budget).unwrap(),
        tasks,
    )
    .unwrap()
}

fn dedicated(period: f64, budget: f64, wcet: f64) -> (TaskSet, SystemAllocation) {
    let tasks: TaskSet = std::iter::once(flat_task(0, period, wcet)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, period, budget, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    (tasks, allocation)
}

#[test]
fn horizon_flush_accounts_straddling_segment() {
    // Period 10, WCET 8, horizon 995 ms: the 100th job (released at
    // 990) runs 990→998, so 5 ms of its segment lie inside the
    // horizon. Before the flush fix those 5 ms vanished from busy
    // time; now busy is exactly 99 × 8 + 5 = 797 ms.
    let (tasks, allocation) = dedicated(10.0, 8.0, 8.0);
    let config = SimConfig::default().with_horizon(SimDuration::from_ms(995.0));
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    let busy = report.core_times[0].busy_ms;
    assert!(
        (busy - 797.0).abs() < 1e-6,
        "busy time {busy} ms, expected 797 (flush must count the straddling 5 ms)"
    );
    // The flush must NOT complete the in-flight job: its 3 remaining
    // milliseconds lie beyond the horizon.
    assert_eq!(report.jobs_released, 100);
    assert_eq!(report.jobs_completed, 99);
    assert!(report.all_deadlines_met());
}

#[test]
fn horizon_flush_closes_open_throttle_interval() {
    // Heavy traffic: the core alternates run segments and throttle
    // intervals with no idle gap, so busy + throttled must tile the
    // horizon exactly — including the final partial period, where the
    // pre-fix simulator dropped both the in-flight segment and the
    // open `throttled_since` interval.
    let (tasks, allocation) = dedicated(10.0, 5.0, 5.0);
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(400.5))
        .with_traffic_fraction(3.0);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.throttle_events > 0, "workload must throttle");
    let ct = &report.core_times[0];
    assert!(ct.throttled_ms > 100.0, "throttled {} ms", ct.throttled_ms);
    let covered = ct.busy_ms + ct.throttled_ms;
    assert!(
        covered <= report.horizon_ms + 1e-6,
        "covered {covered} ms exceeds the horizon"
    );
    assert!(
        covered >= report.horizon_ms - 1e-6,
        "covered {covered} of {} ms — the flush must close the final \
         segment and throttle interval",
        report.horizon_ms
    );
}

#[test]
fn tardy_job_keeps_running_and_is_counted_once() {
    // Pinned semantics: a job that misses its deadline stays pending
    // and keeps executing to completion. Period 20, WCET 12, served by
    // a half-rate VCPU (Π = 10, Θ = 5): job 0 has received only 10 ms
    // by its deadline at t = 20 (miss), then finishes its last 2 ms in
    // the server's [20, 25] budget window — completing at t = 22,
    // response 22 ms, counted exactly once.
    let tasks: TaskSet = std::iter::once(flat_task(0, 20.0, 12.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let config = SimConfig::default().with_horizon(SimDuration::from_ms(25.0));
    let (report, observation) = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        config.with_trace_capacity(256),
    )
    .unwrap()
    .run_observed()
    .unwrap();

    // The miss is recorded exactly once, for job 0 at its deadline.
    assert_eq!(report.deadline_misses.len(), 1);
    assert_eq!(report.deadline_misses[0].task, TaskId(0));
    assert_eq!(report.deadline_misses[0].job, 0);
    assert_eq!(report.deadline_misses[0].deadline.as_ms(), 20.0);
    let miss_events = observation
        .trace
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Miss { .. }))
        .count();
    assert_eq!(miss_events, 1, "exactly one miss event in the trace");

    // The tardy job still completes (late), and only once.
    assert_eq!(report.jobs_released, 2, "releases at t = 0 and t = 20");
    assert_eq!(report.jobs_completed, 1, "job 0 completes late at t = 22");
    let response = report.response_times.get(&TaskId(0)).unwrap();
    assert_eq!(response.count(), 1);
    assert!(
        (response.max().unwrap() - 22.0).abs() < 1e-6,
        "tardy response {:?}",
        response.max()
    );
}

/// Asserts two reports are bit-identical in every deterministic field.
/// `handler_overheads` is wall-clock (`Instant`-probed), so it is
/// compared structurally — same handlers, same sample counts.
fn assert_reports_identical(a: &vc2m_hypervisor::SimReport, b: &vc2m_hypervisor::SimReport) {
    assert!(a.structural_eq(b), "reports differ structurally");
    let keys = |r: &vc2m_hypervisor::SimReport| {
        r.handler_overheads
            .iter()
            .map(|(k, v)| (*k, v.count()))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(a), keys(b));
}

#[test]
fn observability_is_passive() {
    // Enabling the trace ring and collecting metrics must not change a
    // single bit of the report — a workload with misses, throttling and
    // supply recording exercises every accounting path.
    let t0 = flat_task(0, 10.0, 5.0);
    let t1 = flat_task(1, 20.0, 11.0); // tardy on its half-rate server
    let tasks: TaskSet = vec![t0, t1].into_iter().collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 5.0, vec![TaskId(0)]),
            vcpu(1, 10.0, 5.0, vec![TaskId(1)]),
        ],
        vec![
            CoreAssignment {
                vcpus: vec![0],
                alloc: Alloc::new(10, 2),
            },
            CoreAssignment {
                vcpus: vec![1],
                alloc: Alloc::new(10, 10),
            },
        ],
    );
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(400.5))
        .with_traffic_fraction(2.0)
        .with_supply_recording(true);
    let build = |trace_capacity: usize| {
        HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            config.with_trace_capacity(trace_capacity),
        )
        .unwrap()
    };

    let plain = build(0).run().unwrap();
    let (observed, observation) = build(4096).run_observed().unwrap();
    assert_reports_identical(&plain, &observed);
    assert!(!observation.trace.is_empty());
    assert!(!observation.metrics.is_empty());

    // A disabled ring observes the same report too (and retains no
    // records), so `--metrics-out` without `--trace-out` is also free.
    let (disabled, observation) = build(0).run_observed().unwrap();
    assert_reports_identical(&plain, &disabled);
    assert!(observation.trace.is_empty());
    assert!(observation.trace_dropped > 0, "drops still counted");
}

#[test]
fn metrics_mirror_the_report() {
    let (tasks, allocation) = dedicated(10.0, 5.0, 5.0);
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(400.0))
        .with_traffic_fraction(3.0)
        .with_trace_capacity(128);
    let (report, observation) =
        HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
            .unwrap()
            .run_observed()
            .unwrap();
    let m = &observation.metrics;
    assert_eq!(m.counter("sim.jobs.released"), Some(report.jobs_released));
    assert_eq!(m.counter("sim.jobs.completed"), Some(report.jobs_completed));
    assert_eq!(
        m.counter("sim.deadline.misses"),
        Some(report.deadline_misses.len() as u64)
    );
    assert_eq!(
        m.counter("sim.throttle.events"),
        Some(report.throttle_events)
    );
    assert_eq!(
        m.counter("sim.context.switches"),
        Some(report.context_switches)
    );
    assert_eq!(
        m.counter("sim.trace.recorded"),
        Some(observation.trace.len() as u64)
    );
    assert_eq!(
        m.counter("sim.trace.dropped"),
        Some(observation.trace_dropped)
    );
    assert_eq!(m.gauge("sim.horizon_ms"), Some(report.horizon_ms));
    assert_eq!(
        m.gauge("sim.core0.busy_ms"),
        Some(report.core_times[0].busy_ms)
    );
    assert_eq!(
        m.gauge("sim.core0.throttled_ms"),
        Some(report.core_times[0].throttled_ms)
    );
    let response = m.histogram("sim.response_ms.T0").unwrap();
    assert_eq!(
        response.count(),
        report.response_times.get(&TaskId(0)).unwrap().count()
    );
    // Isolated mode: the regulator's counters ride along.
    assert_eq!(
        m.counter("membw.throttles"),
        Some(report.throttle_events),
        "regulator and simulator must agree on throttle counts"
    );
    assert!(m.counter("membw.periods_elapsed").unwrap_or(0) > 300);
    assert_eq!(m.gauge("membw.period_ms"), Some(1.0));
    // Wall-clock overheads stay out of the registry (determinism).
    assert_eq!(m.histogram("sim.handler_us.Scheduling"), None);
}

#[test]
fn trace_records_typed_events_in_order() {
    let (tasks, allocation) = dedicated(10.0, 4.0, 4.0);
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(100.0))
        .with_trace_capacity(4096);
    let (_, observation) =
        HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
            .unwrap()
            .run_observed()
            .unwrap();
    assert_eq!(observation.trace_dropped, 0, "ring big enough to keep all");
    // Timestamps are monotone.
    assert!(observation
        .trace
        .windows(2)
        .all(|w| w[0].0 <= w[1].0));
    // The dedicated 0.4-utilization server replenishes once per period
    // boundary and the refiller fires once per regulation millisecond
    // (both boundaries at the 100 ms horizon included). Run segments
    // are scheduler-internal (boundary rescheduling may split them), so
    // only a lower bound is pinned: at least one per job.
    let count = |f: fn(&TraceEvent) -> bool| observation.trace.iter().filter(|(_, e)| f(e)).count();
    assert_eq!(
        count(|e| matches!(e, TraceEvent::Replenish { .. })),
        10,
        "one replenishment per boundary"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::Refill { .. })),
        100,
        "one refill per regulation period inside the horizon"
    );
    assert!(count(|e| matches!(e, TraceEvent::RunSegment { .. })) >= 10);
    assert_eq!(count(|e| matches!(e, TraceEvent::Miss { .. })), 0);
    assert_eq!(count(|e| matches!(e, TraceEvent::Throttle { .. })), 0);
    // The very first record is the typed segment start at t = 0.
    assert_eq!(
        observation.trace[0],
        (
            vc2m_model::SimTime::ZERO,
            TraceEvent::RunSegment {
                vcpu: VcpuId(0),
                task: Some(TaskId(0)),
                limit: SimDuration::from_ms(4.0),
            }
        )
    );
}
