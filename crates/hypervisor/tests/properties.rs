//! Property-based tests for the hypervisor simulator, driven by the
//! in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{HypervisorSim, SimConfig};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    WcetSurface,
};
use vc2m_rng::{cases::check, DetRng, Rng};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

/// Builds a single-core system of single-task VCPUs with the given
/// `(period, wcet)` pairs, flattening-style (budget = WCET).
fn flattened_system(specs: &[(f64, f64)]) -> (SystemAllocation, TaskSet) {
    let mut tasks = TaskSet::new();
    let mut vcpus = Vec::new();
    for (i, &(p, e)) in specs.iter().enumerate() {
        tasks.push(Task::new(TaskId(i), p, WcetSurface::flat(&space(), e).unwrap()).unwrap());
        vcpus.push(
            VcpuSpec::new(
                VcpuId(i),
                VmId(0),
                p,
                BudgetSurface::flat(&space(), e).unwrap(),
                vec![TaskId(i)],
            )
            .unwrap(),
        );
    }
    let allocation = SystemAllocation::new(
        vcpus,
        vec![CoreAssignment {
            vcpus: (0..specs.len()).collect(),
            alloc: Alloc::new(10, 10),
        }],
    );
    (allocation, tasks)
}

/// Harmonic `(period, wcet)` specs with total utilization ≤ 1.
fn arb_feasible_harmonic_specs(rng: &mut DetRng) -> Vec<(f64, f64)> {
    let base = rng.gen_range(5.0f64..20.0);
    let n = rng.gen_range(1usize..5);
    let raw: Vec<(u32, f64)> = (0..n)
        .map(|_| (rng.gen_range(0u32..3), rng.gen_range(0.01f64..0.3)))
        .collect();
    // Scale utilizations so the total is at most ~0.95.
    let total: f64 = raw.iter().map(|&(_, u)| u).sum();
    let scale = if total > 0.95 { 0.95 / total } else { 1.0 };
    raw.into_iter()
        .map(|(exp, u)| {
            let p = base * f64::from(1u32 << exp);
            (p, (u * scale * p).max(0.001))
        })
        .collect()
}

#[test]
fn feasible_flattened_systems_never_miss() {
    check(24, |rng| {
        let specs = arb_feasible_harmonic_specs(rng);
        let (allocation, tasks) = flattened_system(&specs);
        if !allocation.is_schedulable() {
            return;
        }
        let horizon = SimDuration::from_ms(500.0);
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(horizon),
        )
        .expect("realizable")
        .run()
        .unwrap();
        assert!(
            report.all_deadlines_met(),
            "misses: {:?}",
            report.deadline_misses
        );
        assert_eq!(report.throttle_events, 0, "no traffic configured");
    });
}

#[test]
fn job_accounting_is_conserved() {
    check(24, |rng| {
        let specs = arb_feasible_harmonic_specs(rng);
        let (allocation, tasks) = flattened_system(&specs);
        if !allocation.is_schedulable() {
            return;
        }
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run()
        .unwrap();
        // Completed ≤ released, and with all deadlines met the gap is
        // at most one in-flight job per task.
        assert!(report.jobs_completed <= report.jobs_released);
        assert!(
            report.jobs_released - report.jobs_completed <= specs.len() as u64,
            "released {} vs completed {}",
            report.jobs_released,
            report.jobs_completed
        );
    });
}

#[test]
fn responses_never_exceed_periods_when_schedulable() {
    check(24, |rng| {
        let specs = arb_feasible_harmonic_specs(rng);
        let (allocation, tasks) = flattened_system(&specs);
        if !allocation.is_schedulable() {
            return;
        }
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run()
        .unwrap();
        for (i, &(p, _)) in specs.iter().enumerate() {
            if let Some(worst) = report.worst_response_ms(TaskId(i)) {
                assert!(
                    worst <= p + 1e-3,
                    "task {i}: response {worst} exceeds period {p}"
                );
            }
        }
    });
}

#[test]
fn overloaded_single_core_always_misses() {
    check(24, |rng| {
        let base = rng.gen_range(5.0f64..20.0);
        let overload = rng.gen_range(1.05f64..1.5);
        // One task with WCET > period-share: utilization > 1 on one
        // VCPU is impossible; instead overload via two tasks.
        let e1 = base * 0.6;
        let e2 = base * 0.6 * overload;
        let (allocation, tasks) = flattened_system(&[(base, e1), (base, e2)]);
        assert!(!allocation.is_schedulable());
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run()
        .unwrap();
        assert!(!report.all_deadlines_met(), "overload must miss");
    });
}

#[test]
fn simulation_is_deterministic() {
    check(24, |rng| {
        let specs = arb_feasible_harmonic_specs(rng);
        let (allocation, tasks) = flattened_system(&specs);
        let run = || {
            HypervisorSim::new(
                &Platform::platform_a(),
                &allocation,
                &tasks,
                SimConfig::default().with_horizon(SimDuration::from_ms(200.0)),
            )
            .expect("realizable")
            .run()
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.context_switches, b.context_switches);
    });
}
