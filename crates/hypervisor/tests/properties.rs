//! Property-based tests for the hypervisor simulator.

use proptest::prelude::*;
use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{HypervisorSim, SimConfig};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    WcetSurface,
};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

/// Builds a single-core system of single-task VCPUs with the given
/// `(period, wcet)` pairs, flattening-style (budget = WCET).
fn flattened_system(specs: &[(f64, f64)]) -> (SystemAllocation, TaskSet) {
    let mut tasks = TaskSet::new();
    let mut vcpus = Vec::new();
    for (i, &(p, e)) in specs.iter().enumerate() {
        tasks.push(Task::new(TaskId(i), p, WcetSurface::flat(&space(), e).unwrap()).unwrap());
        vcpus.push(
            VcpuSpec::new(
                VcpuId(i),
                VmId(0),
                p,
                BudgetSurface::flat(&space(), e).unwrap(),
                vec![TaskId(i)],
            )
            .unwrap(),
        );
    }
    let allocation = SystemAllocation::new(
        vcpus,
        vec![CoreAssignment {
            vcpus: (0..specs.len()).collect(),
            alloc: Alloc::new(10, 10),
        }],
    );
    (allocation, tasks)
}

/// Harmonic `(period, wcet)` specs with total utilization ≤ 1.
fn arb_feasible_harmonic_specs() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (
        5.0f64..20.0,
        proptest::collection::vec((0u32..3, 0.01f64..0.3), 1..5),
    )
        .prop_map(|(base, raw)| {
            // Scale utilizations so the total is at most ~0.95.
            let total: f64 = raw.iter().map(|&(_, u)| u).sum();
            let scale = if total > 0.95 { 0.95 / total } else { 1.0 };
            raw.into_iter()
                .map(|(exp, u)| {
                    let p = base * f64::from(1u32 << exp);
                    (p, (u * scale * p).max(0.001))
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn feasible_flattened_systems_never_miss(specs in arb_feasible_harmonic_specs()) {
        let (allocation, tasks) = flattened_system(&specs);
        prop_assume!(allocation.is_schedulable());
        let horizon = SimDuration::from_ms(500.0);
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(horizon),
        )
        .expect("realizable")
        .run();
        prop_assert!(
            report.all_deadlines_met(),
            "misses: {:?}",
            report.deadline_misses
        );
        prop_assert_eq!(report.throttle_events, 0, "no traffic configured");
    }

    #[test]
    fn job_accounting_is_conserved(specs in arb_feasible_harmonic_specs()) {
        let (allocation, tasks) = flattened_system(&specs);
        prop_assume!(allocation.is_schedulable());
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run();
        // Completed ≤ released, and with all deadlines met the gap is
        // at most one in-flight job per task.
        prop_assert!(report.jobs_completed <= report.jobs_released);
        prop_assert!(
            report.jobs_released - report.jobs_completed <= specs.len() as u64,
            "released {} vs completed {}",
            report.jobs_released,
            report.jobs_completed
        );
    }

    #[test]
    fn responses_never_exceed_periods_when_schedulable(
        specs in arb_feasible_harmonic_specs(),
    ) {
        let (allocation, tasks) = flattened_system(&specs);
        prop_assume!(allocation.is_schedulable());
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run();
        for (i, &(p, _)) in specs.iter().enumerate() {
            if let Some(worst) = report.worst_response_ms(TaskId(i)) {
                prop_assert!(
                    worst <= p + 1e-3,
                    "task {i}: response {worst} exceeds period {p}"
                );
            }
        }
    }

    #[test]
    fn overloaded_single_core_always_misses(
        base in 5.0f64..20.0,
        overload in 1.05f64..1.5,
    ) {
        // One task with WCET > period-share: utilization > 1 on one
        // VCPU is impossible; instead overload via two tasks.
        let e1 = base * 0.6;
        let e2 = base * 0.6 * overload;
        let (allocation, tasks) = flattened_system(&[(base, e1), (base, e2)]);
        prop_assert!(!allocation.is_schedulable());
        let report = HypervisorSim::new(
            &Platform::platform_a(),
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(SimDuration::from_ms(300.0)),
        )
        .expect("realizable")
        .run();
        prop_assert!(!report.all_deadlines_met(), "overload must miss");
    }

    #[test]
    fn simulation_is_deterministic(specs in arb_feasible_harmonic_specs()) {
        let (allocation, tasks) = flattened_system(&specs);
        let run = || {
            HypervisorSim::new(
                &Platform::platform_a(),
                &allocation,
                &tasks,
                SimConfig::default().with_horizon(SimDuration::from_ms(200.0)),
            )
            .expect("realizable")
            .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.deadline_misses, b.deadline_misses);
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        prop_assert_eq!(a.context_switches, b.context_switches);
    }
}
