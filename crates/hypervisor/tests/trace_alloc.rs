//! Pins the zero-allocation guarantee of the typed trace path.
//!
//! The simulator used to build a `format!` `String` for every trace
//! call site *before* the buffer could reject it, so even a disabled
//! trace paid one heap allocation per event. With the typed
//! [`TraceEvent`](vc2m_hypervisor::TraceEvent) (a `Copy` enum) the
//! payload lives on the stack, and an enabled ring allocates only its
//! preallocated storage at build time.
//!
//! The test installs a counting global allocator and compares whole
//! build+run allocation counts between a trace-disabled and a
//! trace-enabled simulation: the difference must be a handful of
//! buffer-setup allocations, not one-per-event. This file deliberately
//! holds a single `#[test]` — a second concurrent test would pollute
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{HypervisorSim, SimConfig, SimReport};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    WcetSurface,
};

fn workload() -> (TaskSet, SystemAllocation) {
    let space = Platform::platform_a().resources();
    let tasks: TaskSet = (0..3)
        .map(|i| {
            Task::new(
                TaskId(i),
                10.0 * (i + 1) as f64,
                WcetSurface::flat(&space, 2.0 + i as f64).unwrap(),
            )
        })
        .collect::<Result<_, _>>()
        .unwrap();
    let vcpus: Vec<VcpuSpec> = (0..3)
        .map(|i| {
            VcpuSpec::new(
                VcpuId(i),
                VmId(0),
                10.0 * (i + 1) as f64,
                BudgetSurface::flat(&space, 2.0 + i as f64).unwrap(),
                vec![TaskId(i)],
            )
            .unwrap()
        })
        .collect();
    let allocation = SystemAllocation::new(
        vcpus,
        vec![CoreAssignment {
            vcpus: vec![0, 1, 2],
            alloc: Alloc::new(10, 10),
        }],
    );
    (tasks, allocation)
}

/// Builds and runs one simulation, returning the report plus the
/// number of heap allocations (alloc + realloc calls) it performed.
fn measured_run(trace_capacity: usize) -> (SimReport, u64, u64) {
    let (tasks, allocation) = workload();
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(1000.0))
        .with_trace_capacity(trace_capacity);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (report, observation) =
        HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
            .unwrap()
            .run_observed()
            .unwrap();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let events = observation.trace.len() as u64 + observation.trace_dropped;
    (report, allocs, events)
}

#[test]
fn trace_payloads_never_allocate() {
    // Warm-up run so lazy one-time allocations don't skew the counts.
    let (baseline_report, _, _) = measured_run(0);

    let (disabled_report, disabled_allocs, disabled_events) = measured_run(0);
    let (enabled_report, enabled_allocs, enabled_events) = measured_run(4096);

    // The comparison is meaningful only if the run emits far more
    // events than the allowed allocation delta.
    assert!(disabled_events > 1_000, "only {disabled_events} events");
    assert_eq!(disabled_events, enabled_events);
    // Deterministic fields agree across all three runs (the full
    // bit-identity conformance lives in tests/observability.rs;
    // `handler_overheads` is wall-clock and excluded here).
    assert_eq!(baseline_report.core_times, disabled_report.core_times);
    assert_eq!(
        disabled_report.core_times, enabled_report.core_times,
        "tracing must not perturb the simulation"
    );
    assert_eq!(disabled_report.jobs_completed, enabled_report.jobs_completed);

    // Stringly tracing cost ~1 allocation per event (> 1000 here).
    // The typed path costs none; enabling the ring adds only its
    // one-off preallocated storage (metrics collection is identical on
    // both sides). Allow a small constant slack for allocator noise.
    let delta = enabled_allocs.abs_diff(disabled_allocs);
    assert!(
        delta <= 8,
        "enabling tracing cost {delta} extra allocations over \
         {enabled_events} events (disabled {disabled_allocs}, enabled \
         {enabled_allocs}) — the event path must not allocate per event"
    );
}
