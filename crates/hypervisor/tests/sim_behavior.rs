//! Behavioral tests of the hypervisor simulator: scheduling
//! correctness, budget enforcement, throttling, and agreement with the
//! analyses' verdicts.

use vc2m_alloc::{CoreAssignment, Solution, SystemAllocation};
use vc2m_hypervisor::{HypervisorSim, SimBuildError, SimConfig, SimError};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    VmSpec, WcetSurface,
};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

fn flat_task(id: usize, period: f64, wcet: f64) -> Task {
    Task::new(
        TaskId(id),
        period,
        WcetSurface::flat(&space(), wcet).unwrap(),
    )
    .unwrap()
}

fn vcpu(id: usize, period: f64, budget: f64, tasks: Vec<TaskId>) -> VcpuSpec {
    VcpuSpec::new(
        VcpuId(id),
        VmId(0),
        period,
        BudgetSurface::flat(&space(), budget).unwrap(),
        tasks,
    )
    .unwrap()
}

fn short_config() -> SimConfig {
    SimConfig::default().with_horizon(SimDuration::from_ms(400.0))
}

#[test]
fn single_task_on_dedicated_vcpu_never_misses() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .run()
        .unwrap();
    assert!(
        report.all_deadlines_met(),
        "misses: {:?}",
        report.deadline_misses
    );
    // 400 ms / 10 ms: the 40th job's deadline is at the horizon.
    assert!(
        report.jobs_completed >= 39,
        "completed {}",
        report.jobs_completed
    );
    assert!(report.worst_response_ms(TaskId(0)).unwrap() <= 10.0);
}

#[test]
fn full_utilization_core_with_two_servers_meets_all_deadlines() {
    // Theorem 2 setting: harmonic tasks, well-regulated servers,
    // total bandwidth exactly 1.0.
    let t0 = flat_task(0, 10.0, 4.0); // U = 0.4
    let t1 = flat_task(1, 20.0, 8.0); // U = 0.4
    let t2 = flat_task(2, 40.0, 8.0); // U = 0.2
    let tasks: TaskSet = vec![t0, t1, t2].into_iter().collect();
    // VCPU 0 serves tasks 0; VCPU 1 serves tasks 1 and 2 (Π = 20,
    // Θ = 20·0.6 = 12).
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 4.0, vec![TaskId(0)]),
            vcpu(1, 20.0, 12.0, vec![TaskId(1), TaskId(2)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .run()
        .unwrap();
    assert!(
        report.all_deadlines_met(),
        "theorem 2 violated in simulation: {:?}",
        report.deadline_misses
    );
    assert!(report.context_switches > 10);
}

#[test]
fn undersized_budget_causes_misses() {
    // WCET 5 but budget 4: every job falls 1 ms short.
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .run()
        .unwrap();
    assert!(!report.all_deadlines_met());
    assert!(report.deadline_misses.len() > 10);
    assert_eq!(report.deadline_misses[0].task, TaskId(0));
}

#[test]
fn edf_tie_break_prefers_smaller_period_then_index() {
    // Two servers with equal deadlines at t=0: period 10 (index 1) and
    // period 10 (index 0) — index 0 must run first; against period 5
    // (index 2), the period-5 server wins the tie at common deadlines.
    // Behavioral proxy: all deadlines met at full utilization requires
    // the deterministic order; a wrong tie-break (e.g. random) still
    // schedules this workload, so instead assert the response-time
    // signature: the smaller-period task 2 always finishes first.
    let t0 = flat_task(0, 10.0, 3.0);
    let t1 = flat_task(1, 10.0, 3.0);
    let t2 = flat_task(2, 5.0, 2.0);
    let tasks: TaskSet = vec![t0, t1, t2].into_iter().collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 3.0, vec![TaskId(0)]),
            vcpu(1, 10.0, 3.0, vec![TaskId(1)]),
            vcpu(2, 5.0, 2.0, vec![TaskId(2)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1, 2],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .run()
        .unwrap();
    assert!(report.all_deadlines_met(), "{:?}", report.deadline_misses);
    // Period-5 server has the earliest deadline at t=0 → runs first:
    // its first response is exactly its WCET.
    let r2 = report.response_times.get(&TaskId(2)).unwrap();
    assert!((r2.min().unwrap() - 2.0).abs() < 1e-6);
    // Among the period-10 servers, index 0 beats index 1 after the
    // period-5 server: task 0 responds at 5, task 1 at 8.
    let r0 = report.response_times.get(&TaskId(0)).unwrap();
    let r1 = report.response_times.get(&TaskId(1)).unwrap();
    assert!(r0.max().unwrap() < r1.max().unwrap());
}

#[test]
fn heavy_traffic_triggers_throttling() {
    // Utilization 0.5 task with traffic at 3× its core's budget rate:
    // the regulator must throttle, stretching execution.
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 2), // tight bandwidth budget
        }],
    );
    let config = short_config().with_traffic_fraction(3.0);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.throttle_events > 0, "regulator never throttled");
    // 3× overload: the task needs ~3 regulation periods of wall time
    // per period of execution — it cannot keep its deadlines.
    assert!(!report.all_deadlines_met());
}

#[test]
fn moderate_traffic_within_budget_never_throttles() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let config = short_config().with_traffic_fraction(0.5);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.throttle_events, 0);
    assert!(report.all_deadlines_met());
}

#[test]
fn solution_pipeline_allocations_simulate_cleanly() {
    // End-to-end: allocations produced by each solution must run
    // without misses.
    let platform = Platform::platform_a();
    let tasks: TaskSet = vec![
        flat_task(0, 100.0, 20.0),
        flat_task(1, 200.0, 30.0),
        flat_task(2, 400.0, 40.0),
        flat_task(3, 100.0, 10.0),
    ]
    .into_iter()
    .collect();
    let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
    for solution in Solution::ALL {
        let Some(allocation) = solution.allocate(&vms, &platform, 5).into_allocation() else {
            continue;
        };
        let config = SimConfig::default().with_horizon(SimDuration::from_ms(1200.0));
        let report = HypervisorSim::new(&platform, &allocation, &tasks, config)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.all_deadlines_met(),
            "{solution}: allocation declared schedulable but missed: {:?}",
            report.deadline_misses
        );
    }
}

#[test]
fn reports_are_deterministic() {
    let tasks: TaskSet = vec![flat_task(0, 10.0, 3.0), flat_task(1, 20.0, 8.0)]
        .into_iter()
        .collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 3.0, vec![TaskId(0)]),
            vcpu(1, 20.0, 8.0, vec![TaskId(1)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1],
            alloc: Alloc::new(10, 10),
        }],
    );
    let run = || {
        let report =
            HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
                .unwrap()
                .run()
                .unwrap();
        (
            report.deadline_misses.len(),
            report.jobs_completed,
            report.context_switches,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn unknown_task_rejected() {
    let tasks = TaskSet::new();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(9)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap_err();
    assert_eq!(err, SimBuildError::UnknownTask { task: TaskId(9) });
}

#[test]
fn infeasible_budget_rejected() {
    // Budget 15 > period 10 at the assigned allocation.
    let surface =
        BudgetSurface::from_fn(&space(), |a| if a == Alloc::new(2, 1) { 15.0 } else { 5.0 })
            .unwrap();
    let v = VcpuSpec::new(VcpuId(0), VmId(0), 10.0, surface, vec![TaskId(0)]).unwrap();
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![v],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(2, 1),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap_err();
    assert_eq!(err, SimBuildError::InfeasibleBudget { vcpu: 0 });
}

#[test]
fn overhead_probes_populate() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .run()
        .unwrap();
    use vc2m_hypervisor::HandlerKind;
    for kind in [
        HandlerKind::CpuBudgetReplenish,
        HandlerKind::Scheduling,
        HandlerKind::ContextSwitch,
        HandlerKind::BwReplenish,
    ] {
        let stats = report
            .handler_overheads
            .get(&kind)
            .unwrap_or_else(|| panic!("no samples for {kind}"));
        assert!(stats.count() > 0);
        assert!(stats.min().unwrap() >= 0.0);
    }
}

#[test]
fn release_synchronization_rescues_offset_tasks() {
    // A zero-slack flattened VCPU (Π = 10, Θ = 4) whose task is first
    // released at t = 3, sharing its core with a non-harmonic
    // competitor (Π = 7): without the Section 3.2 hypercall the task's
    // windows straddle two server periods and come up short; with it,
    // Theorem 1 holds exactly.
    let victim = flat_task(0, 10.0, 4.0);
    let competitor = flat_task(1, 7.0, 4.1);
    let tasks: TaskSet = vec![victim, competitor].into_iter().collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 4.0, vec![TaskId(0)]),
            vcpu(1, 7.0, 4.1, vec![TaskId(1)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1],
            alloc: Alloc::new(10, 10),
        }],
    );
    let run = |synchronized: bool| {
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(5000.0))
            .with_release_synchronization(synchronized);
        HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
            .expect("realizable")
            .with_task_offset(TaskId(0), 3.0)
            .unwrap()
            .run()
            .unwrap()
    };
    let without = run(false);
    let with = run(true);
    let victim_misses = |r: &vc2m_hypervisor::SimReport| {
        r.deadline_misses
            .iter()
            .filter(|m| m.task == TaskId(0))
            .count()
    };
    assert!(
        victim_misses(&without) > 0,
        "unsynchronized zero-slack VCPU should miss"
    );
    assert_eq!(
        victim_misses(&with),
        0,
        "the hypercall must rescue the task"
    );
}

#[test]
fn synchronized_server_is_inactive_before_its_release() {
    // A lone synchronized server must not burn budget before its first
    // release: the task released at t = 7 with budget = WCET completes
    // immediately.
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .expect("realizable")
        .with_task_offset(TaskId(0), 7.0)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.all_deadlines_met(), "{:?}", report.deadline_misses);
    // Response equals the WCET: the server was fresh at the release.
    let worst = report.worst_response_ms(TaskId(0)).expect("jobs ran");
    assert!((worst - 4.0).abs() < 1e-6, "worst response {worst}");
}

#[test]
fn offset_for_unknown_task_is_a_typed_error() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .expect("realizable")
        .with_task_offset(TaskId(9), 1.0)
        .unwrap_err();
    assert_eq!(err, SimError::UnknownTask { task: TaskId(9) });
}

#[test]
fn negative_offset_is_a_typed_error() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .expect("realizable")
        .with_task_offset(TaskId(0), -1.0)
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidOffset { .. }), "{err}");
}

#[test]
fn harmonic_servers_are_well_regulated() {
    // Theorem 2's premise, verified empirically: harmonic periodic
    // servers with synchronized releases and the deterministic EDF
    // tie-break have supply patterns that repeat every period.
    use vc2m_model::{SimDuration as D, SimTime};
    let t0 = flat_task(0, 10.0, 4.0);
    let t1 = flat_task(1, 20.0, 8.0);
    let t2 = flat_task(2, 40.0, 8.0);
    let tasks: TaskSet = vec![t0, t1, t2].into_iter().collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 4.0, vec![TaskId(0)]),
            vcpu(1, 20.0, 8.0, vec![TaskId(1)]),
            vcpu(2, 40.0, 8.0, vec![TaskId(2)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1, 2],
            alloc: Alloc::new(10, 10),
        }],
    );
    let config = SimConfig::default()
        .with_horizon(D::from_ms(400.0))
        .with_supply_recording(true);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.all_deadlines_met());
    assert_eq!(report.supply_logs.len(), 3);
    let horizon = SimTime::from_ms(400.0);
    for (id, log) in &report.supply_logs {
        assert!(log.complete_periods(horizon) >= 10);
        assert_eq!(
            log.regulation_violation(horizon, vc2m_model::SimDuration(1_000)),
            None,
            "{id} is not well-regulated"
        );
    }
}

#[test]
fn non_harmonic_servers_are_not_well_regulated() {
    // Periods 10 and 7 on one core: EDF priorities drift period to
    // period, so at least one server's supply pattern cannot repeat.
    use vc2m_model::{SimDuration as D, SimTime};
    let t0 = flat_task(0, 10.0, 4.0);
    let t1 = flat_task(1, 7.0, 4.0);
    let tasks: TaskSet = vec![t0, t1].into_iter().collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 4.0, vec![TaskId(0)]),
            vcpu(1, 7.0, 4.0, vec![TaskId(1)]),
        ],
        vec![CoreAssignment {
            vcpus: vec![0, 1],
            alloc: Alloc::new(10, 10),
        }],
    );
    let config = SimConfig::default()
        .with_horizon(D::from_ms(700.0))
        .with_supply_recording(true);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    let horizon = SimTime::from_ms(700.0);
    let violated = report.supply_logs.values().any(|log| {
        log.regulation_violation(horizon, vc2m_model::SimDuration(1_000))
            .is_some()
    });
    assert!(violated, "non-harmonic competition must break regulation");
}

#[test]
fn overhead_free_solution_produces_well_regulated_vcpus() {
    // End-to-end: the overhead-free solution's harmonic workloads run
    // as well-regulated servers, the property its analysis relies on.
    use vc2m_model::{SimDuration as D, SimTime};
    let platform = Platform::platform_a();
    let mut generator = vc2m_workload::TasksetGenerator::new(
        platform.resources(),
        vc2m_workload::TasksetConfig::new(1.0, vc2m_workload::UtilizationDist::Uniform),
        77,
    );
    let tasks = generator.generate();
    let vms = vec![VmSpec::new(VmId(0), tasks.clone()).unwrap()];
    let allocation = Solution::HeuristicOverheadFree
        .allocate(&vms, &platform, 77)
        .into_allocation()
        .expect("schedulable at utilization 1.0");
    let horizon_ms = 4.0 * tasks.min_period().unwrap().max(1100.0);
    let config = SimConfig::default()
        .with_horizon(D::from_ms(horizon_ms))
        .with_supply_recording(true);
    let report = HypervisorSim::new(&platform, &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.all_deadlines_met());
    let horizon = SimTime::from_ms(horizon_ms);
    for (id, log) in &report.supply_logs {
        if log.complete_periods(horizon) < 2 {
            continue;
        }
        assert_eq!(
            log.regulation_violation(horizon, vc2m_model::SimDuration(2_000)),
            None,
            "{id} is not well-regulated"
        );
    }
}

#[test]
fn dynamic_reallocation_rescues_a_starved_task() {
    // A cache-hungry task: WCET 12 ms at (2,1) (hopeless for a 10 ms
    // period), 4 ms at (14, 8). The core starts at the minimum
    // allocation and is re-programmed at t = 100 ms — a vCAT-style
    // mode change. Misses occur only before the switch.
    let surface = WcetSurface::from_fn(&space(), |a| {
        4.0 + 8.0 * (1.0 - f64::from(a.cache - 2) / 18.0)
    })
    .unwrap();
    let task = Task::new(TaskId(0), 10.0, surface.clone()).unwrap();
    let tasks: TaskSet = std::iter::once(task).collect();
    // Full-period budget: the server owns the core, so post-switch
    // slack can drain the backlog built up while starved.
    let v = VcpuSpec::new(
        VcpuId(0),
        VmId(0),
        10.0,
        BudgetSurface::flat(&space(), 10.0).unwrap(),
        vec![TaskId(0)],
    )
    .unwrap();
    let allocation = SystemAllocation::new(
        vec![v],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(2, 1),
        }],
    );
    let report = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        SimConfig::default().with_horizon(SimDuration::from_ms(1000.0)),
    )
    .unwrap()
    .with_reallocation(30.0, 0, Alloc::new(14, 8))
    .unwrap()
    .run()
    .unwrap();
    assert!(
        !report.all_deadlines_met(),
        "the starved phase must miss deadlines"
    );
    // The FIFO backlog built up during the starved phase drains at the
    // new allocation's slack; after that, no further misses. Assert
    // full recovery over the last half of the run.
    let recovery = vc2m_model::SimTime::from_ms(500.0);
    let late_misses = report
        .deadline_misses
        .iter()
        .filter(|m| m.deadline > recovery)
        .count();
    assert_eq!(
        late_misses, 0,
        "the mode change must eventually cure all misses"
    );
    assert!(!report.deadline_misses.is_empty(), "the early phase misses");
}

#[test]
fn reallocation_tightening_bandwidth_starts_throttling() {
    // Plenty of bandwidth initially; at t = 200 ms the core drops to
    // one partition and its (traffic-generating) task starts hitting
    // the regulator.
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(400.0))
        .with_traffic_fraction(0.5);
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .with_reallocation(200.0, 0, Alloc::new(10, 1))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        report.throttle_events > 0,
        "halved relative budget must throttle the 0.5x-of-old-budget traffic"
    );
}

#[test]
fn reallocation_outside_space_is_a_typed_error() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .with_reallocation(10.0, 0, Alloc::new(1, 1))
        .unwrap_err();
    assert!(
        matches!(err, SimError::InvalidReallocation { core: 0, .. }),
        "{err}"
    );
}

#[test]
fn reallocation_of_unknown_core_is_a_typed_error() {
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .with_reallocation(10.0, 5, Alloc::new(10, 10))
        .unwrap_err();
    assert_eq!(err, SimError::UnknownCore { core: 5, cores: 1 });
}

#[test]
fn overcommitted_reallocation_surfaces_from_run() {
    // The overcommitment is only detectable when the event fires
    // (against the allocations current at that moment), so it must
    // surface as a typed error from `run`, not a panic mid-simulation.
    let tasks: TaskSet = (0..2).map(|i| flat_task(i, 10.0, 2.0)).collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 10.0, 3.0, vec![TaskId(0)]),
            vcpu(1, 10.0, 3.0, vec![TaskId(1)]),
        ],
        vec![
            CoreAssignment {
                vcpus: vec![0],
                alloc: Alloc::new(10, 10),
            },
            CoreAssignment {
                vcpus: vec![1],
                alloc: Alloc::new(10, 10),
            },
        ],
    );
    let err = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, short_config())
        .unwrap()
        .with_reallocation(10.0, 0, Alloc::new(11, 10))
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SimError::OvercommittedReallocation { core: 0, .. }),
        "{err}"
    );
}

#[test]
fn energy_accounting_favors_idle_throttling() {
    // The paper's energy argument: with heavy throttling, idling the
    // throttled core (vC2M) costs strictly less than spinning it
    // (MemGuard-style). Without throttling the policies coincide.
    use vc2m_hypervisor::{EnergyModel, ThrottlePolicy};
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 2),
        }],
    );
    let model = EnergyModel::default();

    let throttled_report = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        SimConfig::default()
            .with_horizon(SimDuration::from_ms(1000.0))
            .with_traffic_fraction(3.0),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(throttled_report.throttle_events > 0);
    let idle = throttled_report.energy_joules(&model, ThrottlePolicy::Idle);
    let busy = throttled_report.energy_joules(&model, ThrottlePolicy::Busy);
    assert!(
        idle < busy * 0.95,
        "idling must save energy under heavy throttling: {idle} vs {busy}"
    );
    // Sanity: throttled time was actually accounted.
    let throttled_ms: f64 = throttled_report
        .core_times
        .iter()
        .map(|c| c.throttled_ms)
        .sum();
    assert!(throttled_ms > 100.0, "got {throttled_ms}");

    let calm_report = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        SimConfig::default().with_horizon(SimDuration::from_ms(1000.0)),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(calm_report.throttle_events, 0);
    let idle = calm_report.energy_joules(&model, ThrottlePolicy::Idle);
    let busy = calm_report.energy_joules(&model, ThrottlePolicy::Busy);
    assert!((idle - busy).abs() < 1e-9, "no throttling: policies equal");
}

#[test]
fn busy_time_is_bounded_by_demand() {
    // A 0.4-utilization task on a 1-second run: busy time ~400 ms.
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 4.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 4.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(10, 10),
        }],
    );
    let report = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        SimConfig::default().with_horizon(SimDuration::from_ms(1000.0)),
    )
    .unwrap()
    .run()
    .unwrap();
    let busy = report.core_times[0].busy_ms;
    assert!((390.0..=404.0).contains(&busy), "busy time {busy} ms");
    assert_eq!(report.core_times[0].throttled_ms, 0.0);
    assert_eq!(report.horizon_ms, 1000.0);
}

#[test]
fn shared_mode_disables_partitioning_and_regulation() {
    // IsolationMode::Shared models the pre-vC2M world: no CAT plan is
    // programmed and the regulator never throttles, no matter how much
    // traffic tasks generate.
    use vc2m_hypervisor::IsolationMode;
    let tasks: TaskSet = std::iter::once(flat_task(0, 10.0, 5.0)).collect();
    let allocation = SystemAllocation::new(
        vec![vcpu(0, 10.0, 5.0, vec![TaskId(0)])],
        vec![CoreAssignment {
            vcpus: vec![0],
            alloc: Alloc::new(2, 1), // would throttle hard if isolated
        }],
    );
    let mut config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(500.0))
        .with_traffic_fraction(5.0);
    config.isolation = IsolationMode::Shared;
    let report = HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.throttle_events, 0, "shared mode must never throttle");
    assert!(report.all_deadlines_met());
}
