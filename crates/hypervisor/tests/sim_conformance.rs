//! Differential conformance suite for the sharded simulation engine:
//! `run_sharded` / `run_traced_sharded` / `run_observed_sharded` must
//! produce **bit-identical** reports, trace streams (records, order,
//! and ring-eviction drop counts) and metrics exports to the serial
//! engine — at every thread count, under every core partition, with
//! and without fault injection.

use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{
    CorePartition, FaultPlan, FaultPlanSpec, FaultTargets, HypervisorSim, SimConfig, SimReport,
};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId,
    WcetSurface,
};
use vc2m_rng::{cases::check, DetRng, Rng};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

fn flat_task(id: usize, period: f64, wcet: f64) -> Task {
    Task::new(
        TaskId(id),
        period,
        WcetSurface::flat(&space(), wcet).unwrap(),
    )
    .unwrap()
}

fn vcpu(id: usize, vm: usize, period: f64, budget: f64, tasks: Vec<TaskId>) -> VcpuSpec {
    VcpuSpec::new(
        VcpuId(id),
        VmId(vm),
        period,
        BudgetSurface::flat(&space(), budget).unwrap(),
        tasks,
    )
    .unwrap()
}

/// A four-core system exercising every accounting path at once:
/// multi-task servers, an undersized (missing) server, heavy traffic
/// (throttling) on two cores with different bandwidth grants, and a
/// clean lightly-loaded core.
fn four_core_system() -> (SystemAllocation, TaskSet) {
    let tasks: TaskSet = vec![
        // Core 0: two servers sharing the core.
        flat_task(0, 10.0, 4.0),
        flat_task(1, 20.0, 8.0),
        // Core 1: a server that misses (WCET > budget).
        flat_task(2, 10.0, 5.0),
        // Core 2: traffic-heavy, tight bandwidth — throttles.
        flat_task(3, 10.0, 5.0),
        // Core 3: light and clean.
        flat_task(4, 40.0, 6.0),
        flat_task(5, 20.0, 3.0),
    ]
    .into_iter()
    .collect();
    let allocation = SystemAllocation::new(
        vec![
            vcpu(0, 0, 10.0, 4.0, vec![TaskId(0)]),
            vcpu(1, 0, 20.0, 9.0, vec![TaskId(1)]),
            vcpu(2, 1, 10.0, 4.0, vec![TaskId(2)]),
            vcpu(3, 2, 10.0, 5.0, vec![TaskId(3)]),
            vcpu(4, 3, 20.0, 5.0, vec![TaskId(4), TaskId(5)]),
        ],
        vec![
            CoreAssignment {
                vcpus: vec![0, 1],
                alloc: Alloc::new(5, 5),
            },
            CoreAssignment {
                vcpus: vec![2],
                alloc: Alloc::new(5, 5),
            },
            CoreAssignment {
                vcpus: vec![3],
                alloc: Alloc::new(5, 2),
            },
            CoreAssignment {
                vcpus: vec![4],
                alloc: Alloc::new(5, 5),
            },
        ],
    );
    (allocation, tasks)
}

fn config(trace_capacity: usize) -> SimConfig {
    SimConfig::default()
        .with_horizon(SimDuration::from_ms(300.5))
        .with_traffic_fraction(1.5)
        .with_supply_recording(true)
        .with_trace_capacity(trace_capacity)
}

/// A fresh simulation of the four-core system, with two mid-run
/// reallocations (one tightening bandwidth on the traffic-heavy core,
/// one relaxing it) and optionally a generated fault plan.
fn build(trace_capacity: usize, fault_seed: Option<u64>) -> HypervisorSim {
    let (allocation, tasks) = four_core_system();
    let mut sim = HypervisorSim::new(
        &Platform::platform_a(),
        &allocation,
        &tasks,
        config(trace_capacity),
    )
    .unwrap()
    .with_reallocation(60.0, 2, Alloc::new(5, 4))
    .unwrap()
    .with_reallocation(150.0, 0, Alloc::new(5, 3))
    .unwrap();
    if let Some(seed) = fault_seed {
        let targets = FaultTargets {
            tasks: (0..6).map(TaskId).collect(),
            vcpus: (0..5).map(VcpuId).collect(),
            vms: (0..4).map(VmId).collect(),
            cores: 4,
        };
        let spec = FaultPlanSpec::new(10, SimDuration::from_ms(300.5));
        let plan = FaultPlan::generate(seed, &targets, &spec);
        sim = sim.with_fault_plan(plan).unwrap();
    }
    sim
}

fn assert_structural_eq(serial: &SimReport, sharded: &SimReport, what: &str) {
    assert!(
        serial.structural_eq(sharded),
        "{what}: sharded report differs from serial\n\
         serial: misses={} released={} completed={} throttles={} switches={}\n\
         sharded: misses={} released={} completed={} throttles={} switches={}",
        serial.deadline_misses.len(),
        serial.jobs_released,
        serial.jobs_completed,
        serial.throttle_events,
        serial.context_switches,
        sharded.deadline_misses.len(),
        sharded.jobs_released,
        sharded.jobs_completed,
        sharded.throttle_events,
        sharded.context_switches,
    );
}

#[test]
fn sharded_run_is_bit_identical_at_every_thread_count() {
    for fault_seed in [None, Some(0xC0FFEE)] {
        let serial = build(0, fault_seed).run().unwrap();
        assert!(serial.jobs_released > 0);
        for threads in [1, 2, 8] {
            let sharded = build(0, fault_seed).run_sharded(threads).unwrap();
            assert_structural_eq(
                &serial,
                &sharded,
                &format!("run (threads={threads}, faults={})", fault_seed.is_some()),
            );
        }
    }
}

#[test]
fn sharded_trace_matches_serial_records_order_and_eviction() {
    // A deliberately small ring: most records are evicted, so this
    // pins the merge's eviction semantics, not just record equality.
    // A large ring pins the complete emission stream.
    for capacity in [256, 1 << 16] {
        for fault_seed in [None, Some(0xC0FFEE)] {
            let (serial_report, serial_trace) = build(capacity, fault_seed).run_traced().unwrap();
            for threads in [1, 2, 8] {
                let (report, trace) = build(capacity, fault_seed)
                    .run_traced_sharded(threads)
                    .unwrap();
                assert_structural_eq(&serial_report, &report, "run_traced");
                assert_eq!(
                    trace.len(),
                    serial_trace.len(),
                    "recorded counts differ (capacity={capacity}, threads={threads})"
                );
                for (i, (s, p)) in serial_trace.iter().zip(&trace).enumerate() {
                    assert_eq!(
                        s, p,
                        "trace record {i} differs (capacity={capacity}, \
                         threads={threads}, faults={})",
                        fault_seed.is_some()
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_observation_matches_serial_drops_and_metrics() {
    for fault_seed in [None, Some(0xC0FFEE)] {
        let (serial_report, serial_obs) = build(512, fault_seed).run_observed().unwrap();
        assert!(serial_obs.trace_dropped > 0, "ring must overflow");
        for threads in [1, 2, 8] {
            let (report, obs) = build(512, fault_seed).run_observed_sharded(threads).unwrap();
            assert_structural_eq(&serial_report, &report, "run_observed");
            assert_eq!(obs.trace, serial_obs.trace, "trace streams differ");
            assert_eq!(
                obs.trace_dropped, serial_obs.trace_dropped,
                "drop counts differ"
            );
            assert_eq!(
                obs.metrics, serial_obs.metrics,
                "metrics exports differ (threads={threads})"
            );
        }
    }
}

#[test]
fn zero_capacity_ring_still_counts_drops_identically() {
    let (_, serial_obs) = build(0, None).run_observed().unwrap();
    assert!(serial_obs.trace.is_empty());
    let (_, obs) = build(0, None).run_observed_sharded(4).unwrap();
    assert!(obs.trace.is_empty());
    assert_eq!(obs.trace_dropped, serial_obs.trace_dropped);
    assert_eq!(obs.metrics, serial_obs.metrics);
}

/// Draws a uniformly random partition of `cores` into non-empty
/// groups (random group count, random assignment, repaired so no
/// group is empty).
fn arb_partition(rng: &mut DetRng, cores: usize) -> CorePartition {
    let group_count = rng.gen_range(1usize..=cores);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); group_count];
    for core in 0..cores {
        let g = rng.gen_range(0usize..group_count);
        groups[g].push(core);
    }
    groups.retain(|g| !g.is_empty());
    CorePartition::from_groups(groups)
}

#[test]
fn any_core_partition_yields_the_serial_result() {
    let serial = build(0, Some(0xFEED)).run().unwrap();
    let (_, serial_obs) = build(512, Some(0xFEED)).run_observed().unwrap();
    check(12, |rng| {
        let partition = arb_partition(rng, 4);
        let threads = rng.gen_range(1usize..=8);
        let sharded = build(0, Some(0xFEED))
            .run_sharded_with(&partition, threads)
            .unwrap();
        assert_structural_eq(
            &serial,
            &sharded,
            &format!("partition {:?} threads {threads}", partition.groups()),
        );
        let (_, obs) = build(512, Some(0xFEED))
            .run_observed_sharded_with(&partition, threads)
            .unwrap();
        assert_eq!(obs.trace, serial_obs.trace);
        assert_eq!(obs.trace_dropped, serial_obs.trace_dropped);
        assert_eq!(obs.metrics, serial_obs.metrics);
    });
}

#[test]
fn invalid_partitions_are_rejected() {
    use vc2m_hypervisor::SimError;
    let cases = [
        CorePartition::from_groups(vec![vec![0, 1], vec![1, 2], vec![3]]),
        CorePartition::from_groups(vec![vec![0], vec![1], vec![2]]),
        CorePartition::from_groups(vec![vec![0, 1, 2, 3, 4]]),
        CorePartition::from_groups(vec![vec![0, 1, 2, 3], vec![]]),
    ];
    for partition in cases {
        let err = build(0, None).run_sharded_with(&partition, 2).unwrap_err();
        assert!(
            matches!(err, SimError::InvalidPartition { .. }),
            "expected InvalidPartition, got {err}"
        );
    }
}

#[test]
fn sharded_run_reports_the_serial_error() {
    // An overcommitted reallocation is only detectable at fire time;
    // every shard validates every reallocation, so the sharded run
    // must surface exactly the serial error.
    let (allocation, tasks) = four_core_system();
    let build_bad = || {
        HypervisorSim::new(&Platform::platform_a(), &allocation, &tasks, config(0))
            .unwrap()
            .with_reallocation(50.0, 1, Alloc::new(20, 20))
            .unwrap()
    };
    let serial_err = build_bad().run().unwrap_err();
    for threads in [1, 2, 8] {
        let sharded_err = build_bad().run_sharded(threads).unwrap_err();
        assert_eq!(sharded_err, serial_err, "threads={threads}");
    }
}
