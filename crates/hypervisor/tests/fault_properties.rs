//! Seeded property tests for the fault-injection subsystem: plan
//! determinism, run determinism under faults, and the overrun
//! containment invariant.
//!
//! **Containment argument.** The core's EDF scheduler picks servers by
//! `(deadline, period, index)` only — never by job content — and a
//! periodic server drains its budget even while its tasks idle. So the
//! server-level supply pattern is invariant under changes to job
//! execution demand: a VM-scoped fault (WCET overrun, load spike) can
//! only inflate the *faulty* VM's backlog inside its own server's
//! windows. Every other VM's misses and response times are therefore
//! bit-identical to the fault-free baseline. Core-scoped faults
//! (throttle fault, core stall) and replenishment delays change the
//! supply itself and are deliberately excluded from
//! [`FaultKind::VM_SCOPED`].

use vc2m_alloc::{CoreAssignment, SystemAllocation};
use vc2m_hypervisor::{
    Fault, FaultKind, FaultPlan, FaultPlanSpec, FaultTargets, HypervisorSim, SimConfig, SimError,
    SimReport,
};
use vc2m_model::{
    Alloc, BudgetSurface, Platform, SimDuration, SimTime, Task, TaskId, TaskSet, VcpuId, VcpuSpec,
    VmId, WcetSurface,
};
use vc2m_rng::{cases::check, DetRng, Rng};

fn space() -> vc2m_model::ResourceSpace {
    Platform::platform_a().resources()
}

/// A single-core system of per-VM single-task VCPUs (flattening-style,
/// budget = WCET): one task and one VCPU per VM, `specs[i]` giving VM
/// `i`'s `(period, wcet)`.
fn multi_vm_system(specs: &[(f64, f64)]) -> (SystemAllocation, TaskSet) {
    let mut tasks = TaskSet::new();
    let mut vcpus = Vec::new();
    for (i, &(p, e)) in specs.iter().enumerate() {
        tasks.push(Task::new(TaskId(i), p, WcetSurface::flat(&space(), e).unwrap()).unwrap());
        vcpus.push(
            VcpuSpec::new(
                VcpuId(i),
                VmId(i),
                p,
                BudgetSurface::flat(&space(), e).unwrap(),
                vec![TaskId(i)],
            )
            .unwrap(),
        );
    }
    let allocation = SystemAllocation::new(
        vcpus,
        vec![CoreAssignment {
            vcpus: (0..specs.len()).collect(),
            alloc: Alloc::new(10, 10),
        }],
    );
    (allocation, tasks)
}

/// Harmonic `(period, wcet)` specs with total utilization ≤ ~0.9,
/// at least two VMs (so there is always a non-faulty victim).
fn arb_specs(rng: &mut DetRng) -> Vec<(f64, f64)> {
    let base = rng.gen_range(5.0f64..20.0);
    let n = rng.gen_range(2usize..5);
    let raw: Vec<(u32, f64)> = (0..n)
        .map(|_| (rng.gen_range(0u32..3), rng.gen_range(0.05f64..0.3)))
        .collect();
    let total: f64 = raw.iter().map(|&(_, u)| u).sum();
    let scale = if total > 0.9 { 0.9 / total } else { 1.0 };
    raw.into_iter()
        .map(|(exp, u)| {
            let p = base * f64::from(1u32 << exp);
            (p, (u * scale * p).max(0.001))
        })
        .collect()
}

fn sim(
    allocation: &SystemAllocation,
    tasks: &TaskSet,
    horizon: SimDuration,
) -> HypervisorSim {
    HypervisorSim::new(
        &Platform::platform_a(),
        allocation,
        tasks,
        SimConfig::default().with_horizon(horizon),
    )
    .expect("realizable")
}

fn misses_of(report: &SimReport, task: TaskId) -> Vec<(u64, SimTime)> {
    report
        .deadline_misses
        .iter()
        .filter(|m| m.task == task)
        .map(|m| (m.job, m.deadline))
        .collect()
}

fn full_targets(specs: &[(f64, f64)]) -> FaultTargets {
    FaultTargets {
        tasks: (0..specs.len()).map(TaskId).collect(),
        vcpus: (0..specs.len()).map(VcpuId).collect(),
        vms: (0..specs.len()).map(VmId).collect(),
        cores: 1,
    }
}

#[test]
fn fault_plans_are_deterministic_and_in_range() {
    check(32, |rng| {
        let seed = rng.next_u64();
        let horizon = SimDuration::from_ms(rng.gen_range(50.0f64..500.0));
        let targets = full_targets(&[(10.0, 1.0), (20.0, 2.0), (40.0, 4.0)]);
        let spec = FaultPlanSpec::new(rng.gen_range(1usize..12), horizon);
        let a = FaultPlan::generate(seed, &targets, &spec);
        let b = FaultPlan::generate(seed, &targets, &spec);
        assert_eq!(a, b, "same seed must give the identical plan");
        let mut last = SimTime::ZERO;
        for f in a.faults() {
            assert!(f.at >= last, "plan must be sorted by injection time");
            assert!(f.at < SimTime::ZERO + horizon, "fault beyond horizon");
            last = f.at;
        }
        assert_eq!(a.len(), spec.count);
    });
}

#[test]
fn faulted_runs_are_deterministic() {
    check(16, |rng| {
        let specs = arb_specs(rng);
        let (allocation, tasks) = multi_vm_system(&specs);
        let horizon = SimDuration::from_ms(300.0);
        let plan = FaultPlan::generate(
            rng.next_u64(),
            &full_targets(&specs),
            &FaultPlanSpec::new(6, horizon),
        );
        let run = || {
            sim(&allocation, &tasks, horizon)
                .with_fault_plan(plan.clone())
                .expect("valid plan")
                .run()
                .expect("fault runs are contained, not fatal")
        };
        let a = run();
        let b = run();
        assert!(
            a.structural_eq(&b),
            "same plan, same seed: reports must be bit-identical"
        );
    });
}

#[test]
fn vm_scoped_faults_are_contained_to_the_faulty_vm() {
    check(24, |rng| {
        let specs = arb_specs(rng);
        let (allocation, tasks) = multi_vm_system(&specs);
        if !allocation.is_schedulable() {
            return;
        }
        let horizon = SimDuration::from_ms(400.0);
        let baseline = sim(&allocation, &tasks, horizon)
            .run()
            .expect("fault-free run");

        // Target exactly one VM with VM-scoped faults.
        let faulty = rng.gen_range(0usize..specs.len());
        let targets = FaultTargets {
            tasks: vec![TaskId(faulty)],
            vcpus: vec![],
            vms: vec![VmId(faulty)],
            cores: 0,
        };
        let mut spec = FaultPlanSpec::vm_targeted(rng.gen_range(1usize..6), horizon);
        // Make overruns severe so the faulty VM visibly suffers.
        spec.overrun_factor = (3.0, 6.0);
        let plan = FaultPlan::generate(rng.next_u64(), &targets, &spec);
        for f in plan.faults() {
            assert!(
                FaultKind::VM_SCOPED.contains(&f.fault.kind()),
                "vm_targeted spec must only draw VM-scoped kinds"
            );
        }
        let faulted = sim(&allocation, &tasks, horizon)
            .with_fault_plan(plan)
            .expect("valid plan")
            .run()
            .expect("contained");

        // The isolation invariant: every non-faulty VM's misses and
        // response statistics are bit-identical to the baseline.
        for i in 0..specs.len() {
            if i == faulty {
                continue;
            }
            let t = TaskId(i);
            assert_eq!(
                misses_of(&baseline, t),
                misses_of(&faulted, t),
                "VM{i} must be unaffected by faults in VM{faulty}"
            );
            let base_resp = baseline.response_times.get(&t);
            let fault_resp = faulted.response_times.get(&t);
            assert_eq!(
                base_resp, fault_resp,
                "VM{i} response times must be bit-identical"
            );
        }
    });
}

#[test]
fn overrun_demand_is_capped_by_the_server_budget() {
    // A flattened VCPU (budget = WCET) given a 10x overrun: the fault
    // inflates demand far beyond the budget, so the overrunning job
    // can only consume its own server's supply — it misses deadlines
    // in its own VM while the sibling VM stays clean (checked by the
    // containment property above); here we check the faulty VM really
    // does miss and the simulation still terminates and accounts.
    let specs = [(10.0, 4.0), (20.0, 8.0)];
    let (allocation, tasks) = multi_vm_system(&specs);
    let horizon = SimDuration::from_ms(400.0);
    let plan = FaultPlan::new().inject(
        SimTime::from_ms(50.0),
        Fault::WcetOverrun {
            task: TaskId(0),
            factor: 10.0,
            window: SimDuration::from_ms(100.0),
        },
    );
    let report = sim(&allocation, &tasks, horizon)
        .with_fault_plan(plan)
        .expect("valid plan")
        .run()
        .expect("contained");
    assert!(
        !misses_of(&report, TaskId(0)).is_empty(),
        "a 10x overrun of a zero-slack task must miss"
    );
    assert!(
        misses_of(&report, TaskId(1)).is_empty(),
        "the sibling VM must be unaffected"
    );
    assert!(report.jobs_completed > 0, "the system keeps running");
}

#[test]
fn all_fault_kinds_run_clean_and_are_counted() {
    check(16, |rng| {
        let specs = arb_specs(rng);
        let (allocation, tasks) = multi_vm_system(&specs);
        let horizon = SimDuration::from_ms(300.0);
        let plan = FaultPlan::generate(
            rng.next_u64(),
            &full_targets(&specs),
            &FaultPlanSpec::new(8, horizon),
        );
        let planned = plan.len() as u64;
        let (_, observation) = sim(&allocation, &tasks, horizon)
            .with_fault_plan(plan)
            .expect("valid plan")
            .run_observed()
            .expect("faults are contained, not fatal");
        assert_eq!(
            observation.metrics.counter("faults.injected"),
            Some(planned),
            "every planned fault must inject (all lie within the horizon)"
        );
    });
}

#[test]
fn fault_metrics_appear_exactly_when_a_plan_is_attached() {
    let specs = [(10.0, 2.0), (20.0, 3.0)];
    let (allocation, tasks) = multi_vm_system(&specs);
    let horizon = SimDuration::from_ms(100.0);
    let (_, without) = sim(&allocation, &tasks, horizon)
        .run_observed()
        .expect("fault-free run");
    assert_eq!(without.metrics.counter("faults.injected"), None);

    // An attached-but-empty plan exports zeroed counters.
    let (_, with_empty) = sim(&allocation, &tasks, horizon)
        .with_fault_plan(FaultPlan::new())
        .expect("empty plan is valid")
        .run_observed()
        .expect("fault-free run");
    assert_eq!(with_empty.metrics.counter("faults.injected"), Some(0));
}

#[test]
fn malformed_plans_are_rejected_up_front() {
    let specs = [(10.0, 2.0), (20.0, 3.0)];
    let (allocation, tasks) = multi_vm_system(&specs);
    let horizon = SimDuration::from_ms(100.0);
    let at = SimTime::from_ms(10.0);
    let window = SimDuration::from_ms(10.0);

    type ErrCheck = fn(&SimError) -> bool;
    let cases: Vec<(Fault, ErrCheck)> = vec![
        (
            Fault::WcetOverrun {
                task: TaskId(99),
                factor: 2.0,
                window,
            },
            |e| matches!(e, SimError::UnknownTask { task: TaskId(99) }),
        ),
        (
            Fault::WcetOverrun {
                task: TaskId(0),
                factor: f64::NAN,
                window,
            },
            |e| matches!(e, SimError::InvalidFault { .. }),
        ),
        (
            Fault::WcetOverrun {
                task: TaskId(0),
                factor: 0.5,
                window,
            },
            |e| matches!(e, SimError::InvalidFault { .. }),
        ),
        (
            Fault::WcetOverrun {
                task: TaskId(0),
                factor: 2.0,
                window: SimDuration::ZERO,
            },
            |e| matches!(e, SimError::InvalidFault { .. }),
        ),
        (
            Fault::ReplenishDelay {
                vcpu: VcpuId(42),
                delay: window,
            },
            |e| matches!(e, SimError::UnknownVcpu { vcpu: VcpuId(42) }),
        ),
        (
            Fault::ReplenishDelay {
                vcpu: VcpuId(0),
                delay: SimDuration::ZERO,
            },
            |e| matches!(e, SimError::InvalidFault { .. }),
        ),
        (
            Fault::ThrottleFault { core: 7 },
            |e| matches!(e, SimError::UnknownCore { core: 7, cores: 1 }),
        ),
        (
            Fault::CoreStall {
                core: 0,
                duration: SimDuration::ZERO,
            },
            |e| matches!(e, SimError::InvalidFault { .. }),
        ),
        (
            Fault::LoadSpike { vm: VmId(9) },
            |e| matches!(e, SimError::UnknownVm { vm: VmId(9) }),
        ),
    ];
    for (fault, matches_expected) in cases {
        let err = sim(&allocation, &tasks, horizon)
            .with_fault_plan(FaultPlan::new().inject(at, fault))
            .expect_err("malformed fault must be rejected");
        assert!(matches_expected(&err), "unexpected error: {err}");
    }
}

#[test]
fn replenish_delay_starves_only_until_the_late_replenishment() {
    // A zero-slack VCPU whose replenishment arrives half a period
    // late: the period that absorbed the delay can miss, but the
    // server must return to the period grid afterwards (no permanent
    // drift — `PeriodicServer::replenish` advances by whole periods).
    let specs = [(10.0, 4.0), (20.0, 8.0)];
    let (allocation, tasks) = multi_vm_system(&specs);
    let horizon = SimDuration::from_ms(400.0);
    let plan = FaultPlan::new().inject(
        SimTime::from_ms(15.0),
        Fault::ReplenishDelay {
            vcpu: VcpuId(0),
            delay: SimDuration::from_ms(5.0),
        },
    );
    let report = sim(&allocation, &tasks, horizon)
        .with_fault_plan(plan)
        .expect("valid plan")
        .run()
        .expect("contained");
    // Misses, if any, are confined to shortly after the injection.
    for (_, deadline) in misses_of(&report, TaskId(0)) {
        assert!(
            deadline <= SimTime::from_ms(50.0),
            "late-replenishment damage must not persist (miss at {deadline})"
        );
    }
    assert!(report.jobs_completed > 0);
}
