//! Theorem 1: the flattening strategy.
//!
//! Map each task to its own VCPU and synchronize their releases. The
//! VCPU inherits the task's period and WCET surface verbatim:
//! Πⱼ = pᵢ, Θⱼ(c,b) = eᵢ(c,b). Since the task is alone on its VCPU and
//! released exactly when the VCPU is, the task executes iff the VCPU
//! does — so the task is schedulable whenever the VCPU is, and the
//! VCPU's bandwidth equals the task's utilization exactly: the
//! abstraction overhead is zero.

use crate::AnalysisError;
use vc2m_model::{Task, VcpuId, VcpuSpec, VmSpec};

/// Builds the dedicated VCPU for a single task (Theorem 1).
///
/// # Errors
///
/// Returns [`AnalysisError::Model`] if the resulting VCPU parameters
/// are rejected (cannot happen for a valid [`Task`], since the task's
/// own constructor enforces `e*ᵢ ≤ pᵢ`).
pub fn flatten_task(
    id: VcpuId,
    vm: vc2m_model::VmId,
    task: &Task,
) -> Result<VcpuSpec, AnalysisError> {
    vc2m_sched::kernel::record_vcpu_build();
    Ok(VcpuSpec::new(
        id,
        vm,
        task.period(),
        task.wcet_surface().clone(),
        vec![task.id()],
    )?)
}

/// Flattens a whole VM: one VCPU per task, with VCPU ids assigned
/// consecutively starting at `first_id`.
///
/// # Errors
///
/// * [`AnalysisError::TooManyTasks`] if the VM's VCPU cap is smaller
///   than its task count (the assumption of the direct-mapping
///   strategy; use the well-regulated analysis instead).
pub fn flatten_vm(vm: &VmSpec, first_id: usize) -> Result<Vec<VcpuSpec>, AnalysisError> {
    if !vm.supports_flattening() {
        return Err(AnalysisError::TooManyTasks {
            tasks: vm.tasks().len(),
            max_vcpus: vm.max_vcpus(),
        });
    }
    vm.tasks()
        .iter()
        .enumerate()
        .map(|(offset, task)| flatten_task(VcpuId(first_id + offset), vm.id(), task))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Alloc, Platform, Task, TaskId, TaskSet, VmId, WcetSurface};

    fn space() -> vc2m_model::ResourceSpace {
        Platform::platform_a().resources()
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn vcpu_inherits_task_parameters_exactly() {
        let t = task(3, 10.0, 1.0);
        let v = flatten_task(VcpuId(7), VmId(1), &t).unwrap();
        assert_eq!(v.period(), 10.0);
        assert_eq!(v.tasks(), &[TaskId(3)]);
        assert_eq!(v.vm(), VmId(1));
        for alloc in space().iter() {
            assert_eq!(v.budget(alloc), t.wcet(alloc));
        }
        // Zero abstraction overhead: bandwidth == utilization.
        assert_eq!(v.reference_utilization(), t.reference_utilization());
    }

    #[test]
    fn allocation_dependent_surface_is_preserved() {
        let surface =
            WcetSurface::from_fn(&space(), |a| 2.0 + 10.0 / f64::from(a.cache + a.bandwidth))
                .unwrap();
        let t = Task::new(TaskId(0), 20.0, surface).unwrap();
        let v = flatten_task(VcpuId(0), VmId(0), &t).unwrap();
        assert_eq!(v.budget(Alloc::new(2, 1)), t.wcet(Alloc::new(2, 1)));
        assert!(v.budget(Alloc::new(2, 1)) > v.budget(Alloc::new(20, 20)));
    }

    #[test]
    fn flatten_vm_assigns_consecutive_ids() {
        let ts: TaskSet = (0..3).map(|i| task(i, 100.0, 10.0)).collect();
        let vm = VmSpec::new(VmId(0), ts).unwrap();
        let vcpus = flatten_vm(&vm, 5).unwrap();
        let ids: Vec<usize> = vcpus.iter().map(|v| v.id().index()).collect();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn vcpu_cap_enforced() {
        let ts: TaskSet = (0..3).map(|i| task(i, 100.0, 10.0)).collect();
        let vm = VmSpec::with_max_vcpus(VmId(0), ts, 2).unwrap();
        assert!(matches!(
            flatten_vm(&vm, 0),
            Err(AnalysisError::TooManyTasks {
                tasks: 3,
                max_vcpus: 2
            })
        ));
    }
}
