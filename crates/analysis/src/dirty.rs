//! Dirty-set tracking for incremental re-verification.
//!
//! The admission engine (PR 7) warm-starts from the current allocation:
//! when a request perturbs the system, only the cores whose *content*
//! changed — a VCPU added, a partition granted, a core opened — need
//! their schedulability re-established. Everything else was proven when
//! it last changed, and the proof still stands because the EDF core
//! test depends only on the core's own VCPUs and its own `Alloc`.
//!
//! `DirtyCores` is the plumbing for that rule: callers mark the core
//! indices they touched, and the partial verifier re-runs the
//! schedulability kernel for exactly that set (structural invariants —
//! partition budgets, assignment completeness — are always checked in
//! full; they are cheap and global).
//!
//! Interaction with the analysis cache: [`AnalysisCache`] is
//! content-addressed (keys are exact task/resource parameters), so the
//! dirty-set discipline needs no cache invalidation — a departed VM's
//! entries simply stop being looked up, and a mode change re-keys
//! automatically. The dirty set therefore only gates *which cores* are
//! re-checked, never what the cache may answer.
//!
//! [`AnalysisCache`]: crate::AnalysisCache

/// A deduplicated, order-preserving set of core indices to re-verify.
///
/// Optimized for the admission path: a handful of cores per request,
/// marked in placement order, iterated once. Marking is idempotent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyCores {
    indices: Vec<usize>,
}

impl DirtyCores {
    /// An empty dirty set (nothing needs re-verification).
    pub fn new() -> Self {
        DirtyCores::default()
    }

    /// A dirty set covering all of `n` cores — partial verification
    /// with this set is exactly a full verification.
    pub fn all(n: usize) -> Self {
        DirtyCores {
            indices: (0..n).collect(),
        }
    }

    /// Marks core `k` dirty. Idempotent; preserves first-mark order.
    pub fn mark(&mut self, k: usize) {
        if !self.indices.contains(&k) {
            self.indices.push(k);
        }
    }

    /// Whether core `k` is marked dirty.
    pub fn contains(&self, k: usize) -> bool {
        self.indices.contains(&k)
    }

    /// Iterates the dirty core indices in first-mark order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().copied()
    }

    /// Number of dirty cores.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Clears the set for reuse (keeps the backing storage).
    pub fn clear(&mut self) {
        self.indices.clear();
    }

    /// Merges another dirty set into this one (deduplicated).
    pub fn merge(&mut self, other: &DirtyCores) {
        for k in other.iter() {
            self.mark(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_idempotent_and_ordered() {
        let mut d = DirtyCores::new();
        d.mark(3);
        d.mark(1);
        d.mark(3);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(d.len(), 2);
        assert!(d.contains(1));
        assert!(!d.contains(0));
    }

    #[test]
    fn all_covers_every_core() {
        let d = DirtyCores::all(4);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(!d.is_empty());
    }

    #[test]
    fn clear_and_merge() {
        let mut a = DirtyCores::new();
        a.mark(0);
        let mut b = DirtyCores::new();
        b.mark(2);
        b.mark(0);
        a.merge(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2]);
        a.clear();
        assert!(a.is_empty());
    }
}
