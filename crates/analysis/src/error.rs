//! Error type for the analysis crate.

use std::error::Error;
use std::fmt;
use vc2m_model::ModelError;

/// Error returned by the schedulability analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A taskset that must be non-empty was empty.
    EmptyTaskset,
    /// Theorem 2 requires a harmonic taskset; this one is not.
    NotHarmonic,
    /// Flattening requires one VCPU per task, but the VM's VCPU cap is
    /// too small.
    TooManyTasks {
        /// Number of tasks in the VM.
        tasks: usize,
        /// The VM's VCPU cap.
        max_vcpus: usize,
    },
    /// An underlying model constructor rejected the computed
    /// parameters.
    Model(ModelError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptyTaskset => write!(f, "taskset must not be empty"),
            AnalysisError::NotHarmonic => {
                write!(f, "overhead-free analysis requires a harmonic taskset")
            }
            AnalysisError::TooManyTasks { tasks, max_vcpus } => write!(
                f,
                "flattening needs {tasks} VCPUs but the VM supports only {max_vcpus}"
            ),
            AnalysisError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(AnalysisError::NotHarmonic.to_string().contains("harmonic"));
        let e = AnalysisError::Model(ModelError::Empty { what: "taskset" });
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&AnalysisError::EmptyTaskset).is_none());
    }
}
