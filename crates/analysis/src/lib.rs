//! Compositional schedulability analyses for vC²M.
//!
//! Three ways to turn a set of tasks on a VCPU into the VCPU's
//! `(period, budget-surface)` parameters, matching the five solutions
//! evaluated in Section 5 of the paper:
//!
//! * **Flattening** ([`flattening`], Theorem 1) — each task gets its
//!   own VCPU with Πⱼ = pᵢ and Θⱼ(c,b) = eᵢ(c,b), its release
//!   synchronized with the task's. Zero abstraction overhead; requires
//!   one VCPU per task.
//! * **Overhead-free CSA** ([`regulated`], Theorem 2) — a harmonic
//!   taskset on a *well-regulated* VCPU with Πⱼ = min pᵢ and
//!   Θⱼ(c,b) = Πⱼ·Σ eᵢ(c,b)/pᵢ. Zero abstraction overhead; works for
//!   any number of tasks per VCPU.
//! * **Existing CSA** ([`existing`], Shin & Lee's periodic resource
//!   model \[13\]) — the prior state of the art, carrying the
//!   abstraction overhead that vC²M eliminates.
//!
//! Plus the per-core schedulability test used by the hypervisor-level
//! allocation ([`core_check`]), and the intra-core overhead inflation
//! hook ([`overhead`], the technique of \[17\]).
//!
//! # Example
//!
//! ```
//! use vc2m_analysis::{existing, regulated};
//! use vc2m_model::{Platform, Task, TaskId, TaskSet, VcpuId, VmId, WcetSurface};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = Platform::platform_a().resources();
//! // The paper's example task: period 10, WCET 1 everywhere.
//! let task = Task::new(TaskId(0), 10.0, WcetSurface::flat(&space, 1.0)?)?;
//! let taskset: TaskSet = std::iter::once(task).collect();
//!
//! let well_regulated = regulated::regulated_vcpu(VcpuId(0), VmId(0), &taskset)?;
//! let prior_art = existing::existing_vcpu(VcpuId(1), VmId(0), &taskset)?;
//!
//! // Overhead-free: bandwidth exactly 0.1 (the task's utilization).
//! // Existing CSA: 0.55 at the task's own period; the built-in server
//! // period search shrinks that, but some overhead always remains.
//! assert!((well_regulated.reference_utilization() - 0.1).abs() < 1e-9);
//! assert!(prior_art.reference_utilization() > 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod cache;
pub mod core_check;
pub mod dirty;
pub mod existing;
pub mod flattening;
pub mod overhead;
pub mod regulated;
pub mod regulated_supply;

pub use cache::{AnalysisCache, CacheStats};
pub use dirty::DirtyCores;
pub use error::AnalysisError;
pub use vc2m_sched::kernel::KernelCounters;

/// Exports kernel telemetry counters into `out` under the
/// `analysis.checkpoints.*` / `analysis.kernel.*` metric names the
/// sweep driver publishes (`vc2m sweep --metrics-out`):
///
/// * `analysis.checkpoints.merges` / `.emitted` — checkpoint merge
///   sweeps and the points they produced;
/// * `analysis.checkpoints.truncated` — merges where the
///   [`MAX_CHECKPOINTS`](vc2m_sched::kernel::MAX_CHECKPOINTS) cap
///   dropped in-horizon deadlines (a bounded-horizon approximation);
/// * `analysis.checkpoints.fallback_horizons` — analyses that used the
///   bounded 10 000 ms horizon because no hyperperiod exists;
/// * `analysis.kernel.can_schedule` / `.min_budget` /
///   `.solver_min_budget` — incremental kernel invocations;
/// * `analysis.kernel.vcpu_builds` — VCPU interfaces constructed.
pub fn export_kernel_metrics(counters: &KernelCounters, out: &mut vc2m_simcore::MetricsRegistry) {
    out.counter_add("analysis.checkpoints.merges", counters.checkpoint_merges);
    out.counter_add("analysis.checkpoints.emitted", counters.checkpoints_emitted);
    out.counter_add("analysis.checkpoints.truncated", counters.checkpoints_truncated);
    out.counter_add(
        "analysis.checkpoints.fallback_horizons",
        counters.fallback_horizons,
    );
    out.counter_add("analysis.kernel.can_schedule", counters.can_schedule_calls);
    out.counter_add("analysis.kernel.min_budget", counters.min_budget_calls);
    out.counter_add("analysis.kernel.solver_min_budget", counters.solver_calls);
    out.counter_add("analysis.kernel.vcpu_builds", counters.vcpu_builds);
}
