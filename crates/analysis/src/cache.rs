//! The analysis interface cache.
//!
//! The sweep methodology of the paper (Section 5) analyzes every
//! generated taskset with *all five* solutions, and the existing-CSA
//! solutions re-derive a minimal periodic-resource budget for every
//! cell of every VCPU's budget surface. Much of that work repeats:
//!
//! * the slowdown model plateaus once a task's working set fits in the
//!   allocated cache, so many cells of one surface share the exact same
//!   WCET vector;
//! * the period search of `existing::best_period` evaluates the chosen
//!   period's budget, which the surface's reference cell then needs
//!   again;
//! * different solutions cluster the same tasks into the same VCPUs
//!   and re-analyze identical demands.
//!
//! [`AnalysisCache`] memoizes the minimal-budget computation keyed by
//! the **exact bits** of the `(period, (pᵢ, eᵢ)…)` inputs, so a hit is
//! provably bit-identical to recomputing — the property the sweep
//! conformance suite (`crates/core/tests/sweep_conformance.rs`)
//! verifies end to end.
//!
//! The cache is single-threaded by design (interior mutability via
//! [`RefCell`], no locks): the sweep engine creates one cache per
//! `(utilization point, repetition)` work unit and shares it across
//! the five solutions analyzing that unit's taskset; parallel sweep
//! workers each own their units' caches outright.

use std::cell::RefCell;
use vc2m_simcore::MetricsRegistry;

/// The FxHash multiply-rotate word hash (rustc's `FxHashMap`): a few
/// cycles per word against SipHash's few cycles per *byte*. Memo keys
/// are short `u64` runs of trusted, non-adversarial data (float bits of
/// task parameters), which is exactly the regime this hash is meant
/// for — with SipHash, key hashing rivals the memoized computation
/// itself on small demands. Collisions only cost a probe walk; lookup
/// correctness still rests on full key equality.
fn fx_hash(words: &[u64]) -> u64 {
    let mut hash = 0u64;
    for &word in words {
        hash = (hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    hash
}

/// Hit/miss counters of an [`AnalysisCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Minimal-budget computations answered from the cache.
    pub hits: u64,
    /// Minimal-budget computations actually performed (and inserted).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups, hits + misses.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache; 0 when no lookup
    /// happened (e.g. the cache was disabled).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Adds `other`'s counters into `self` — used to aggregate the
    /// per-work-unit caches of a sweep into one figure.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Exports the counters into `out` under `prefix` (e.g.
    /// `"analysis.cache."`): counters `{prefix}hits`, `{prefix}misses`,
    /// `{prefix}lookups` and `{prefix}evictions`, plus the gauge
    /// `{prefix}hit_rate`.
    ///
    /// `evictions` is structurally zero today — the memo table is
    /// insert-only — but is exported so the metrics schema stays stable
    /// if an eviction policy is ever added.
    pub fn export_metrics(&self, prefix: &str, out: &mut MetricsRegistry) {
        out.counter_add(&format!("{prefix}hits"), self.hits);
        out.counter_add(&format!("{prefix}misses"), self.misses);
        out.counter_add(&format!("{prefix}lookups"), self.lookups());
        out.counter_add(&format!("{prefix}evictions"), 0);
        out.gauge_set(&format!("{prefix}hit_rate"), self.hit_rate());
    }
}

/// One occupied slot of the memo table: the key's hash (to skip most
/// probe comparisons and to grow without re-hashing), its word range
/// in the shared key arena, and the memoized budget.
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    start: u32,
    len: u32,
    value: Option<f64>,
}

/// The memo store: an insert-only open-addressing table over an arena.
///
/// Keys are the resource period followed by every `(period, wcet)`
/// pair of the demand, flattened to `f64::to_bits` words. Two demands
/// collide only when every input float is bit-identical, in which case
/// the deterministic `min_budget` provably returns the same bits.
///
/// A bespoke table instead of `HashMap<Vec<u64>, _>` because the memo
/// sits on the sweep's hottest path (~10⁵ lookups per work unit) and
/// the std map charges for generality the memo never uses: a heap
/// allocation per stored key, SipHash-strength hashing, re-hashing
/// every key on growth, and a second hash on the miss→insert step.
/// Here all key words live back-to-back in one arena `Vec` (inserting
/// is an `extend_from_slice`), the FxHash of the probe key is computed
/// once and reused for insertion and growth, and slots are `Copy`.
/// Entries are never deleted — a memo only grows — which keeps probing
/// tombstone-free linear scanning.
#[derive(Debug)]
struct MemoTable {
    /// Power-of-two slot array; `None` = empty, probing is linear.
    slots: Vec<Option<Slot>>,
    /// Mask (`slots.len() - 1`) turning a hash into a slot index.
    mask: usize,
    /// Occupied slot count; growth keeps load factor ≤ ~70 %.
    occupied: usize,
    /// All key words, back to back. Slots address into this.
    arena: Vec<u64>,
}

const INITIAL_SLOTS: usize = 1024;

impl Default for MemoTable {
    fn default() -> Self {
        MemoTable {
            slots: vec![None; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            occupied: 0,
            arena: Vec::new(),
        }
    }
}

impl MemoTable {
    fn key_of(&self, slot: &Slot) -> &[u64] {
        &self.arena[slot.start as usize..slot.start as usize + slot.len as usize]
    }

    /// Looks up `key` (with its precomputed `hash`), returning the
    /// memoized value of the matching entry.
    fn get(&self, hash: u64, key: &[u64]) -> Option<Option<f64>> {
        let mut index = (hash as usize) & self.mask;
        while let Some(slot) = &self.slots[index] {
            if slot.hash == hash && self.key_of(slot) == key {
                return Some(slot.value);
            }
            index = (index + 1) & self.mask;
        }
        None
    }

    /// Inserts `key → value`, assuming `get` just returned `None` for
    /// it (entries are never overwritten, so double-insertion of a key
    /// would leave an unreachable duplicate — harmless but wasteful).
    fn insert(&mut self, hash: u64, key: &[u64], value: Option<f64>) {
        if (self.occupied + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let start = u32::try_from(self.arena.len()).expect("memo arena exceeds u32 indexing");
        self.arena.extend_from_slice(key);
        let slot = Slot {
            hash,
            start,
            len: key.len() as u32,
            value,
        };
        let mut index = (hash as usize) & self.mask;
        while self.slots[index].is_some() {
            index = (index + 1) & self.mask;
        }
        self.slots[index] = Some(slot);
        self.occupied += 1;
    }

    /// Forgets every entry while keeping the slot array and the key
    /// arena at their grown capacity, so a reused table re-warms
    /// without re-allocating. A freshly reset table answers lookups
    /// exactly like a brand-new one — capacity is the only carry-over.
    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|slot| *slot = None);
        self.occupied = 0;
        self.arena.clear();
    }

    /// Doubles the slot array, re-placing every entry by its stored
    /// hash — no key is re-hashed.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_len]);
        self.mask = new_len - 1;
        for slot in old.into_iter().flatten() {
            let mut index = (slot.hash as usize) & self.mask;
            while self.slots[index].is_some() {
                index = (index + 1) & self.mask;
            }
            self.slots[index] = Some(slot);
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    budgets: MemoTable,
    /// Reusable lookup-key buffer.
    key_scratch: Vec<u64>,
    /// Bumped on every key build; lets the memo detect whether a
    /// nested lookup clobbered `key_scratch` during `compute`.
    generation: u64,
    stats: CacheStats,
}

impl Inner {
    /// Builds the probe key in `key_scratch` and returns its hash. The
    /// word sequence (resource period, then interleaved `pᵢ, eᵢ` bits)
    /// is unchanged from the pre-SoA key layout, so memoized entries
    /// hash and compare identically across the `Demand` storage change.
    fn fill_key_scratch(&mut self, periods: &[f64], wcets: &[f64], period: f64) -> u64 {
        self.generation += 1;
        self.key_scratch.clear();
        self.key_scratch.reserve(1 + 2 * periods.len());
        self.key_scratch.push(period.to_bits());
        for (&p, &e) in periods.iter().zip(wcets) {
            self.key_scratch.push(p.to_bits());
            self.key_scratch.push(e.to_bits());
        }
        fx_hash(&self.key_scratch)
    }
}

/// Memoizes minimal-budget computations across the solutions analyzing
/// one taskset. See the [module docs](self) for the sharing structure
/// and the bit-identity argument.
///
/// A *disabled* cache ([`AnalysisCache::disabled`], also the default)
/// is a zero-cost pass-through: every lookup computes, nothing is
/// stored, and the stats stay zero. This is what
/// `Solution::allocate` uses, so allocation behavior is opt-in
/// unchanged unless a cache is threaded in explicitly.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    inner: Option<RefCell<Inner>>,
}

impl AnalysisCache {
    /// Creates an active cache.
    pub fn enabled() -> Self {
        AnalysisCache {
            inner: Some(RefCell::new(Inner::default())),
        }
    }

    /// Creates a pass-through cache that never stores anything.
    pub fn disabled() -> Self {
        AnalysisCache { inner: None }
    }

    /// Whether this cache actually memoizes.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Forgets every memoized entry and zeroes the hit/miss counters
    /// while retaining the table's and arena's allocated capacity — a
    /// no-op on a disabled cache.
    ///
    /// A reset cache behaves exactly like a fresh
    /// [`enabled`](AnalysisCache::enabled) one (same lookup outcomes,
    /// same stats), which is what lets a sweep worker thread reuse one
    /// cache across many work units without re-allocating: the sweep
    /// resets at each unit boundary, so every unit's hit/miss sequence
    /// is deterministic no matter which thread ran it.
    pub fn reset(&mut self) {
        if let Some(inner) = &mut self.inner {
            let inner = inner.get_mut();
            inner.budgets.reset();
            inner.stats = CacheStats::default();
        }
    }

    /// The accumulated hit/miss counters (all zero when disabled).
    pub fn stats(&self) -> CacheStats {
        self.inner
            .as_ref()
            .map(|inner| inner.borrow().stats)
            .unwrap_or_default()
    }

    /// Returns the memoized minimal budget for the demand given as
    /// parallel `periods`/`wcets` slices (the SoA halves of a
    /// [`Demand`](vc2m_sched::dbf::Demand)) against a resource of
    /// period `period`, running `compute` on a miss (or always, when
    /// disabled).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn min_budget_memo(
        &self,
        periods: &[f64],
        wcets: &[f64],
        period: f64,
        compute: impl FnOnce() -> Option<f64>,
    ) -> Option<f64> {
        assert_eq!(
            periods.len(),
            wcets.len(),
            "memo key slices must be parallel"
        );
        let Some(inner) = &self.inner else {
            return compute();
        };
        let (hash, generation) = {
            let mut guard = inner.borrow_mut();
            let hash = guard.fill_key_scratch(periods, wcets, period);
            let Inner {
                budgets,
                key_scratch,
                stats,
                ..
            } = &mut *guard;
            if let Some(cached) = budgets.get(hash, key_scratch) {
                stats.hits += 1;
                return cached;
            }
            (hash, guard.generation)
        };
        // Compute outside the borrow so `compute` may itself consult
        // the cache (e.g. a nested memoized call) without panicking.
        let value = compute();
        let mut guard = inner.borrow_mut();
        if guard.generation != generation {
            // A nested lookup clobbered the scratch — rebuild the key,
            // and re-probe since the nesting may have inserted it.
            guard.fill_key_scratch(periods, wcets, period);
            let Inner {
                budgets,
                key_scratch,
                stats,
                ..
            } = &mut *guard;
            if budgets.get(hash, key_scratch).is_some() {
                stats.hits += 1;
                return value;
            }
        }
        let Inner {
            budgets,
            key_scratch,
            stats,
            ..
        } = &mut *guard;
        stats.misses += 1;
        budgets.insert(hash, key_scratch, value);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_always_computes() {
        let cache = AnalysisCache::disabled();
        assert!(!cache.is_enabled());
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.min_budget_memo(&[10.0], &[1.0], 5.0, || {
                calls += 1;
                Some(1.5)
            });
            assert_eq!(v, Some(1.5));
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn enabled_cache_computes_once_per_key() {
        let cache = AnalysisCache::enabled();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.min_budget_memo(&[10.0], &[1.0], 5.0, || {
                calls += 1;
                Some(1.5)
            });
            assert_eq!(v, Some(1.5));
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn none_results_are_cached_too() {
        let cache = AnalysisCache::enabled();
        let mut calls = 0;
        for _ in 0..2 {
            let v = cache.min_budget_memo(&[10.0], &[12.0], 10.0, || {
                calls += 1;
                None
            });
            assert_eq!(v, None);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn keys_are_bitwise_exact() {
        let cache = AnalysisCache::enabled();
        let a = cache.min_budget_memo(&[10.0], &[1.0], 5.0, || Some(1.0));
        // A WCET differing in the last ulp is a different key.
        let e = f64::from_bits(1.0f64.to_bits() + 1);
        let b = cache.min_budget_memo(&[10.0], &[e], 5.0, || Some(2.0));
        // Same pairs but a different resource period: also distinct.
        let c = cache.min_budget_memo(&[10.0], &[1.0], 2.5, || Some(3.0));
        assert_eq!((a, b, c), (Some(1.0), Some(2.0), Some(3.0)));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn reset_forgets_entries_and_counters() {
        let mut cache = AnalysisCache::enabled();
        let mut calls = 0;
        let mut lookup = |cache: &AnalysisCache| {
            cache.min_budget_memo(&[10.0], &[1.0], 5.0, || {
                calls += 1;
                Some(1.5)
            })
        };
        assert_eq!(lookup(&cache), Some(1.5));
        assert_eq!(lookup(&cache), Some(1.5));
        cache.reset();
        assert_eq!(cache.stats(), CacheStats::default(), "reset zeroes stats");
        // The entry is gone: the next lookup computes again.
        assert_eq!(lookup(&cache), Some(1.5));
        assert_eq!(calls, 2);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        // Resetting a disabled cache is a harmless no-op.
        AnalysisCache::disabled().reset();
    }

    #[test]
    fn reset_survives_table_growth() {
        let mut cache = AnalysisCache::enabled();
        // Overfill past the initial table (load factor 70% of 1024
        // slots) so reset runs against a grown table and arena.
        for i in 0..2048u64 {
            let p = 10.0 + i as f64;
            let _ = cache.min_budget_memo(&[p], &[1.0], 5.0, || Some(p));
        }
        assert_eq!(cache.stats().misses, 2048);
        cache.reset();
        let mut computed = false;
        let v = cache.min_budget_memo(&[10.0], &[1.0], 5.0, || {
            computed = true;
            Some(7.0)
        });
        assert_eq!(v, Some(7.0));
        assert!(computed, "reset must not resurrect pre-reset entries");
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut total = CacheStats::default();
        total.merge(CacheStats { hits: 2, misses: 3 });
        total.merge(CacheStats { hits: 5, misses: 0 });
        assert_eq!(total, CacheStats { hits: 7, misses: 3 });
        assert_eq!(total.lookups(), 10);
    }

    #[test]
    fn stats_export_metrics() {
        let stats = CacheStats { hits: 3, misses: 1 };
        let mut m = MetricsRegistry::new();
        stats.export_metrics("analysis.cache.", &mut m);
        assert_eq!(m.counter("analysis.cache.hits"), Some(3));
        assert_eq!(m.counter("analysis.cache.misses"), Some(1));
        assert_eq!(m.counter("analysis.cache.lookups"), Some(4));
        assert_eq!(m.counter("analysis.cache.evictions"), Some(0));
        assert_eq!(m.gauge("analysis.cache.hit_rate"), Some(0.75));
    }
}
