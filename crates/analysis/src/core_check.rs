//! Per-core schedulability test for the hypervisor level.
//!
//! VCPUs placed on a core are scheduled by partitioned EDF as periodic
//! servers with implicit deadlines. EDF is optimal on a uniprocessor,
//! so a core with allocation `(c, b)` is schedulable iff
//!
//! 1. every VCPU's budget fits its period: Θⱼ(c,b) ≤ Πⱼ, and
//! 2. the total CPU-bandwidth is at most one: Σⱼ Θⱼ(c,b)/Πⱼ ≤ 1.
//!
//! This is the "total utilization under the allocated cache and BW
//! partitions is at most 1" test of the paper's Phase 2.

use vc2m_model::{Alloc, VcpuSpec};

/// Small tolerance absorbing floating-point accumulation in
/// utilization sums.
pub const UTILIZATION_EPS: f64 = 1e-9;

/// Total CPU-bandwidth of `vcpus` under allocation `alloc`.
///
/// # Panics
///
/// Panics if `alloc` is outside the VCPUs' resource space.
pub fn core_utilization<'a>(vcpus: impl IntoIterator<Item = &'a VcpuSpec>, alloc: Alloc) -> f64 {
    vcpus.into_iter().map(|v| v.utilization(alloc)).sum()
}

/// Whether a core holding `vcpus` is schedulable under allocation
/// `alloc`.
///
/// Evaluated in a single pass: each VCPU's feasibility check and its
/// utilization lookup share one traversal (the hypervisor-level
/// allocators call this per candidate placement, so the surfaces are
/// walked millions of times per sweep). The boolean is identical to
/// the two-pass `all(feasible) && Σ utilization ≤ 1 + ε` form: the
/// feasibility conjunction short-circuits at the same VCPU, and the
/// utilization sum accumulates in the same order — and is only
/// compared when every feasibility test passed, exactly as `&&`
/// ordered it.
///
/// # Panics
///
/// Panics if `alloc` is outside the VCPUs' resource space.
pub fn core_schedulable<'a>(vcpus: impl IntoIterator<Item = &'a VcpuSpec>, alloc: Alloc) -> bool {
    let mut utilization = 0.0;
    for v in vcpus {
        if !v.is_feasible_at(alloc) {
            return false;
        }
        utilization += v.utilization(alloc);
    }
    utilization <= 1.0 + UTILIZATION_EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{BudgetSurface, Platform, ResourceSpace, TaskId, VcpuId, VmId};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn vcpu(id: usize, period: f64, budget: f64) -> VcpuSpec {
        VcpuSpec::new(
            VcpuId(id),
            VmId(0),
            period,
            BudgetSurface::flat(&space(), budget).unwrap(),
            vec![TaskId(id)],
        )
        .unwrap()
    }

    #[test]
    fn empty_core_is_schedulable() {
        assert!(core_schedulable(std::iter::empty(), space().reference()));
        assert_eq!(
            core_utilization(std::iter::empty(), space().reference()),
            0.0
        );
    }

    #[test]
    fn utilization_sums() {
        let a = vcpu(0, 10.0, 2.0);
        let b = vcpu(1, 20.0, 8.0);
        let u = core_utilization([&a, &b], space().reference());
        assert!((u - 0.6).abs() < 1e-12);
        assert!(core_schedulable([&a, &b], space().reference()));
    }

    #[test]
    fn exactly_full_core_is_schedulable() {
        let a = vcpu(0, 10.0, 5.0);
        let b = vcpu(1, 10.0, 5.0);
        assert!(core_schedulable([&a, &b], space().reference()));
    }

    #[test]
    fn overfull_core_is_not() {
        let a = vcpu(0, 10.0, 6.0);
        let b = vcpu(1, 10.0, 5.0);
        assert!(!core_schedulable([&a, &b], space().reference()));
    }

    #[test]
    fn infeasible_vcpu_fails_even_with_low_total() {
        // Budget exceeds period at the minimum allocation.
        let surface =
            BudgetSurface::from_fn(
                &space(),
                |a| {
                    if a == space().minimum() {
                        15.0
                    } else {
                        1.0
                    }
                },
            )
            .unwrap();
        let v = VcpuSpec::new(VcpuId(0), VmId(0), 10.0, surface, vec![TaskId(0)]).unwrap();
        assert!(!core_schedulable([&v], space().minimum()));
        assert!(core_schedulable([&v], space().reference()));
    }

    #[test]
    fn allocation_changes_verdict() {
        // Budget 12 at minimum (infeasible), 2 at reference.
        let surface = BudgetSurface::from_fn(&space(), |a| {
            2.0 + 10.0 * (1.0 - f64::from(a.cache - 2) / 18.0)
        })
        .unwrap();
        let v = VcpuSpec::new(VcpuId(0), VmId(0), 10.0, surface, vec![TaskId(0)]).unwrap();
        assert!(!core_schedulable([&v], space().minimum()));
        assert!(core_schedulable([&v], space().reference()));
    }
}
