//! The existing compositional analysis (periodic resource model).
//!
//! This is the prior state of the art the paper compares against
//! (reference \[13\]): a VCPU serving a taskset is abstracted as a
//! periodic resource Γ = (Π, Θ), with Θ the minimal budget such that
//! the taskset's EDF demand never exceeds Γ's worst-case supply. The
//! resulting bandwidth Θ/Π can far exceed the taskset's utilization —
//! the *abstraction overhead* (5.5× for the introduction's example
//! task) that the flattening and well-regulated strategies remove.
//!
//! Two variants are provided, matching the evaluated solutions:
//!
//! * [`existing_vcpu`] — allocation-aware: Θ(c,b) is computed from the
//!   WCETs eᵢ(c,b) for every cell (used by *Heuristic (existing
//!   CSA)*);
//! * [`existing_vcpu_worst_case`] — allocation-oblivious: WCETs are
//!   taken at the worst corner (no cache, worst-case bandwidth:
//!   eᵢ(Cmin, Bmin)) and the budget surface is flat (used by
//!   *Baseline (existing CSA)*).

//!
//! Both variants also come in `_cached` form
//! ([`existing_vcpu_cached`], [`existing_vcpu_worst_case_cached`]),
//! which route every minimal-budget computation through an
//! [`AnalysisCache`] and batch the per-cell demand evaluation with a
//! precomputed [`MinBudgetSolver`]. The cached paths are bit-identical
//! to the plain ones (the sweep conformance suite pins this); with a
//! disabled cache they simply delegate.

use crate::cache::AnalysisCache;
use crate::AnalysisError;
use vc2m_model::{BudgetSurface, Task, TaskSet, VcpuId, VcpuSpec, VmId};
use vc2m_sched::dbf::Demand;
use vc2m_sched::kernel::{record_vcpu_build, with_workspace};
use vc2m_sched::sbf::{min_budget, MinBudgetSolver};

/// Sentinel multiplier marking an infeasible cell: the budget is set
/// to `INFEASIBLE_FACTOR · Π`, which fails both the per-VCPU
/// feasibility check and any per-core utilization test.
const INFEASIBLE_FACTOR: f64 = 2.0;

/// Candidate divisors for the VCPU period search: Π ∈ {pₘᵢₙ/k}.
/// Smaller server periods track the demand more closely and shrink the
/// abstraction overhead (at the cost of more frequent replenishment);
/// searching over a small harmonic ladder is the standard
/// bandwidth-minimization step of compositional analysis — and the
/// reason the existing-CSA solutions are by far the slowest to analyze
/// (the paper's Figure 4).
const PERIOD_DIVISORS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Picks the candidate VCPU period minimizing the periodic-resource
/// bandwidth for `demand` (ties broken toward larger periods, which
/// cost fewer context switches at run time).
///
/// Budgets are evaluated with the thread's shared
/// [`AnalysisWorkspace`](vc2m_sched::kernel::AnalysisWorkspace), whose
/// results are bit-identical to [`min_budget`] — so the chosen period
/// is too.
fn best_period(demand: &Demand, p_min: f64) -> f64 {
    let mut best = p_min;
    let mut best_bandwidth = f64::INFINITY;
    for divisor in PERIOD_DIVISORS {
        let period = p_min / divisor;
        let theta = with_workspace(|ws| ws.min_budget(demand, period));
        let bandwidth = match theta {
            Some(theta) => theta / period,
            None => f64::INFINITY,
        };
        if bandwidth + 1e-12 < best_bandwidth {
            best_bandwidth = bandwidth;
            best = period;
        }
    }
    best
}

/// [`best_period`] evaluated with the naive [`min_budget`] — part of
/// the preserved reference path (see [`existing_vcpu_reference`]).
fn best_period_reference(demand: &Demand, p_min: f64) -> f64 {
    let mut best = p_min;
    let mut best_bandwidth = f64::INFINITY;
    for divisor in PERIOD_DIVISORS {
        let period = p_min / divisor;
        let bandwidth = match min_budget(demand, period) {
            Some(theta) => theta / period,
            None => f64::INFINITY,
        };
        if bandwidth + 1e-12 < best_bandwidth {
            best_bandwidth = bandwidth;
            best = period;
        }
    }
    best
}

/// Builds a VCPU for `taskset` under the existing compositional
/// analysis, with the VCPU period Π = min pᵢ and, for each allocation
/// `(c, b)`, the minimal periodic-resource budget for the WCETs
/// eᵢ(c,b).
///
/// Cells where no budget ≤ Π suffices are marked infeasible (budget
/// 2Π), so allocation algorithms reject them via the utilization test.
///
/// Per-cell budgets are computed by a [`MinBudgetSolver`] sharing one
/// checkpoint/floor table across the whole surface, bit-identical to
/// the historical per-cell fresh-`Demand` evaluation preserved as
/// [`existing_vcpu_reference`] (the conformance tests pin the two
/// against each other).
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu(id: VcpuId, vm: VmId, taskset: &TaskSet) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    // Select the server period at the reference allocation, then use it
    // consistently for every cell (a VCPU has one period).
    let reference_demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.reference_wcet()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period(&reference_demand, p_min);
    let periods: Vec<f64> = taskset.iter().map(Task::period).collect();
    let solver = MinBudgetSolver::new(&periods, period);
    let mut wcets = vec![0.0; periods.len()];
    let budget = BudgetSurface::from_fn(&space, |alloc| {
        for (wcet, t) in wcets.iter_mut().zip(taskset.iter()) {
            *wcet = t.wcet(alloc);
        }
        solver.min_budget(&wcets).unwrap_or(INFEASIBLE_FACTOR * period)
    })?;
    let tasks = taskset.iter().map(Task::id).collect();
    record_vcpu_build();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// The historical [`existing_vcpu`] implementation: naive
/// [`min_budget`] on a freshly built [`Demand`] per surface cell.
///
/// Kept as the conformance anchor and the "naive" arm of the kernel
/// microbench — the production path must stay bit-identical to this.
#[doc(hidden)]
pub fn existing_vcpu_reference(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let reference_demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.reference_wcet()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period_reference(&reference_demand, p_min);
    let budget = BudgetSurface::from_fn(&space, |alloc| {
        let demand = Demand::new(
            taskset
                .iter()
                .map(|t| (t.period(), t.wcet(alloc)))
                .collect(),
        )
        .expect("task parameters are validated at construction");
        min_budget(&demand, period).unwrap_or(INFEASIBLE_FACTOR * period)
    })?;
    let tasks = taskset.iter().map(Task::id).collect();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// Builds a VCPU for `taskset` under the existing analysis with the
/// *Baseline* solution's resource assumptions: every task runs with
/// its worst-case WCET (no cache allocated, worst-case bandwidth —
/// the `(Cmin, Bmin)` corner of its surface), and the resulting budget
/// is the same for every allocation.
///
/// The single budget is evaluated with the thread's shared
/// [`AnalysisWorkspace`](vc2m_sched::kernel::AnalysisWorkspace),
/// bit-identical to the naive path preserved as
/// [`existing_vcpu_worst_case_reference`].
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu_worst_case(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.wcet_surface().at_minimum()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period(&demand, p_min);
    let theta = with_workspace(|ws| ws.min_budget(&demand, period))
        .unwrap_or(INFEASIBLE_FACTOR * period);
    let budget = BudgetSurface::flat(&space, theta)?;
    let tasks = taskset.iter().map(Task::id).collect();
    record_vcpu_build();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// The historical [`existing_vcpu_worst_case`] implementation (naive
/// [`min_budget`]), kept as the conformance anchor and microbench
/// baseline.
#[doc(hidden)]
pub fn existing_vcpu_worst_case_reference(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.wcet_surface().at_minimum()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period_reference(&demand, p_min);
    let theta = min_budget(&demand, period).unwrap_or(INFEASIBLE_FACTOR * period);
    let budget = BudgetSurface::flat(&space, theta)?;
    let tasks = taskset.iter().map(Task::id).collect();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// [`best_period`] with every candidate's minimal budget routed
/// through the cache — the winning period's budget is then a guaranteed
/// hit when the budget surface (or the worst-case variant's single
/// budget) asks for it again.
fn best_period_cached(demand: &Demand, p_min: f64, cache: &AnalysisCache) -> f64 {
    let mut best = p_min;
    let mut best_bandwidth = f64::INFINITY;
    for divisor in PERIOD_DIVISORS {
        let period = p_min / divisor;
        let theta = cache.min_budget_memo(demand.periods(), demand.wcets(), period, || {
            with_workspace(|ws| ws.min_budget(demand, period))
        });
        let bandwidth = match theta {
            Some(theta) => theta / period,
            None => f64::INFINITY,
        };
        if bandwidth + 1e-12 < best_bandwidth {
            best_bandwidth = bandwidth;
            best = period;
        }
    }
    best
}

/// [`existing_vcpu`] with memoized minimal budgets.
///
/// Bit-identical to the plain variant: misses run a
/// [`MinBudgetSolver`] whose arithmetic replays [`min_budget`] exactly,
/// and hits replay a previous such result (same key bits → same value
/// bits). The slowdown model plateaus once a task's working set fits in
/// the allocated cache, so entire bands of the surface collapse onto
/// one memo entry — the dominant source of hits.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu_cached(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
    cache: &AnalysisCache,
) -> Result<VcpuSpec, AnalysisError> {
    if !cache.is_enabled() {
        return existing_vcpu(id, vm, taskset);
    }
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let reference_demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.reference_wcet()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period_cached(&reference_demand, p_min, cache);
    let periods: Vec<f64> = taskset.iter().map(Task::period).collect();
    let solver = MinBudgetSolver::new(&periods, period);
    let mut wcets = vec![0.0; periods.len()];
    let budget = BudgetSurface::from_fn(&space, |alloc| {
        for (wcet, t) in wcets.iter_mut().zip(taskset.iter()) {
            *wcet = t.wcet(alloc);
        }
        cache
            .min_budget_memo(&periods, &wcets, period, || solver.min_budget(&wcets))
            .unwrap_or(INFEASIBLE_FACTOR * period)
    })?;
    let tasks = taskset.iter().map(Task::id).collect();
    record_vcpu_build();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// [`existing_vcpu_worst_case`] with memoized minimal budgets;
/// bit-identical to the plain variant.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu_worst_case_cached(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
    cache: &AnalysisCache,
) -> Result<VcpuSpec, AnalysisError> {
    if !cache.is_enabled() {
        return existing_vcpu_worst_case(id, vm, taskset);
    }
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.wcet_surface().at_minimum()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period_cached(&demand, p_min, cache);
    // The chosen period's budget was just memoized by the search.
    let theta = cache
        .min_budget_memo(demand.periods(), demand.wcets(), period, || {
            with_workspace(|ws| ws.min_budget(&demand, period))
        })
        .unwrap_or(INFEASIBLE_FACTOR * period);
    let budget = BudgetSurface::flat(&space, theta)?;
    let tasks = taskset.iter().map(Task::id).collect();
    record_vcpu_build();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Alloc, Platform, ResourceSpace, Task, TaskId, WcetSurface};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn paper_example_has_5_5x_overhead_at_the_task_period() {
        // The introduction's example: a (10, 1) task on a *period-10*
        // periodic resource needs budget 5.5 — checked against the raw
        // periodic-resource model (the period search below shrinks the
        // overhead but cannot remove it).
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let theta = min_budget(&demand, 10.0).expect("feasible");
        assert!((theta - 5.5).abs() < 1e-6, "got {theta}");
    }

    #[test]
    fn period_search_shrinks_but_never_removes_the_overhead() {
        let ts: TaskSet = std::iter::once(task(0, 10.0, 1.0)).collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        // The search picks a finer server period than the task's.
        assert!(v.period() < 10.0);
        let bandwidth = v.reference_utilization();
        assert!(
            bandwidth < 0.55,
            "period search should beat the period-10 bandwidth, got {bandwidth}"
        );
        assert!(
            bandwidth > 0.1 + 1e-9,
            "abstraction overhead cannot vanish entirely, got {bandwidth}"
        );
    }

    #[test]
    fn bandwidth_never_below_overhead_free() {
        // The existing analysis can never beat the utilization bound:
        // its CPU-bandwidth Θ/Π is at least the taskset utilization at
        // every allocation (budgets themselves are incomparable since
        // the period search may pick a different Π).
        let ts: TaskSet = vec![task(0, 10.0, 1.0), task(1, 20.0, 4.0)]
            .into_iter()
            .collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let reg = crate::regulated::regulated_vcpu(VcpuId(1), VmId(0), &ts).unwrap();
        for alloc in space().iter() {
            assert!(
                v.utilization(alloc) >= reg.utilization(alloc) - 1e-9,
                "existing CSA beat the utilization bound at {alloc}"
            );
        }
    }

    #[test]
    fn allocation_aware_budget_shrinks_with_resources() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert!(v.budget(Alloc::new(2, 1)) > v.budget(Alloc::new(20, 20)));
    }

    #[test]
    fn infeasible_cells_marked() {
        // WCET equals period at the minimum corner: demand too high for
        // any budget there once a second task is added.
        let surface =
            WcetSurface::from_fn(&space(), |a| if a == space().minimum() { 9.0 } else { 1.0 })
                .unwrap();
        let t0 = Task::new(TaskId(0), 10.0, surface.clone()).unwrap();
        let t1 = Task::new(TaskId(1), 10.0, surface).unwrap();
        let ts: TaskSet = vec![t0, t1].into_iter().collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert!(!v.is_feasible_at(space().minimum()));
        assert!(v.is_feasible_at(space().reference()));
    }

    #[test]
    fn worst_case_variant_is_flat_and_pessimistic() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let aware = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let baseline = existing_vcpu_worst_case(VcpuId(1), VmId(0), &ts).unwrap();
        // Flat: same budget everywhere.
        assert_eq!(
            baseline.budget(Alloc::new(2, 1)),
            baseline.budget(Alloc::new(20, 20))
        );
        // And at the reference allocation it is at least as pessimistic
        // as the allocation-aware variant.
        assert!(baseline.budget(space().reference()) >= aware.budget(space().reference()) - 1e-9);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            existing_vcpu(VcpuId(0), VmId(0), &TaskSet::new()),
            Err(AnalysisError::EmptyTaskset)
        ));
        assert!(existing_vcpu_worst_case(VcpuId(0), VmId(0), &TaskSet::new()).is_err());
        let cache = AnalysisCache::enabled();
        assert!(existing_vcpu_cached(VcpuId(0), VmId(0), &TaskSet::new(), &cache).is_err());
        assert!(
            existing_vcpu_worst_case_cached(VcpuId(0), VmId(0), &TaskSet::new(), &cache).is_err()
        );
    }

    fn assert_bit_identical(a: &VcpuSpec, b: &VcpuSpec) {
        assert_eq!(a.period().to_bits(), b.period().to_bits());
        assert_eq!(a.tasks(), b.tasks());
        for alloc in space().iter() {
            assert_eq!(
                a.budget(alloc).to_bits(),
                b.budget(alloc).to_bits(),
                "budgets diverge at {alloc}"
            );
        }
    }

    #[test]
    fn production_paths_match_reference_bitwise() {
        // The solver/workspace-based builders must replay the
        // historical naive analysis bit for bit — period selection,
        // every surface cell, and the flat worst-case budget.
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t0 = Task::new(TaskId(0), 10.0, surface).unwrap();
        let t1 = task(1, 20.0, 3.0);
        let t2 = task(2, 40.0, 0.017);
        let ts: TaskSet = vec![t0, t1, t2].into_iter().collect();
        let fast = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let reference = existing_vcpu_reference(VcpuId(0), VmId(0), &ts).unwrap();
        assert_bit_identical(&fast, &reference);
        let fast_wc = existing_vcpu_worst_case(VcpuId(1), VmId(0), &ts).unwrap();
        let reference_wc = existing_vcpu_worst_case_reference(VcpuId(1), VmId(0), &ts).unwrap();
        assert_bit_identical(&fast_wc, &reference_wc);
    }

    #[test]
    fn cached_variant_is_bit_identical_and_actually_hits() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t0 = Task::new(TaskId(0), 10.0, surface).unwrap();
        let t1 = task(1, 20.0, 3.0);
        let ts: TaskSet = vec![t0, t1].into_iter().collect();

        let plain = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let cache = AnalysisCache::enabled();
        let cached = existing_vcpu_cached(VcpuId(0), VmId(0), &ts, &cache).unwrap();
        assert_bit_identical(&plain, &cached);
        // The WCETs above depend only on the cache axis, so each cache
        // column's 20 bandwidth cells collapse onto one memo entry.
        let stats = cache.stats();
        assert!(stats.hits > stats.misses, "expected mostly hits: {stats:?}");

        // A second analysis of the same taskset through the same cache
        // is all hits (the cross-solution sharing case).
        let again = existing_vcpu_cached(VcpuId(1), VmId(0), &ts, &cache).unwrap();
        assert_bit_identical(&plain, &again);
        assert_eq!(cache.stats().misses, stats.misses);
    }

    #[test]
    fn cached_worst_case_is_bit_identical() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let plain = existing_vcpu_worst_case(VcpuId(0), VmId(0), &ts).unwrap();
        let cache = AnalysisCache::enabled();
        let cached = existing_vcpu_worst_case_cached(VcpuId(0), VmId(0), &ts, &cache).unwrap();
        assert_bit_identical(&plain, &cached);
        // The period search memoized the winning period's budget, so
        // the final budget lookup is a hit.
        assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn disabled_cache_delegates() {
        let ts: TaskSet = std::iter::once(task(0, 10.0, 1.0)).collect();
        let cache = AnalysisCache::disabled();
        let plain = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let cached = existing_vcpu_cached(VcpuId(0), VmId(0), &ts, &cache).unwrap();
        assert_bit_identical(&plain, &cached);
        assert_eq!(cache.stats().lookups(), 0);
    }
}
