//! The existing compositional analysis (periodic resource model).
//!
//! This is the prior state of the art the paper compares against
//! (reference \[13\]): a VCPU serving a taskset is abstracted as a
//! periodic resource Γ = (Π, Θ), with Θ the minimal budget such that
//! the taskset's EDF demand never exceeds Γ's worst-case supply. The
//! resulting bandwidth Θ/Π can far exceed the taskset's utilization —
//! the *abstraction overhead* (5.5× for the introduction's example
//! task) that the flattening and well-regulated strategies remove.
//!
//! Two variants are provided, matching the evaluated solutions:
//!
//! * [`existing_vcpu`] — allocation-aware: Θ(c,b) is computed from the
//!   WCETs eᵢ(c,b) for every cell (used by *Heuristic (existing
//!   CSA)*);
//! * [`existing_vcpu_worst_case`] — allocation-oblivious: WCETs are
//!   taken at the worst corner (no cache, worst-case bandwidth:
//!   eᵢ(Cmin, Bmin)) and the budget surface is flat (used by
//!   *Baseline (existing CSA)*).

use crate::AnalysisError;
use vc2m_model::{BudgetSurface, Task, TaskSet, VcpuId, VcpuSpec, VmId};
use vc2m_sched::dbf::Demand;
use vc2m_sched::sbf::min_budget;

/// Sentinel multiplier marking an infeasible cell: the budget is set
/// to `INFEASIBLE_FACTOR · Π`, which fails both the per-VCPU
/// feasibility check and any per-core utilization test.
const INFEASIBLE_FACTOR: f64 = 2.0;

/// Candidate divisors for the VCPU period search: Π ∈ {pₘᵢₙ/k}.
/// Smaller server periods track the demand more closely and shrink the
/// abstraction overhead (at the cost of more frequent replenishment);
/// searching over a small harmonic ladder is the standard
/// bandwidth-minimization step of compositional analysis — and the
/// reason the existing-CSA solutions are by far the slowest to analyze
/// (the paper's Figure 4).
const PERIOD_DIVISORS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Picks the candidate VCPU period minimizing the periodic-resource
/// bandwidth for `demand` (ties broken toward larger periods, which
/// cost fewer context switches at run time).
fn best_period(demand: &Demand, p_min: f64) -> f64 {
    let mut best = p_min;
    let mut best_bandwidth = f64::INFINITY;
    for divisor in PERIOD_DIVISORS {
        let period = p_min / divisor;
        let bandwidth = match min_budget(demand, period) {
            Some(theta) => theta / period,
            None => f64::INFINITY,
        };
        if bandwidth + 1e-12 < best_bandwidth {
            best_bandwidth = bandwidth;
            best = period;
        }
    }
    best
}

/// Builds a VCPU for `taskset` under the existing compositional
/// analysis, with the VCPU period Π = min pᵢ and, for each allocation
/// `(c, b)`, the minimal periodic-resource budget for the WCETs
/// eᵢ(c,b).
///
/// Cells where no budget ≤ Π suffices are marked infeasible (budget
/// 2Π), so allocation algorithms reject them via the utilization test.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu(id: VcpuId, vm: VmId, taskset: &TaskSet) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    // Select the server period at the reference allocation, then use it
    // consistently for every cell (a VCPU has one period).
    let reference_demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.reference_wcet()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period(&reference_demand, p_min);
    let budget = BudgetSurface::from_fn(&space, |alloc| {
        let demand = Demand::new(
            taskset
                .iter()
                .map(|t| (t.period(), t.wcet(alloc)))
                .collect(),
        )
        .expect("task parameters are validated at construction");
        min_budget(&demand, period).unwrap_or(INFEASIBLE_FACTOR * period)
    })?;
    let tasks = taskset.iter().map(Task::id).collect();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

/// Builds a VCPU for `taskset` under the existing analysis with the
/// *Baseline* solution's resource assumptions: every task runs with
/// its worst-case WCET (no cache allocated, worst-case bandwidth —
/// the `(Cmin, Bmin)` corner of its surface), and the resulting budget
/// is the same for every allocation.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyTaskset`] for an empty taskset.
pub fn existing_vcpu_worst_case(
    id: VcpuId,
    vm: VmId,
    taskset: &TaskSet,
) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    let p_min = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    let demand = Demand::new(
        taskset
            .iter()
            .map(|t| (t.period(), t.wcet_surface().at_minimum()))
            .collect(),
    )
    .expect("task parameters are validated at construction");
    let period = best_period(&demand, p_min);
    let theta = min_budget(&demand, period).unwrap_or(INFEASIBLE_FACTOR * period);
    let budget = BudgetSurface::flat(&space, theta)?;
    let tasks = taskset.iter().map(Task::id).collect();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Alloc, Platform, ResourceSpace, Task, TaskId, WcetSurface};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn paper_example_has_5_5x_overhead_at_the_task_period() {
        // The introduction's example: a (10, 1) task on a *period-10*
        // periodic resource needs budget 5.5 — checked against the raw
        // periodic-resource model (the period search below shrinks the
        // overhead but cannot remove it).
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let theta = min_budget(&demand, 10.0).expect("feasible");
        assert!((theta - 5.5).abs() < 1e-6, "got {theta}");
    }

    #[test]
    fn period_search_shrinks_but_never_removes_the_overhead() {
        let ts: TaskSet = std::iter::once(task(0, 10.0, 1.0)).collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        // The search picks a finer server period than the task's.
        assert!(v.period() < 10.0);
        let bandwidth = v.reference_utilization();
        assert!(
            bandwidth < 0.55,
            "period search should beat the period-10 bandwidth, got {bandwidth}"
        );
        assert!(
            bandwidth > 0.1 + 1e-9,
            "abstraction overhead cannot vanish entirely, got {bandwidth}"
        );
    }

    #[test]
    fn bandwidth_never_below_overhead_free() {
        // The existing analysis can never beat the utilization bound:
        // its CPU-bandwidth Θ/Π is at least the taskset utilization at
        // every allocation (budgets themselves are incomparable since
        // the period search may pick a different Π).
        let ts: TaskSet = vec![task(0, 10.0, 1.0), task(1, 20.0, 4.0)]
            .into_iter()
            .collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let reg = crate::regulated::regulated_vcpu(VcpuId(1), VmId(0), &ts).unwrap();
        for alloc in space().iter() {
            assert!(
                v.utilization(alloc) >= reg.utilization(alloc) - 1e-9,
                "existing CSA beat the utilization bound at {alloc}"
            );
        }
    }

    #[test]
    fn allocation_aware_budget_shrinks_with_resources() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert!(v.budget(Alloc::new(2, 1)) > v.budget(Alloc::new(20, 20)));
    }

    #[test]
    fn infeasible_cells_marked() {
        // WCET equals period at the minimum corner: demand too high for
        // any budget there once a second task is added.
        let surface =
            WcetSurface::from_fn(&space(), |a| if a == space().minimum() { 9.0 } else { 1.0 })
                .unwrap();
        let t0 = Task::new(TaskId(0), 10.0, surface.clone()).unwrap();
        let t1 = Task::new(TaskId(1), 10.0, surface).unwrap();
        let ts: TaskSet = vec![t0, t1].into_iter().collect();
        let v = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert!(!v.is_feasible_at(space().minimum()));
        assert!(v.is_feasible_at(space().reference()));
    }

    #[test]
    fn worst_case_variant_is_flat_and_pessimistic() {
        let surface = WcetSurface::from_fn(&space(), |a| 0.5 + 2.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let aware = existing_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let baseline = existing_vcpu_worst_case(VcpuId(1), VmId(0), &ts).unwrap();
        // Flat: same budget everywhere.
        assert_eq!(
            baseline.budget(Alloc::new(2, 1)),
            baseline.budget(Alloc::new(20, 20))
        );
        // And at the reference allocation it is at least as pessimistic
        // as the allocation-aware variant.
        assert!(baseline.budget(space().reference()) >= aware.budget(space().reference()) - 1e-9);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            existing_vcpu(VcpuId(0), VmId(0), &TaskSet::new()),
            Err(AnalysisError::EmptyTaskset)
        ));
        assert!(existing_vcpu_worst_case(VcpuId(0), VmId(0), &TaskSet::new()).is_err());
    }
}
