//! Theorem 2: overhead-free analysis on well-regulated VCPUs.
//!
//! A *well-regulated* VCPU executes at time `t` iff it executes at
//! `t + k·Π` for all k — its supply pattern repeats every period. vC²M
//! realizes this with periodic servers, harmonic VCPU periods, a
//! common release offset and the deterministic EDF tie-break
//! (Section 3.2). On such a VCPU, a **harmonic** taskset
//! T = {(pᵢ, eᵢ(c,b))} is EDF-schedulable with
//!
//! ```text
//! Π = min pᵢ        Θ(c,b) = Π · Σᵢ eᵢ(c,b)/pᵢ
//! ```
//!
//! i.e. a CPU-bandwidth exactly equal to the taskset's utilization —
//! zero abstraction overhead, without needing one VCPU per task.

use crate::AnalysisError;
use vc2m_model::{BudgetSurface, Task, TaskSet, VcpuId, VcpuSpec, VmId};

/// Builds the well-regulated VCPU for a harmonic taskset (Theorem 2):
/// period `min pᵢ`, budget surface `Π·Σ eᵢ(c,b)/pᵢ`.
///
/// Cells of the surface where the combined utilization exceeds 1 are
/// recorded with their true (infeasible) budget `Θ(c,b) > Π`; the
/// per-core schedulability check rejects such allocations via the
/// utilization test, matching the paper's "no impact on utilization"
/// termination condition.
///
/// # Errors
///
/// * [`AnalysisError::EmptyTaskset`] for an empty taskset.
/// * [`AnalysisError::NotHarmonic`] if some pair of periods does not
///   divide evenly (the premise of Theorem 2).
pub fn regulated_vcpu(id: VcpuId, vm: VmId, taskset: &TaskSet) -> Result<VcpuSpec, AnalysisError> {
    if taskset.is_empty() {
        return Err(AnalysisError::EmptyTaskset);
    }
    if !taskset.is_harmonic() {
        return Err(AnalysisError::NotHarmonic);
    }
    let period = taskset.min_period().expect("taskset is non-empty");
    let space = *taskset
        .iter()
        .next()
        .expect("taskset is non-empty")
        .wcet_surface()
        .space();
    // Hoist the task walk out of the per-cell closure: the surface has
    // hundreds of cells and `from_fn` evaluates the closure per cell,
    // so resolving the taskset's storage once keeps the inner loop a
    // plain slice scan. Same tasks in the same order — the utilization
    // sum is bit-identical.
    let tasks_ref: Vec<&Task> = taskset.iter().collect();
    let budget = BudgetSurface::from_fn(&space, |alloc| {
        period * tasks_ref.iter().map(|t| t.utilization(alloc)).sum::<f64>()
    })?;
    let tasks = taskset.iter().map(Task::id).collect();
    vc2m_sched::kernel::record_vcpu_build();
    Ok(VcpuSpec::new(id, vm, period, budget, tasks)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Alloc, Platform, ResourceSpace, Task, TaskId, WcetSurface};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn bandwidth_equals_utilization() {
        // Paper's motivating example: (10, 1) costs bandwidth 0.55 under
        // the existing analysis, but exactly 0.1 here.
        let ts: TaskSet = std::iter::once(task(0, 10.0, 1.0)).collect();
        let v = regulated_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert_eq!(v.period(), 10.0);
        assert!((v.reference_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn multi_task_harmonic_set() {
        let ts: TaskSet = vec![task(0, 10.0, 1.0), task(1, 20.0, 4.0), task(2, 40.0, 8.0)]
            .into_iter()
            .collect();
        // U = 0.1 + 0.2 + 0.2 = 0.5; Π = 10; Θ = 5.
        let v = regulated_vcpu(VcpuId(1), VmId(0), &ts).unwrap();
        assert_eq!(v.period(), 10.0);
        assert!((v.reference_budget() - 5.0).abs() < 1e-12);
        assert_eq!(v.tasks().len(), 3);
    }

    #[test]
    fn budget_tracks_allocation() {
        let surface = WcetSurface::from_fn(&space(), |a| 1.0 + 4.0 / f64::from(a.cache)).unwrap();
        let t = Task::new(TaskId(0), 10.0, surface).unwrap();
        let ts: TaskSet = std::iter::once(t).collect();
        let v = regulated_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        // Θ(c,b) = Π·e(c,b)/p = e(c,b); cache-starved cells cost more.
        assert!(v.budget(Alloc::new(2, 1)) > v.budget(Alloc::new(20, 20)));
        assert!((v.budget(Alloc::new(2, 1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_cells_are_recorded_not_clamped() {
        // Three heavy tasks: utilization 1.5 at every allocation.
        let ts: TaskSet = (0..3).map(|i| task(i, 10.0, 5.0)).collect();
        let v = regulated_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        assert!((v.reference_budget() - 15.0).abs() < 1e-12);
        assert!(!v.is_feasible_at(space().reference()));
    }

    #[test]
    fn non_harmonic_rejected() {
        let ts: TaskSet = vec![task(0, 10.0, 1.0), task(1, 15.0, 1.0)]
            .into_iter()
            .collect();
        assert!(matches!(
            regulated_vcpu(VcpuId(0), VmId(0), &ts),
            Err(AnalysisError::NotHarmonic)
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            regulated_vcpu(VcpuId(0), VmId(0), &TaskSet::new()),
            Err(AnalysisError::EmptyTaskset)
        ));
    }

    #[test]
    fn agrees_with_flattening_for_single_task() {
        let t = task(0, 40.0, 6.0);
        let ts: TaskSet = std::iter::once(t.clone()).collect();
        let reg = regulated_vcpu(VcpuId(0), VmId(0), &ts).unwrap();
        let flat = crate::flattening::flatten_task(VcpuId(1), VmId(0), &t).unwrap();
        assert_eq!(reg.period(), flat.period());
        for alloc in space().iter() {
            assert!((reg.budget(alloc) - flat.budget(alloc)).abs() < 1e-12);
        }
    }
}
