//! Intra-core overhead inflation (the technique of \[17\]).
//!
//! With cache and bandwidth isolation in place, tasks on *different*
//! cores no longer interfere — but tasks and VCPUs sharing a core
//! still pay cache-related preemption and completion overheads. The
//! paper accounts for these by inflating task WCETs (with the
//! task-preemption overhead) before VM-level allocation, and inflating
//! VCPU budgets (with the VCPU preemption/completion overhead) before
//! hypervisor-level allocation, following the cache-aware
//! compositional analysis of \[17\].
//!
//! The model here is the standard one-preemption-per-job charge: each
//! job of a task can be preempted by each job of a *shorter-period*
//! task released during its window, and each preemption costs one
//! cache-reload + context-switch delta. For VCPUs, each server period
//! additionally pays one completion event.

use vc2m_model::{ModelError, Task, TaskSet, VcpuSpec};

/// Overhead parameters, in milliseconds per event.
///
/// The defaults are zero (no inflation), which reproduces the paper's
/// evaluation configuration — its schedulability experiments compare
/// analyses, not overhead models; the measured prototype overheads
/// (Tables 1 and 2, microseconds) are negligible at millisecond
/// periods. Non-zero values enable the inflation for sensitivity
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadModel {
    /// Cost charged per task preemption (cache reload + OS context
    /// switch).
    pub task_preemption_ms: f64,
    /// Cost charged per VCPU preemption or completion event (VCPU
    /// context switch in the hypervisor).
    pub vcpu_event_ms: f64,
}

impl OverheadModel {
    /// A model with no overhead (the identity inflation).
    pub fn none() -> Self {
        OverheadModel::default()
    }

    /// Creates a model with the given per-event costs.
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or non-finite.
    pub fn new(task_preemption_ms: f64, vcpu_event_ms: f64) -> Self {
        for (what, v) in [
            ("task_preemption_ms", task_preemption_ms),
            ("vcpu_event_ms", vcpu_event_ms),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{what} must be non-negative and finite, got {v}"
            );
        }
        OverheadModel {
            task_preemption_ms,
            vcpu_event_ms,
        }
    }

    /// Inflates one task's WCET surface for intra-core task-preemption
    /// overhead, in the context of its co-located `taskset`: each job
    /// is charged one preemption per release of a shorter-period task
    /// within its period: `e′ = e + Δ·Σ_{pⱼ<pᵢ} ⌈pᵢ/pⱼ⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ExceedsPeriod`] if the inflated reference
    /// WCET no longer fits the period (the task cannot absorb the
    /// overhead).
    pub fn inflate_task(&self, task: &Task, taskset: &TaskSet) -> Result<Task, ModelError> {
        if self.task_preemption_ms == 0.0 {
            return Ok(task.clone());
        }
        let (id, period) = (task.id(), task.period());
        let preemptions: f64 = taskset
            .iter()
            .filter(|other| other.id() != id && other.period() < period)
            .map(|other| (period / other.period()).ceil())
            .sum();
        let delta = self.task_preemption_ms * preemptions;
        let surface = vc2m_model::WcetSurface::from_fn(task.wcet_surface().space(), |alloc| {
            task.wcet(alloc) + delta
        })?;
        Task::new(task.id(), task.period(), surface)
    }

    /// Inflates a VCPU's budget surface for VCPU preemption/completion
    /// overhead among `co_located` VCPUs on the same core:
    /// `Θ′ = Θ + Δ·(1 + Σ_{Πⱼ<Πᵢ} ⌈Πᵢ/Πⱼ⌉)` (one completion per
    /// period plus one preemption per shorter-period server release).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the inflated surface is invalid
    /// (cannot happen for finite positive deltas).
    pub fn inflate_vcpu(
        &self,
        vcpu: &VcpuSpec,
        co_located: &[VcpuSpec],
    ) -> Result<VcpuSpec, ModelError> {
        if self.vcpu_event_ms == 0.0 {
            return Ok(vcpu.clone());
        }
        let (id, period) = (vcpu.id(), vcpu.period());
        let preemptions: f64 = co_located
            .iter()
            .filter(|other| other.id() != id && other.period() < period)
            .map(|other| (period / other.period()).ceil())
            .sum();
        let delta = self.vcpu_event_ms * (1.0 + preemptions);
        let surface = vc2m_model::BudgetSurface::from_fn(vcpu.budget_surface().space(), |alloc| {
            vcpu.budget(alloc) + delta
        })?;
        vc2m_sched::kernel::record_vcpu_build();
        VcpuSpec::new(id, vcpu.vm(), period, surface, vcpu.tasks().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Platform, ResourceSpace, TaskId, VcpuId, VmId, WcetSurface};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    fn vcpu(id: usize, period: f64, budget: f64) -> VcpuSpec {
        VcpuSpec::new(
            VcpuId(id),
            VmId(0),
            period,
            vc2m_model::BudgetSurface::flat(&space(), budget).unwrap(),
            vec![TaskId(id)],
        )
        .unwrap()
    }

    #[test]
    fn zero_model_is_identity() {
        let t = task(0, 10.0, 1.0);
        let ts: TaskSet = std::iter::once(t.clone()).collect();
        let inflated = OverheadModel::none().inflate_task(&t, &ts).unwrap();
        assert_eq!(inflated, t);
        let v = vcpu(0, 10.0, 2.0);
        assert_eq!(
            OverheadModel::none()
                .inflate_vcpu(&v, std::slice::from_ref(&v))
                .unwrap(),
            v
        );
    }

    #[test]
    fn task_inflation_counts_shorter_period_releases() {
        let victim = task(0, 40.0, 4.0);
        let preemptor = task(1, 10.0, 1.0);
        let ts: TaskSet = vec![victim.clone(), preemptor].into_iter().collect();
        let model = OverheadModel::new(0.1, 0.0);
        let inflated = model.inflate_task(&victim, &ts).unwrap();
        // ceil(40/10) = 4 preemptions × 0.1 ms.
        assert!((inflated.reference_wcet() - 4.4).abs() < 1e-12);
        // The preemptor itself has no shorter-period peer: unchanged.
        let p = ts.iter().find(|t| t.id() == TaskId(1)).unwrap();
        let p_inflated = model.inflate_task(p, &ts).unwrap();
        assert_eq!(p_inflated.reference_wcet(), 1.0);
    }

    #[test]
    fn task_inflation_can_overflow_period() {
        let victim = task(0, 40.0, 39.0);
        let preemptor = task(1, 10.0, 1.0);
        let ts: TaskSet = vec![victim.clone(), preemptor].into_iter().collect();
        let model = OverheadModel::new(0.5, 0.0);
        assert!(matches!(
            model.inflate_task(&victim, &ts),
            Err(ModelError::ExceedsPeriod { .. })
        ));
    }

    #[test]
    fn vcpu_inflation_adds_completion_charge() {
        let lone = vcpu(0, 10.0, 2.0);
        let model = OverheadModel::new(0.0, 0.05);
        let inflated = model
            .inflate_vcpu(&lone, std::slice::from_ref(&lone))
            .unwrap();
        // No shorter-period peers: 1 completion event only.
        assert!((inflated.reference_budget() - 2.05).abs() < 1e-12);
    }

    #[test]
    fn vcpu_inflation_counts_peers() {
        let slow = vcpu(0, 40.0, 8.0);
        let fast = vcpu(1, 10.0, 1.0);
        let model = OverheadModel::new(0.0, 0.1);
        let inflated = model.inflate_vcpu(&slow, &[slow.clone(), fast]).unwrap();
        // 1 completion + ceil(40/10) = 4 preemptions → 0.5 ms.
        assert!((inflated.reference_budget() - 8.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = OverheadModel::new(-0.1, 0.0);
    }
}
