//! Exact supply-bound functions of well-regulated VCPUs, and a
//! numerical validation of Theorem 2.
//!
//! A well-regulated VCPU delivers the *same* execution pattern in
//! every period: a set of intervals within `[0, Π)` totalling Θ. Its
//! supply in any window of length `t` is therefore exactly computable;
//! the worst case over all window phases is the supply bound function
//! ([`RegulatedSupply::sbf`]).
//!
//! Theorem 2 states that a harmonic taskset with utilization `U` is
//! EDF-schedulable on a well-regulated VCPU with `Π = min pᵢ` and
//! `Θ = Π·U` — *regardless of where inside the period the supply
//! lands*. [`RegulatedSupply::can_schedule`] checks
//! `dbf(t) ≤ sbf(t)` for a concrete pattern, so property tests can
//! hammer the theorem with arbitrary patterns and tasksets (see the
//! crate's test suite).

use crate::AnalysisError;
use vc2m_sched::dbf::Demand;

/// The per-period execution pattern of a well-regulated VCPU:
/// disjoint, sorted intervals within `[0, Π)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegulatedSupply {
    period: f64,
    /// Disjoint `[start, end)` intervals, sorted, within `[0, period)`.
    pattern: Vec<(f64, f64)>,
}

impl RegulatedSupply {
    /// Creates a supply from a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Model`]-wrapped validation failures if
    /// the period is not positive/finite, intervals are empty, out of
    /// range, unsorted or overlapping.
    pub fn new(period: f64, pattern: Vec<(f64, f64)>) -> Result<Self, AnalysisError> {
        let invalid = |detail: String| {
            AnalysisError::Model(vc2m_model::ModelError::InvalidResourceSpace { detail })
        };
        if !period.is_finite() || period <= 0.0 {
            return Err(invalid(format!("period must be positive, got {period}")));
        }
        let mut prev_end = 0.0;
        for &(s, e) in &pattern {
            if !(s.is_finite() && e.is_finite())
                || s < prev_end - 1e-12
                || e <= s
                || e > period + 1e-12
            {
                return Err(invalid(format!(
                    "invalid pattern interval [{s}, {e}) in period {period}"
                )));
            }
            prev_end = e;
        }
        Ok(RegulatedSupply { period, pattern })
    }

    /// The supply that lands at the very end of each period — the
    /// worst-case pattern for a given budget.
    ///
    /// # Errors
    ///
    /// Propagates pattern validation (budget must lie in `(0, Π]`).
    pub fn latest(period: f64, budget: f64) -> Result<Self, AnalysisError> {
        RegulatedSupply::new(period, vec![(period - budget, period)])
    }

    /// The VCPU period Π.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The per-period budget Θ (total pattern length).
    pub fn budget(&self) -> f64 {
        self.pattern.iter().map(|(s, e)| e - s).sum()
    }

    /// Supply delivered during `[x, x + t)` for a window starting at
    /// phase `x ∈ [0, Π)`.
    fn supply_from(&self, x: f64, t: f64) -> f64 {
        let end = x + t;
        let full_periods = (end / self.period).floor() as u64;
        let mut total = 0.0;
        // Whole periods fully inside [x, end).
        for k in 0..=full_periods {
            let base = k as f64 * self.period;
            for &(s, e) in &self.pattern {
                let (is, ie) = (base + s, base + e);
                let lo = is.max(x);
                let hi = ie.min(end);
                if hi > lo {
                    total += hi - lo;
                }
            }
        }
        total
    }

    /// The supply bound function: the minimum supply over any window
    /// of length `t`, minimized over the window phase.
    ///
    /// The minimum over phases is attained with the window starting at
    /// an interval *end* (supply just stopped) — a finite candidate
    /// set, so the computation is exact up to float rounding.
    pub fn sbf(&self, t: f64) -> f64 {
        if t <= 0.0 || self.pattern.is_empty() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        // Candidate phases: each interval end (mod period), plus 0.
        let mut candidates: Vec<f64> = self.pattern.iter().map(|&(_, e)| e % self.period).collect();
        candidates.push(0.0);
        for x in candidates {
            best = best.min(self.supply_from(x, t));
        }
        best
    }

    /// Whether `demand` is EDF-schedulable on this supply:
    /// `dbf(t) ≤ sbf(t)` at every deadline checkpoint up to the
    /// hyperperiod (plus the long-run bandwidth condition).
    pub fn can_schedule(&self, demand: &Demand) -> bool {
        let bandwidth = self.budget() / self.period;
        if demand.utilization() > bandwidth + 1e-9 {
            return false;
        }
        let horizon = demand
            .hyperperiod()
            .unwrap_or(10_000.0)
            .max(2.0 * self.period);
        demand
            .checkpoints(horizon, 100_000)
            .into_iter()
            .all(|t| demand.dbf(t) <= self.sbf(t) + 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(RegulatedSupply::new(10.0, vec![(0.0, 4.0)]).is_ok());
        assert!(
            RegulatedSupply::new(10.0, vec![(2.0, 2.0)]).is_err(),
            "empty interval"
        );
        assert!(
            RegulatedSupply::new(10.0, vec![(8.0, 12.0)]).is_err(),
            "out of range"
        );
        assert!(
            RegulatedSupply::new(10.0, vec![(4.0, 6.0), (5.0, 8.0)]).is_err(),
            "overlap"
        );
        assert!(RegulatedSupply::new(0.0, vec![]).is_err());
    }

    #[test]
    fn budget_sums_pattern() {
        let s = RegulatedSupply::new(10.0, vec![(1.0, 3.0), (6.0, 9.0)]).unwrap();
        assert!((s.budget() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sbf_of_early_supply() {
        // Supply [0, 4) each period of 10.
        let s = RegulatedSupply::new(10.0, vec![(0.0, 4.0)]).unwrap();
        // Worst window starts at 4 (just after supply): first 6 time
        // units dry, then 4 supplied.
        assert_eq!(s.sbf(6.0), 0.0);
        assert!((s.sbf(10.0) - 4.0).abs() < 1e-9);
        assert!((s.sbf(16.0) - 4.0).abs() < 1e-9);
        assert!((s.sbf(20.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn sbf_matches_periodic_resource_worst_case() {
        // The "latest" pattern is exactly the periodic resource model's
        // worst case: compare against the classical sbf formula.
        use vc2m_sched::sbf::PeriodicResource;
        let (period, budget) = (10.0, 4.0);
        let regulated = RegulatedSupply::latest(period, budget).unwrap();
        let classical = PeriodicResource::new(period, budget);
        for i in 0..200 {
            let t = i as f64 * 0.25;
            let r = regulated.sbf(t);
            let c = classical.sbf(t);
            // The classical bound additionally allows the *first*
            // period's supply to be late and the next one early (the
            // double blackout), so it never exceeds the regulated
            // bound.
            assert!(
                c <= r + 1e-9,
                "classical sbf must lower-bound the regulated supply at t={t}: {c} vs {r}"
            );
        }
        // And the regulated bound is strictly better somewhere: this
        // is exactly the value well-regulation adds.
        let t = 2.0 * (period - budget);
        assert!(regulated.sbf(t) > classical.sbf(t) + 0.5);
    }

    #[test]
    fn theorem_2_holds_for_the_latest_pattern() {
        // Harmonic taskset, U = 0.5, Π = min period, Θ = Π·U, supply as
        // late as possible: still schedulable.
        let demand = Demand::new(vec![(10.0, 1.0), (20.0, 4.0), (40.0, 8.0)]).unwrap();
        let supply = RegulatedSupply::latest(10.0, 10.0 * demand.utilization()).unwrap();
        assert!(supply.can_schedule(&demand));
    }

    #[test]
    fn theorem_2_fails_without_harmonicity() {
        // Non-harmonic periods CAN break the utilization-budget claim:
        // tasks (10, e) and (15, e)... with Π = 10 and the latest
        // pattern, the (15)-deadline window sees too little supply.
        let demand = Demand::new(vec![(10.0, 2.0), (15.0, 6.0)]).unwrap(); // U = 0.6
        let supply = RegulatedSupply::latest(10.0, 6.0).unwrap();
        assert!(
            !supply.can_schedule(&demand),
            "the harmonicity premise is load-bearing"
        );
    }

    #[test]
    fn split_supply_never_hurts() {
        // Splitting the same budget into two chunks can only move
        // supply earlier in the worst case.
        let demand = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        let theta = 10.0 * demand.utilization();
        let contiguous = RegulatedSupply::latest(10.0, theta).unwrap();
        let split = RegulatedSupply::new(
            10.0,
            vec![(3.0, 3.0 + theta / 2.0), (10.0 - theta / 2.0, 10.0)],
        )
        .unwrap();
        assert!(contiguous.can_schedule(&demand));
        assert!(split.can_schedule(&demand));
        for i in 0..100 {
            let t = i as f64 * 0.4;
            assert!(split.sbf(t) + 1e-9 >= contiguous.sbf(t) - 1e-9 || split.sbf(t) >= 0.0);
        }
    }

    #[test]
    fn zero_budget_supplies_nothing() {
        let s = RegulatedSupply::new(10.0, vec![]).unwrap();
        assert_eq!(s.sbf(100.0), 0.0);
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        assert!(!s.can_schedule(&demand));
    }
}
