//! Property-based validation of the paper's two theorems, driven by
//! the in-tree seeded case harness (`vc2m_rng::cases`).
//!
//! * **Theorem 1** (flattening): a task alone on a VCPU with
//!   Π = p, Θ = e and synchronized releases is schedulable iff the
//!   VCPU is — checked structurally (parameters equal) and via the
//!   supply argument.
//! * **Theorem 2** (overhead-free budgets on well-regulated VCPUs):
//!   a harmonic taskset with utilization U fits a well-regulated VCPU
//!   with Π = min pᵢ and Θ = Π·U, **whatever the supply pattern inside
//!   the period looks like**. We generate random harmonic tasksets and
//!   random patterns and check `dbf(t) ≤ sbf(t)` everywhere.

use vc2m_analysis::regulated_supply::RegulatedSupply;
use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_sched::dbf::Demand;

/// Random harmonic taskset: periods base·2^k (ns-quantized base),
/// utilizations scaled so the total stays under the cap.
fn arb_harmonic(cap: f64, rng: &mut DetRng) -> Demand {
    let base = (rng.gen_range(5.0f64..100.0) * 1e6).round() / 1e6;
    let n = rng.gen_range(1usize..7);
    let specs: Vec<(u32, f64)> = (0..n)
        .map(|_| (rng.gen_range(0u32..4), rng.gen_range(0.02f64..0.4)))
        .collect();
    let raw_total: f64 = specs.iter().map(|&(_, u)| u).sum();
    let scale = if raw_total > cap { cap / raw_total } else { 1.0 };
    let tasks: Vec<(f64, f64)> = specs
        .into_iter()
        .map(|(exp, u)| {
            let p = base * f64::from(1u32 << exp);
            (p, (u * scale * p).max(1e-6))
        })
        .collect();
    Demand::new(tasks).expect("valid demand")
}

/// Random pattern offsets in `[0, 1)`.
fn arb_offsets(max_len: usize, rng: &mut DetRng) -> Vec<f64> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| rng.gen_range(0.0f64..1.0)).collect()
}

/// A random well-regulated pattern with total budget `theta` inside a
/// period `period`: `chunks` sub-intervals placed from random offsets.
fn pattern_from(period: f64, theta: f64, offsets: &[f64]) -> Vec<(f64, f64)> {
    // Place `offsets.len()` equal chunks; each offset in [0, 1)
    // stretches over the free space left-to-right, keeping intervals
    // disjoint and ordered.
    let n = offsets.len().max(1);
    let chunk = theta / n as f64;
    let slack = period - theta;
    let mut pattern = Vec::with_capacity(n);
    let mut cursor = 0.0;
    for (i, &w) in offsets.iter().enumerate() {
        // Gap before this chunk: a w-fraction of the remaining slack.
        let remaining_chunks = (n - i) as f64;
        let max_gap = (slack - (cursor - i as f64 * chunk)).max(0.0) / remaining_chunks;
        let gap = w * max_gap;
        let start = cursor + gap;
        pattern.push((start, start + chunk));
        cursor = start + chunk;
    }
    pattern
}

/// Theorem 2, the headline property: harmonic demand, Π = min p,
/// Θ = Π·U, arbitrary well-regulated pattern ⇒ schedulable.
#[test]
fn theorem_2_holds_for_arbitrary_patterns() {
    check(128, |rng| {
        let demand = arb_harmonic(0.95, rng);
        let offsets = arb_offsets(5, rng);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let theta = period * demand.utilization();
        if !(theta > 1e-9 && theta < period) {
            return;
        }
        let pattern = pattern_from(period, theta, &offsets);
        let supply = RegulatedSupply::new(period, pattern).expect("generated patterns are valid");
        assert!(
            (supply.budget() - theta).abs() < 1e-6,
            "pattern budget {} != {theta}",
            supply.budget()
        );
        assert!(
            supply.can_schedule(&demand),
            "theorem 2 violated: U = {}, Π = {period}",
            demand.utilization()
        );
    });
}

/// The converse sanity check: a budget strictly below Π·U can never
/// schedule the demand (utilization bound).
#[test]
fn under_budget_never_schedules() {
    check(128, |rng| {
        let demand = arb_harmonic(0.9, rng);
        let shrink = rng.gen_range(0.5f64..0.98);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let theta = period * demand.utilization() * shrink;
        if theta <= 1e-9 {
            return;
        }
        let supply = RegulatedSupply::latest(period, theta).expect("valid");
        assert!(!supply.can_schedule(&demand));
    });
}

/// Theorem 2's Θ is *tight* for the worst (latest) pattern: the
/// exact budget works, 2% less does not (for non-degenerate
/// utilizations).
#[test]
fn theorem_2_budget_is_tight_at_the_worst_pattern() {
    check(128, |rng| {
        let demand = arb_harmonic(0.9, rng);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let u = demand.utilization();
        if u <= 0.05 {
            return;
        }
        let exact = RegulatedSupply::latest(period, period * u).expect("valid");
        assert!(exact.can_schedule(&demand));
        let trimmed = RegulatedSupply::latest(period, period * u * 0.98).expect("valid");
        assert!(!trimmed.can_schedule(&demand));
    });
}

/// The regulated sbf always dominates the classical periodic
/// resource sbf for the same (Π, Θ): well-regulation only adds
/// information.
#[test]
fn regulated_sbf_dominates_classical() {
    check(128, |rng| {
        use vc2m_sched::sbf::PeriodicResource;
        let period = rng.gen_range(2.0f64..50.0);
        let budget_frac = rng.gen_range(0.05f64..0.95);
        let offsets = arb_offsets(4, rng);
        let n = rng.gen_range(1usize..20);
        let t_samples: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..300.0)).collect();
        let theta = period * budget_frac;
        let pattern = pattern_from(period, theta, &offsets);
        let regulated = RegulatedSupply::new(period, pattern).expect("valid");
        let classical = PeriodicResource::new(period, theta);
        for &t in &t_samples {
            assert!(
                classical.sbf(t) <= regulated.sbf(t) + 1e-6,
                "classical exceeded regulated at t={t}"
            );
        }
    });
}
