//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate under the hypervisor simulator
//! (`vc2m-hypervisor`): a time-ordered event queue with deterministic
//! tie-breaking, plus small utilities — an online min/avg/max
//! accumulator (the statistic reported by the paper's overhead Tables 1
//! and 2) and a bounded trace recorder.
//!
//! Determinism matters because the paper's scheduling semantics depend
//! on a *deterministic tie-breaking rule* for simultaneous events
//! (Section 3.2: VCPUs with equal deadlines are ordered by period, then
//! by index). The engine guarantees that events at the same instant are
//! delivered in a stable order: by the caller-supplied priority key,
//! then by insertion order.
//!
//! # Example
//!
//! ```
//! use vc2m_simcore::EventQueue;
//! use vc2m_model::SimTime;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_ms(2.0), 0, "later");
//! q.push(SimTime::from_ms(1.0), 0, "sooner");
//! let (t, _, event) = q.pop().expect("queue is non-empty");
//! assert_eq!((t.as_ms(), event), (1.0, "sooner"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
mod queue;
mod stats;
mod trace;

pub use metrics::MetricsRegistry;
pub use queue::EventQueue;
pub use stats::{MinAvgMax, SampleSet};
pub use trace::{TraceBuffer, TraceRecord};
