//! A typed metrics registry: named counters, gauges and histograms.
//!
//! The registry is the simulator-side half of the observability layer
//! (the trace buffer is the other): components that already *have*
//! deterministic counters — the hypervisor simulator's event loop, the
//! bandwidth regulator, the analysis interface cache — export them
//! into one [`MetricsRegistry`] under stable dotted names
//! (`sim.jobs.completed`, `membw.regulator.throttles`,
//! `analysis.cache.hits`), and a single renderer turns the registry
//! into schema-stable JSON (see `vc2m_bench::timing::metrics_json`).
//!
//! Three metric kinds cover everything the reproduction measures:
//!
//! * **counters** — monotone `u64` event counts;
//! * **gauges** — point-in-time `f64` readings (a busy-time total, a
//!   hit rate);
//! * **histograms** — [`MinAvgMax`] sample summaries (response times,
//!   handler overheads).
//!
//! Names are held in [`BTreeMap`]s, so iteration — and therefore any
//! rendered export — is sorted and reproducible run to run. Exporting
//! is strictly *pull*: components mutate their own plain fields on hot
//! paths and copy them into a registry only when a report is built, so
//! an unused registry costs nothing.

use crate::MinAvgMax;
use std::collections::BTreeMap;

/// A named collection of counters, gauges and histogram summaries.
///
/// # Example
///
/// ```
/// use vc2m_simcore::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("sim.jobs.completed", 41);
/// m.counter_add("sim.jobs.completed", 1);
/// m.gauge_set("sim.core0.busy_ms", 400.0);
/// m.observe("sim.response_ms", 2.5);
/// assert_eq!(m.counter("sim.jobs.completed"), Some(42));
/// assert_eq!(m.histogram("sim.response_ms").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, MinAvgMax>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    /// Sets the gauge `name` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — exports would render it as
    /// `null` and silently lose the reading.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        assert!(value.is_finite(), "gauge {name} must be finite, got {value}");
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite (see [`MinAvgMax::record`]).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Merges an already-accumulated summary into the histogram `name`.
    pub fn observe_summary(&mut self, name: &str, summary: &MinAvgMax) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(summary);
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&MinAvgMax> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &MinAvgMax)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether the registry holds no metric at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`, **order-independently**: counters
    /// add, histograms merge (count-weighted, commutative), and
    /// same-named gauges fold by `f64::max`. The max fold (rather than
    /// last-writer-wins) makes `merge(a, b) == merge(b, a)`, which is
    /// what lets sharded runs merge per-shard registries in any
    /// completion order and still render byte-identical exports —
    /// gauges that genuinely differ per shard (a per-core busy time, a
    /// high-water mark) resolve to the same value regardless of which
    /// shard finished first.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.entry_counter(name) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|g| *g = g.max(*value))
                .or_insert(*value);
        }
        for (name, summary) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(summary);
        }
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 1);
        m.counter_add("a", 2);
        m.counter_add("b", 0);
        assert_eq!(m.counter("a"), Some(3));
        assert_eq!(m.counter("b"), Some(0));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 1);
        m.counter_add("m.middle", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("rate", 0.5);
        m.gauge_set("rate", 0.75);
        assert_eq!(m.gauge("rate"), Some(0.75));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_gauge_rejected() {
        MetricsRegistry::new().gauge_set("bad", f64::NAN);
    }

    #[test]
    fn histograms_record_and_merge() {
        let mut m = MetricsRegistry::new();
        m.observe("r", 1.0);
        m.observe("r", 3.0);
        let pre: MinAvgMax = [5.0].into_iter().collect();
        m.observe_summary("r", &pre);
        let h = m.histogram("r").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn merge_folds_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 7);
        b.gauge_set("g", 9.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.counter("only_b"), Some(7));
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().max(), Some(3.0));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 5);
        a.counter_add("only_a", 1);
        a.gauge_set("g.shared", 4.5);
        a.gauge_set("g.only_a", -1.0);
        a.observe("h", 2.0);
        a.observe("h", 8.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 11);
        b.gauge_set("g.shared", 1.25);
        b.gauge_set("g.only_b", 0.5);
        b.observe("h", 5.0);
        b.observe("h.only_b", 3.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge(a, b) must equal merge(b, a)");
        // The shared gauge folded by max, not last-writer-wins.
        assert_eq!(ab.gauge("g.shared"), Some(4.5));
        assert_eq!(ab.gauge("g.only_a"), Some(-1.0));
        assert_eq!(ab.counter("c"), Some(16));
        assert_eq!(ab.histogram("h").unwrap().count(), 3);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(m.counters().count(), 0);
        let mut m2 = MetricsRegistry::new();
        m2.observe("x", 0.0);
        assert!(!m2.is_empty());
    }
}
