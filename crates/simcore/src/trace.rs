//! Bounded trace recorder for simulator debugging and probing.

use std::collections::VecDeque;
use std::fmt;
use vc2m_model::SimTime;

/// One trace record: a timestamp and a caller-defined label/payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord<T> {
    /// Simulated time at which the record was emitted.
    pub time: SimTime,
    /// The recorded payload (e.g. a scheduler event description).
    pub payload: T,
}

impl<T: fmt::Display> fmt::Display for TraceRecord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.time, self.payload)
    }
}

/// A bounded ring buffer of trace records.
///
/// The hypervisor simulator can emit hundreds of thousands of events
/// per simulated second; the buffer keeps only the most recent
/// `capacity` records so that tracing can stay enabled without
/// unbounded memory growth. A capacity of 0 disables recording
/// entirely (all pushes are dropped at negligible cost).
#[derive(Debug, Clone)]
pub struct TraceBuffer<T> {
    records: VecDeque<TraceRecord<T>>,
    capacity: usize,
    dropped: u64,
}

impl<T> TraceBuffer<T> {
    /// Creates a buffer holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Creates a disabled buffer that records nothing.
    pub fn disabled() -> Self {
        TraceBuffer::with_capacity(0)
    }

    /// Whether the buffer records anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record, evicting the oldest if the buffer is full.
    pub fn push(&mut self, time: SimTime, payload: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { time, payload });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records dropped (evicted or discarded while disabled).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord<T>> {
        self.records.iter()
    }

    /// Clears all retained records (the drop counter is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl<T> Default for TraceBuffer<T> {
    /// A default buffer retains 4096 records.
    fn default() -> Self {
        TraceBuffer::with_capacity(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut buf = TraceBuffer::with_capacity(10);
        buf.push(SimTime::from_ms(1.0), "a");
        buf.push(SimTime::from_ms(2.0), "b");
        let labels: Vec<&str> = buf.iter().map(|r| r.payload).collect();
        assert_eq!(labels, vec!["a", "b"]);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut buf = TraceBuffer::with_capacity(2);
        buf.push(SimTime::from_ms(1.0), 1);
        buf.push(SimTime::from_ms(2.0), 2);
        buf.push(SimTime::from_ms(3.0), 3);
        let kept: Vec<i32> = buf.iter().map(|r| r.payload).collect();
        assert_eq!(kept, vec![2, 3]);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn disabled_buffer_drops_everything() {
        let mut buf = TraceBuffer::disabled();
        assert!(!buf.is_enabled());
        buf.push(SimTime::ZERO, "x");
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut buf = TraceBuffer::with_capacity(1);
        buf.push(SimTime::ZERO, 1);
        buf.push(SimTime::ZERO, 2);
        assert_eq!(buf.dropped(), 1);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn dropped_accumulates_across_sustained_overflow() {
        let mut buf = TraceBuffer::with_capacity(3);
        for i in 0..100 {
            buf.push(SimTime::from_ms(i as f64), i);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 97);
        let kept: Vec<i32> = buf.iter().map(|r| r.payload).collect();
        assert_eq!(kept, vec![97, 98, 99]);
    }

    #[test]
    fn zero_capacity_buffer_counts_every_push() {
        let mut buf = TraceBuffer::with_capacity(0);
        assert!(!buf.is_enabled());
        for i in 0..50 {
            buf.push(SimTime::ZERO, i);
        }
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.dropped(), 50);
        assert_eq!(buf.iter().count(), 0);
    }

    #[test]
    fn clear_then_overflow_keeps_accumulating_drops() {
        let mut buf = TraceBuffer::with_capacity(2);
        for i in 0..5 {
            buf.push(SimTime::ZERO, i);
        }
        assert_eq!(buf.dropped(), 3);
        buf.clear();
        // The ring is empty again: the next pushes fit, then evict.
        for i in 0..4 {
            buf.push(SimTime::ZERO, i);
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 5);
    }

    #[test]
    fn record_display() {
        let rec = TraceRecord {
            time: SimTime::from_ms(1.5),
            payload: "ctx-switch",
        };
        let s = rec.to_string();
        assert!(s.contains("ctx-switch"));
        assert!(s.contains("1.5"));
    }
}
