//! Online min/avg/max accumulator.

use std::fmt;

/// Streaming minimum / average / maximum of a sequence of samples —
/// the statistic the paper reports for every overhead measurement
/// (Tables 1 and 2).
///
/// # Example
///
/// ```
/// use vc2m_simcore::MinAvgMax;
///
/// let mut stats = MinAvgMax::new();
/// for v in [0.33, 0.37, 1.15] {
///     stats.record(v);
/// }
/// assert_eq!(stats.min(), Some(0.33));
/// assert_eq!(stats.max(), Some(1.15));
/// assert_eq!(stats.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinAvgMax {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Same as [`MinAvgMax::new`]. (A derived `Default` would zero the
/// min/max sentinels, so any accumulator built with `or_default()`
/// would report a spurious minimum of 0 — the bug that once pinned
/// every handler-overhead minimum in the probe tables to 0.)
impl Default for MinAvgMax {
    fn default() -> Self {
        MinAvgMax::new()
    }
}

impl MinAvgMax {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MinAvgMax {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — a NaN would silently poison
    /// every later statistic.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "sample must be finite, got {value}");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if no samples were recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if no samples were recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the samples, or `None` if no samples were recorded.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another accumulator into this one, as if all its samples
    /// had been recorded here.
    pub fn merge(&mut self, other: &MinAvgMax) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for MinAvgMax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.avg(), self.max()) {
            (Some(min), Some(avg), Some(max)) => {
                write!(f, "min {min:.2} | avg {avg:.2} | max {max:.2}")
            }
            _ => write!(f, "no samples"),
        }
    }
}

impl FromIterator<f64> for MinAvgMax {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = MinAvgMax::new();
        for v in iter {
            acc.record(v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_reports_none() {
        let s = MinAvgMax::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.avg(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn table1_style_stats() {
        let s: MinAvgMax = [0.33, 0.37, 1.15].into_iter().collect();
        assert_eq!(s.min(), Some(0.33));
        assert_eq!(s.max(), Some(1.15));
        let avg = s.avg().unwrap();
        assert!((avg - (0.33 + 0.37 + 1.15) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let mut s = MinAvgMax::new();
        s.record(5.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.avg(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn negative_samples_are_fine() {
        let s: MinAvgMax = [-1.0, 1.0].into_iter().collect();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.avg(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_rejected() {
        MinAvgMax::new().record(f64::NAN);
    }

    #[test]
    fn default_is_a_proper_empty_accumulator() {
        // Regression: the derived Default zeroed the sentinels, so the
        // first positive sample recorded into an `or_default()` entry
        // reported min 0 instead of the sample.
        let mut s = MinAvgMax::default();
        assert_eq!(s, MinAvgMax::new());
        s.record(2.5);
        assert_eq!(s.min(), Some(2.5));
        assert_eq!(s.max(), Some(2.5));
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a: MinAvgMax = [1.0, 2.0].into_iter().collect();
        let b: MinAvgMax = [0.5, 4.0].into_iter().collect();
        a.merge(&b);
        let combined: MinAvgMax = [1.0, 2.0, 0.5, 4.0].into_iter().collect();
        assert_eq!(a, combined);

        let mut c = MinAvgMax::new();
        c.merge(&combined);
        assert_eq!(c, combined);
        let mut d = combined.clone();
        d.merge(&MinAvgMax::new());
        assert_eq!(d, combined);
    }

    #[test]
    fn display_formats_three_fields() {
        let s: MinAvgMax = [1.0, 3.0].into_iter().collect();
        assert_eq!(s.to_string(), "min 1.00 | avg 2.00 | max 3.00");
    }
}

/// A sample set retaining every value, for exact quantiles.
///
/// [`MinAvgMax`] is the right tool for hot paths; `SampleSet` is for
/// offline analysis where tail percentiles matter (e.g. p99 response
/// times). Samples are stored unsorted and sorted lazily on the first
/// quantile query after an insert.
///
/// # Example
///
/// ```
/// use vc2m_simcore::SampleSet;
///
/// let mut s = SampleSet::new();
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// assert_eq!(s.quantile(0.99), Some(99.0));
/// assert_eq!(s.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "sample must be finite, got {value}");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (nearest-rank), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Summary of the samples as a [`MinAvgMax`].
    pub fn summary(&self) -> MinAvgMax {
        self.samples.iter().copied().collect()
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

#[cfg(test)]
mod sample_set_tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut s: SampleSet = (1..=10).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.1), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(0.91), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
    }

    #[test]
    fn empty_set_has_no_quantiles() {
        let mut s = SampleSet::new();
        assert_eq!(s.quantile(0.5), None);
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_inserts_and_queries() {
        let mut s = SampleSet::new();
        s.record(5.0);
        assert_eq!(s.quantile(0.5), Some(5.0));
        s.record(1.0);
        assert_eq!(s.quantile(0.5), Some(1.0));
        s.record(9.0);
        assert_eq!(s.quantile(1.0), Some(9.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn summary_matches_direct_accumulation() {
        let values = [3.0, 1.0, 2.0];
        let s: SampleSet = values.into_iter().collect();
        let direct: MinAvgMax = values.into_iter().collect();
        assert_eq!(s.summary(), direct);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_sample_panics() {
        SampleSet::new().record(f64::INFINITY);
    }
}
