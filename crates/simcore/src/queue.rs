//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vc2m_model::SimTime;

/// A pending event: fire time, caller-supplied priority key (smaller
/// fires first among simultaneous events), caller-supplied canonical
/// key (content-derived; orders equal-priority events independently of
/// insertion history), insertion sequence number, and the payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    priority: u64,
    key: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Entry<E> {
    fn cmp_key(&self) -> (SimTime, u64, u64, u64) {
        (self.time, self.priority, self.key, self.seq)
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events that share a fire time are delivered in ascending `priority`
/// order; among equal priorities in ascending canonical `key` order
/// (see [`EventQueue::push_keyed`]); and among equal keys in insertion
/// order. Popping never goes backwards in time relative to previously
/// popped events; the queue tracks the *current time* (time of the
/// last popped event) and rejects pushes into the past, which would
/// indicate a causality bug in the caller.
///
/// The canonical key exists for *sharded* simulation: a key derived
/// from event **content** (e.g. the target core or task index) makes
/// the delivery order at simultaneous instants reconstructible from
/// independently-advancing sub-queues, which a history-dependent
/// insertion sequence number is not. Callers that never shard may use
/// [`EventQueue::push`] (key 0) and rely on insertion order alone.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `time` with tie-break `priority`
    /// (smaller fires first among simultaneous events) and canonical
    /// key 0 (simultaneous equal-priority events fire in insertion
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the queue's current time:
    /// scheduling into the past is always a bug in a causal simulation.
    pub fn push(&mut self, time: SimTime, priority: u64, payload: E) {
        self.push_keyed(time, priority, 0, payload);
    }

    /// Schedules `payload` at `time` with tie-break `priority` and a
    /// content-derived canonical `key`: among simultaneous
    /// equal-priority events, smaller keys fire first, and equal keys
    /// fire in insertion order. See the type docs for why sharded
    /// simulation needs content-based keys.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the queue's current time.
    pub fn push_keyed(&mut self, time: SimTime, priority: u64, key: u64, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            priority,
            key,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event as
    /// `(time, priority, payload)`, advancing the queue's current time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.pop_keyed().map(|(time, priority, _, payload)| (time, priority, payload))
    }

    /// Removes and returns the earliest event as
    /// `(time, priority, key, payload)`, advancing the queue's current
    /// time. Sharded simulation uses the key to tag trace records for
    /// the deterministic cross-group merge.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, u64, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.priority, entry.key, entry.payload))
    }

    /// The fire time of the earliest pending event, if any, without
    /// removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The `(time, priority, key)` ordering prefix of the earliest
    /// pending event, if any, without removing it. Sharded simulation
    /// compares this against a barrier bound to decide whether the
    /// next event fires before or after a merge point.
    pub fn peek_order(&self) -> Option<(SimTime, u64, u64)> {
        self.heap.peek().map(|e| (e.time, e.priority, e.key))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(3.0), 0, 'c');
        q.push(SimTime::from_ms(1.0), 0, 'a');
        q.push(SimTime::from_ms(2.0), 0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_obey_priority_then_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.push(t, 5, "low-prio-first-inserted");
        q.push(t, 1, "high-prio");
        q.push(t, 5, "low-prio-second-inserted");
        assert_eq!(q.pop().unwrap().2, "high-prio");
        assert_eq!(q.pop().unwrap().2, "low-prio-first-inserted");
        assert_eq!(q.pop().unwrap().2, "low-prio-second-inserted");
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ms(2.0), 0, ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(2.0));
        // Scheduling at the current instant is allowed (zero-delay events).
        q.push(SimTime::from_ms(2.0), 0, ());
        assert_eq!(q.pop().unwrap().0, SimTime::from_ms(2.0));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(2.0), 0, ());
        q.pop();
        q.push(SimTime::from_ms(1.0), 0, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ms(4.0), 0, 7);
        q.push(SimTime::from_ms(3.0), 0, 8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(3.0)));
        assert_eq!(q.len(), 2, "peek must not consume");
    }

    #[test]
    fn canonical_key_orders_equal_priority_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.push_keyed(t, 2, 9, "key9");
        q.push_keyed(t, 2, 1, "key1");
        q.push_keyed(t, 2, 5, "key5");
        q.push_keyed(t, 1, 7, "prio-wins");
        assert_eq!(q.pop().unwrap().2, "prio-wins");
        assert_eq!(q.pop().unwrap().2, "key1");
        assert_eq!(q.pop().unwrap().2, "key5");
        assert_eq!(q.pop().unwrap().2, "key9");
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.push_keyed(t, 0, 3, "first");
        q.push_keyed(t, 0, 3, "second");
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "second");
    }

    #[test]
    fn unkeyed_push_uses_key_zero() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.push_keyed(t, 0, 1, "keyed");
        q.push(t, 0, "unkeyed-later-insertion");
        assert_eq!(q.pop().unwrap().2, "unkeyed-later-insertion");
        assert_eq!(q.pop().unwrap().2, "keyed");
    }

    #[test]
    fn peek_order_exposes_ordering_prefix() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_order(), None);
        q.push_keyed(SimTime::from_ms(2.0), 3, 7, ());
        q.push_keyed(SimTime::from_ms(1.0), 4, 9, ());
        assert_eq!(q.peek_order(), Some((SimTime::from_ms(1.0), 4, 9)));
        assert_eq!(q.len(), 2, "peek must not consume");
    }

    #[test]
    fn cloned_queue_pops_identically() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.push_keyed(SimTime((i * 3) % 7), i % 2, i % 5, i);
        }
        let mut c = q.clone();
        loop {
            let (a, b) = (q.pop(), c.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                q.push(SimTime((i * 7) % 13), 0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
