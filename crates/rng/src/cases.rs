//! Seeded case-generation harness: the in-tree `proptest` substitute.
//!
//! A *check* runs a test closure over many pseudo-random cases. Each
//! case receives its own [`DetRng`] whose seed derives from a fixed
//! base seed and the case index, so
//!
//! * the full suite is deterministic — CI and laptops see the same
//!   cases;
//! * a failing case panics with its **case seed**, and
//!   `VC2M_CASE_REPLAY=<seed>` reruns exactly that case in isolation;
//! * `VC2M_CASES=<n>` scales every check's case count (stress runs),
//!   `VC2M_CASE_SEED=<seed>` moves the whole suite to a new region of
//!   the seed space.
//!
//! # Example
//!
//! ```
//! use vc2m_rng::{cases::check, Rng};
//!
//! check(64, |rng| {
//!     let x = rng.gen_range(0u64..1000);
//!     let y = rng.gen_range(0u64..1000);
//!     assert!(x + y >= x, "addition of bounded naturals never wraps");
//! });
//! ```

use crate::{DetRng, Rng, SplitMix64};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The default base seed every check derives its cases from.
///
/// Changing this constant re-rolls every property test in the
/// workspace; keep it stable so failures stay reproducible across
/// commits.
pub const DEFAULT_BASE_SEED: u64 = 0xDAC_2019;

/// Runs `f` over `cases` deterministic pseudo-random cases.
///
/// Each case gets a fresh [`DetRng`]; generate the case's inputs from
/// it and assert the property. A case that panics aborts the check
/// with a message naming the case index and seed.
///
/// Environment overrides:
///
/// * `VC2M_CASE_REPLAY=<seed>` — run only the case with that seed
///   (decimal or `0x`-prefixed hex), e.g. the seed a failure reported;
/// * `VC2M_CASES=<n>` — override the case count;
/// * `VC2M_CASE_SEED=<seed>` — override the base seed.
///
/// # Panics
///
/// Panics (re-raising the case's panic) when a case fails, after
/// printing the replay instructions to stderr.
pub fn check<F: Fn(&mut DetRng)>(cases: u64, f: F) {
    if let Some(seed) = env_u64("VC2M_CASE_REPLAY") {
        eprintln!("vc2m-rng: replaying single case with seed {seed:#x}");
        f(&mut DetRng::seed_from_u64(seed));
        return;
    }
    let base = env_u64("VC2M_CASE_SEED").unwrap_or(DEFAULT_BASE_SEED);
    let cases = env_u64("VC2M_CASES").unwrap_or(cases);
    // Per-case seeds come from a SplitMix64 stream over the base seed:
    // consecutive indices yield decorrelated seeds, and the mapping is
    // stable under changes to the case count.
    let mut seeder = SplitMix64::new(base);
    for case in 0..cases {
        let case_seed = seeder.next_u64();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            f(&mut DetRng::seed_from_u64(case_seed))
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "vc2m-rng: case {case}/{cases} FAILED (case seed {case_seed:#x}); \
                 replay just this case with VC2M_CASE_REPLAY={case_seed:#x}"
            );
            resume_unwind(payload);
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_run_with_distinct_seeds() {
        use std::cell::RefCell;
        let seen: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        check(16, |rng| {
            seen.borrow_mut().push(rng.next_u64());
        });
        let mut firsts = seen.into_inner();
        assert_eq!(firsts.len(), 16);
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 16, "case seeds must differ");
    }

    #[test]
    fn check_is_deterministic() {
        use std::cell::RefCell;
        let collect = || {
            let seen: RefCell<Vec<u64>> = RefCell::new(Vec::new());
            check(8, |rng| seen.borrow_mut().push(rng.next_u64()));
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failing_case_propagates_panic() {
        let result = catch_unwind(|| {
            check(4, |rng| {
                let _ = rng.next_u64();
                panic!("intentional");
            })
        });
        assert!(result.is_err());
    }
}
