//! In-tree deterministic randomness for the vC²M workspace.
//!
//! The whole repository must build and test **offline**: no registry
//! crates, no network. This crate replaces `rand`/`rand_chacha` with a
//! minimal, fully deterministic substitute, and `proptest` with a
//! seeded case-generation harness ([`cases`]).
//!
//! * [`Rng`] — the trait every randomized algorithm in the workspace
//!   is generic over: raw `u64`s, uniform integer/float ranges,
//!   Bernoulli draws and Fisher–Yates shuffles.
//! * [`DetRng`] — the one concrete generator: xoshiro256++ seeded via
//!   SplitMix64 from a single `u64`. Same seed ⇒ same stream, on every
//!   platform, forever (golden-value tests pin the stream).
//! * [`cases`] — the property-test harness: a fixed base seed fans out
//!   into per-case seeds; a panicking case reports its seed so it can
//!   be replayed in isolation.
//!
//! # Determinism policy
//!
//! Every experiment, workload and allocation in this workspace is a
//! pure function of its inputs and one `u64` seed. Nothing reads the
//! OS entropy pool or the clock; reruns of any figure, table or test
//! reproduce bit-identical results.
//!
//! # Example
//!
//! ```
//! use vc2m_rng::{DetRng, Rng};
//!
//! let mut rng = DetRng::seed_from_u64(42);
//! let die = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&die));
//! let p = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&p));
//! let mut order = vec![0, 1, 2, 3];
//! rng.shuffle(&mut order);
//! assert_eq!(DetRng::seed_from_u64(7).next_u64(), DetRng::seed_from_u64(7).next_u64());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cases;

use std::ops::{Range, RangeInclusive};

/// A source of deterministic pseudo-randomness.
///
/// Only [`Rng::next_u64`] is required; everything else derives from
/// it, so any implementor produces consistent distributions.
pub trait Rng {
    /// The next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 uniformly random bits (upper half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits scaled by 2^-53: dense, unbiased, never 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        self.gen_f64() < p
    }

    /// A uniform draw from `range` (integer or float, half-open or
    /// inclusive — see [`SampleRange`]).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, not finite).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Shuffles `slice` in place (Fisher–Yates, unbiased).
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform integer in `[0, span)` by Lemire's widening-multiply
/// method with rejection: exactly uniform, no modulo bias.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low < span {
            // Reject the short leading zone so every value keeps an
            // equal number of preimages.
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize);

fn f64_range_sample<R: Rng + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
    // Lerp keeps the draw inside [start, end] even under rounding.
    let u = rng.gen_f64();
    start * (1.0 - u) + end * u
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "invalid f64 range {}..{}",
            self.start,
            self.end
        );
        let v = f64_range_sample(rng, self.start, self.end);
        // gen_f64() < 1 keeps v < end mathematically; guard the
        // half-open contract against upward rounding anyway.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start.is_finite() && end.is_finite() && start <= end,
            "invalid f64 range {start}..={end}"
        );
        f64_range_sample(rng, start, end)
    }
}

/// SplitMix64: the seed expander recommended by the xoshiro authors.
///
/// Used to turn one `u64` into the four words of [`DetRng`] state (and
/// by the [`cases`] harness to derive per-case seeds). Passes through
/// every 64-bit input exactly once per period, so distinct seeds give
/// uncorrelated xoshiro states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's deterministic generator: **xoshiro256++**
/// (Blackman & Vigna), seeded from a single `u64` via [`SplitMix64`].
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; more than
/// enough statistical quality for workload synthesis, k-means
/// initialization and measurement-noise modeling, at a fraction of the
/// cost of a cryptographic stream cipher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // SplitMix64 output is never all-zero across four consecutive
        // draws, but keep the generator total anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "the all-zero state is forbidden");
        DetRng { s }
    }
}

impl Rng for DetRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // The xoshiro256++ reference implementation (Blackman & Vigna,
        // prng.di.unimi.it) produces this stream from state [1, 2, 3, 4].
        let mut rng = DetRng::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "draw {i}");
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 reference stream for seed 1234567
        // (cross-checked against the public-domain C implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn seeding_golden_stream() {
        // Pins the full SplitMix64 → xoshiro256++ seeding path: these
        // values must never change, or every seeded experiment in the
        // workspace silently re-rolls.
        let mut rng = DetRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 15021278609987233951);
        assert_eq!(rng.next_u64(), 5881210131331364753);
        assert_eq!(rng.next_u64(), 18149643915985481100);
        assert_eq!(rng.next_u64(), 12933668939759105464);
        let mut rng = DetRng::seed_from_u64(42);
        assert!((rng.gen_f64() - 0.814_305_145_122_909_9).abs() < 1e-16);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(0xDAC_2019);
        let mut b = DetRng::seed_from_u64(0xDAC_2019);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(0xDAC_2020);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut clone = rng.clone();
        fn take_generic<R: Rng>(mut r: R) -> u64 {
            r.next_u64()
        }
        assert_eq!(take_generic(&mut rng), clone.next_u64());
    }

    #[test]
    fn lemire_rejection_is_exactly_uniform_on_tiny_spans() {
        // With span 3, over many draws each value appears ~1/3 of the
        // time; the rejection step removes the modulo bias entirely,
        // but here we only check coverage and range.
        let mut rng = DetRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[uniform_u64(&mut rng, 3) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!(c > 800, "value {v} drawn only {c}/3000 times");
        }
    }

    #[test]
    fn inclusive_integer_range_hits_both_ends() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(1u32..=6) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = DetRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_integer_range_panics() {
        let mut rng = DetRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_bernoulli_panics() {
        let mut rng = DetRng::seed_from_u64(1);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = DetRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
