//! Property-based tests for the bandwidth-regulation substrate,
//! driven by the in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_membw::{
    budget_requests_per_period, BwRegulator, PerfCounter, RegulatorConfig, ThrottleAction,
};
use vc2m_rng::{cases::check, Rng};

#[test]
fn counter_overflows_exactly_at_budget() {
    check(64, |rng| {
        let budget = rng.gen_range(1u64..1_000_000);
        let n = rng.gen_range(1usize..50);
        let chunks: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..10_000)).collect();
        let mut counter = PerfCounter::preset(budget);
        let mut consumed = 0u64;
        let mut fired = false;
        for chunk in chunks {
            let fired_now = counter.add(chunk);
            let before = consumed;
            consumed += chunk;
            if fired_now {
                // The overflow fires on the call that crosses the
                // budget boundary, and only once.
                assert!(before < budget && consumed >= budget);
                assert!(!fired, "overflow fired twice");
                fired = true;
            }
        }
        assert_eq!(fired, consumed >= budget);
        assert_eq!(counter.has_overflowed(), consumed >= budget);
    });
}

#[test]
fn regulator_guarantees_budget_every_period() {
    check(64, |rng| {
        let budget = rng.gen_range(1u64..100_000);
        let periods = rng.gen_range(1usize..20);
        let mut r = BwRegulator::new(RegulatorConfig::new(1, 1.0).unwrap());
        r.set_budget(0, budget).unwrap();
        for _ in 0..periods {
            // The core can always issue exactly its budget without an
            // early throttle...
            if budget > 1 {
                assert_eq!(r.record_requests(0, budget - 1).unwrap(), ThrottleAction::None);
                assert_eq!(r.record_requests(0, 1).unwrap(), ThrottleAction::Throttle);
            } else {
                assert_eq!(r.record_requests(0, 1).unwrap(), ThrottleAction::Throttle);
            }
            // ...and never more.
            assert_eq!(
                r.record_requests(0, 1).unwrap(),
                ThrottleAction::AlreadyThrottled
            );
            let woken = r.replenish_all();
            assert_eq!(woken, vec![0]);
            assert!(!r.is_throttled(0));
        }
        assert_eq!(r.total_throttles(), periods as u64);
    });
}

#[test]
fn throttled_mask_matches_throttled_cores() {
    check(64, |rng| {
        let cores = rng.gen_range(1usize..16);
        let n = rng.gen_range(1usize..16);
        let overloads: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let mut r = BwRegulator::new(RegulatorConfig::new(cores, 1.0).unwrap());
        for core in 0..cores {
            r.set_budget(core, 100).unwrap();
        }
        for (core, &overload) in overloads.iter().take(cores).enumerate() {
            if overload {
                r.record_requests(core, 200).unwrap();
            }
        }
        for core in 0..cores {
            let expected = overloads.get(core).copied().unwrap_or(false);
            assert_eq!(r.is_throttled(core), expected);
            assert_eq!(r.throttled_mask() & (1 << core) != 0, expected);
        }
    });
}

#[test]
fn budget_conversion_is_monotone_and_linear_in_partitions() {
    check(64, |rng| {
        let partitions = rng.gen_range(1u32..64);
        let mbps = rng.gen_range(1u32..500);
        let period_ms = rng.gen_range(0.1f64..10.0);
        let one = budget_requests_per_period(1, mbps, period_ms);
        let many = budget_requests_per_period(partitions, mbps, period_ms);
        // Monotone and (up to flooring) linear.
        assert!(many >= one);
        let linear = one * u64::from(partitions);
        assert!(many >= linear.saturating_sub(u64::from(partitions)));
        assert!(many <= linear + u64::from(partitions));
    });
}
