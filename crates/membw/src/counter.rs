//! Preset overflow performance counters.

use std::fmt;

/// Width of the simulated performance counter, in bits. Intel
/// general-purpose PMCs are 48 bits wide.
pub const COUNTER_BITS: u32 = 48;

const COUNTER_MODULUS: u64 = 1 << COUNTER_BITS;

/// A simulated hardware performance counter configured to count memory
/// requests (LLC misses), preset so that it overflows exactly when a
/// budget is exhausted.
///
/// The setup component of the regulator presets the counter to
/// `2⁴⁸ − budget`; each memory request increments it; wrapping past
/// `2⁴⁸` raises the overflow bit (which on hardware is latched in the
/// global overflow status register and delivered via the LAPIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounter {
    value: u64,
    overflowed: bool,
}

impl PerfCounter {
    /// Creates a counter preset for `budget` remaining events.
    ///
    /// A zero budget creates a counter that overflows on the first
    /// event.
    pub fn preset(budget: u64) -> Self {
        let budget = budget.min(COUNTER_MODULUS - 1);
        PerfCounter {
            value: COUNTER_MODULUS - budget,
            overflowed: budget == 0,
        }
    }

    /// Raw counter value (in `[0, 2⁴⁸)` once wrapped).
    pub fn value(&self) -> u64 {
        self.value % COUNTER_MODULUS
    }

    /// Events remaining before overflow (zero if already overflowed).
    pub fn remaining(&self) -> u64 {
        if self.overflowed {
            0
        } else {
            COUNTER_MODULUS - self.value
        }
    }

    /// Whether the overflow bit is set.
    pub fn has_overflowed(&self) -> bool {
        self.overflowed
    }

    /// Counts `events` occurrences. Returns `true` if this call crossed
    /// the overflow boundary (i.e. the overflow interrupt fires now —
    /// not on later calls, matching the latched status register which
    /// must be cleared by the handler).
    pub fn add(&mut self, events: u64) -> bool {
        if self.overflowed {
            self.value = (self.value + events) % COUNTER_MODULUS;
            return false;
        }
        let remaining = COUNTER_MODULUS - self.value;
        if events >= remaining {
            self.value = (self.value + events) % COUNTER_MODULUS;
            self.overflowed = true;
            true
        } else {
            self.value += events;
            false
        }
    }

    /// Clears the overflow status and presets for a fresh `budget`
    /// (the refiller path: clear the overflow status register, preset
    /// the counter).
    pub fn reset(&mut self, budget: u64) {
        *self = PerfCounter::preset(budget);
    }
}

impl fmt::Display for PerfCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PMC(remaining={}, overflowed={})",
            self.remaining(),
            self.overflowed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_leaves_budget_headroom() {
        let c = PerfCounter::preset(100);
        assert_eq!(c.remaining(), 100);
        assert!(!c.has_overflowed());
    }

    #[test]
    fn overflow_fires_exactly_at_budget() {
        let mut c = PerfCounter::preset(10);
        assert!(!c.add(9));
        assert_eq!(c.remaining(), 1);
        assert!(c.add(1), "10th event must overflow");
        assert!(c.has_overflowed());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn overflow_reported_once() {
        let mut c = PerfCounter::preset(1);
        assert!(c.add(1));
        assert!(!c.add(100), "latched overflow must not re-fire");
        assert!(c.has_overflowed());
    }

    #[test]
    fn bulk_overshoot_overflows() {
        let mut c = PerfCounter::preset(10);
        assert!(c.add(25));
        // Value wrapped: 2^48 - 10 + 25 ≡ 15 (mod 2^48).
        assert_eq!(c.value(), 15);
    }

    #[test]
    fn zero_budget_overflows_immediately() {
        let c = PerfCounter::preset(0);
        assert!(c.has_overflowed());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn reset_clears_overflow() {
        let mut c = PerfCounter::preset(1);
        c.add(5);
        c.reset(50);
        assert!(!c.has_overflowed());
        assert_eq!(c.remaining(), 50);
    }

    #[test]
    fn display_mentions_state() {
        let c = PerfCounter::preset(3);
        assert!(c.to_string().contains("remaining=3"));
    }
}
