//! Error type for the bandwidth-regulation substrate.

use std::error::Error;
use std::fmt;

/// Error returned by bandwidth-regulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembwError {
    /// A core index was out of range for the regulator.
    UnknownCore {
        /// The offending core index.
        core: usize,
        /// Number of cores the regulator manages.
        cores: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for MembwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembwError::UnknownCore { core, cores } => {
                write!(f, "unknown core {core} (regulator manages {cores} cores)")
            }
            MembwError::InvalidConfig { detail } => {
                write!(f, "invalid regulator configuration: {detail}")
            }
        }
    }
}

impl Error for MembwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MembwError::UnknownCore { core: 9, cores: 4 };
        assert!(e.to_string().contains("unknown core 9"));
    }
}
