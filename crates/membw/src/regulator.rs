//! The per-core bandwidth regulator (BW enforcer + BW refiller).

use crate::{MembwError, PerfCounter, CACHE_LINE_BYTES};
use std::fmt;
use vc2m_simcore::MetricsRegistry;

/// Configuration of the bandwidth regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorConfig {
    cores: usize,
    period_ms: f64,
}

impl RegulatorConfig {
    /// Creates a configuration for `cores` cores with the given
    /// regulation period in milliseconds (the paper uses a small
    /// configurable interval, e.g. 1 ms).
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::InvalidConfig`] if `cores` is zero or the
    /// period is not positive and finite.
    pub fn new(cores: usize, period_ms: f64) -> Result<Self, MembwError> {
        if cores == 0 {
            return Err(MembwError::InvalidConfig {
                detail: "regulator needs at least one core".into(),
            });
        }
        if !period_ms.is_finite() || period_ms <= 0.0 {
            return Err(MembwError::InvalidConfig {
                detail: format!("regulation period must be positive, got {period_ms}"),
            });
        }
        Ok(RegulatorConfig { cores, period_ms })
    }

    /// Number of cores regulated.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Regulation period in milliseconds.
    pub fn period_ms(&self) -> f64 {
        self.period_ms
    }
}

/// What the enforcer decided after new memory requests were counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleAction {
    /// The core is still within budget; nothing to do.
    None,
    /// The counter just overflowed: the hypervisor must de-schedule the
    /// core's VCPU and leave the core idle for the rest of the period.
    Throttle,
    /// The core was already throttled (requests raced in before the
    /// de-schedule took effect); no new interrupt fires.
    AlreadyThrottled,
}

/// Per-core regulator state.
#[derive(Debug, Clone, PartialEq)]
struct CoreRegulator {
    budget: u64,
    counter: PerfCounter,
    throttled: bool,
    /// Requests observed in the current period (for statistics).
    used_this_period: u64,
}

/// The simulated bandwidth regulator: one preset performance counter
/// per core, the throttled-core bitmask, and the enforcer/refiller
/// logic of Figure 1.
///
/// The regulator is deliberately scheduler-agnostic: it reports
/// [`ThrottleAction`]s and un-throttle lists, and the hypervisor
/// simulator (which owns the scheduler) acts on them — mirroring the
/// real design, where the interrupt handlers *invoke* the RTDS
/// scheduler rather than schedule themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct BwRegulator {
    config: RegulatorConfig,
    cores: Vec<CoreRegulator>,
    /// Bitmask of throttled cores (the shared state of Fig. 1, which
    /// the prototype protects with a lock; the simulation is
    /// single-threaded so the bitmask alone suffices).
    throttled_mask: u64,
    periods_elapsed: u64,
    total_throttles: u64,
}

impl BwRegulator {
    /// Creates a regulator in the setup state: every core's budget is
    /// unlimited (`u64::MAX` requests) until [`BwRegulator::set_budget`]
    /// is called, so an unconfigured regulator never throttles.
    pub fn new(config: RegulatorConfig) -> Self {
        let cores = (0..config.cores())
            .map(|_| CoreRegulator {
                budget: u64::MAX >> 16,
                counter: PerfCounter::preset(u64::MAX >> 16),
                throttled: false,
                used_this_period: 0,
            })
            .collect();
        BwRegulator {
            config,
            cores,
            throttled_mask: 0,
            periods_elapsed: 0,
            total_throttles: 0,
        }
    }

    /// The regulator's configuration.
    pub fn config(&self) -> &RegulatorConfig {
        &self.config
    }

    /// Sets a core's per-period request budget and presets its counter
    /// (the setup component's per-core work).
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::UnknownCore`] if `core` is out of range.
    pub fn set_budget(&mut self, core: usize, requests_per_period: u64) -> Result<(), MembwError> {
        let cores = self.cores.len();
        let state = self
            .cores
            .get_mut(core)
            .ok_or(MembwError::UnknownCore { core, cores })?;
        state.budget = requests_per_period;
        state.counter.reset(requests_per_period);
        state.throttled = requests_per_period == 0;
        if state.throttled {
            self.throttled_mask |= 1 << core;
        } else {
            self.throttled_mask &= !(1 << core);
        }
        Ok(())
    }

    /// A core's configured budget in requests per period.
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::UnknownCore`] if `core` is out of range.
    pub fn budget(&self, core: usize) -> Result<u64, MembwError> {
        let cores = self.cores.len();
        self.cores
            .get(core)
            .map(|c| c.budget)
            .ok_or(MembwError::UnknownCore { core, cores })
    }

    /// Requests a core may still issue in the current period.
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::UnknownCore`] if `core` is out of range.
    pub fn remaining(&self, core: usize) -> Result<u64, MembwError> {
        let cores = self.cores.len();
        self.cores
            .get(core)
            .map(|c| c.counter.remaining())
            .ok_or(MembwError::UnknownCore { core, cores })
    }

    /// Whether a core is currently throttled.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (queries on unknown cores are a
    /// caller bug, unlike configuration calls which may be driven by
    /// external input).
    pub fn is_throttled(&self, core: usize) -> bool {
        self.cores[core].throttled
    }

    /// The bitmask of throttled cores.
    pub fn throttled_mask(&self) -> u64 {
        self.throttled_mask
    }

    /// The enforcer path: counts `requests` memory requests from
    /// `core`, and reports whether the overflow interrupt fires.
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::UnknownCore`] if `core` is out of range.
    pub fn record_requests(
        &mut self,
        core: usize,
        requests: u64,
    ) -> Result<ThrottleAction, MembwError> {
        let cores = self.cores.len();
        let state = self
            .cores
            .get_mut(core)
            .ok_or(MembwError::UnknownCore { core, cores })?;
        state.used_this_period += requests;
        if state.throttled {
            state.counter.add(requests);
            return Ok(ThrottleAction::AlreadyThrottled);
        }
        if state.counter.add(requests) {
            state.throttled = true;
            self.throttled_mask |= 1 << core;
            self.total_throttles += 1;
            Ok(ThrottleAction::Throttle)
        } else {
            Ok(ThrottleAction::None)
        }
    }

    /// The refiller path: at a regulation-period boundary, replenishes
    /// every core's budget, clears overflow status, and returns the
    /// list of cores that were throttled (the hypervisor must invoke
    /// its scheduler on each to resume a VCPU).
    pub fn replenish_all(&mut self) -> Vec<usize> {
        let cores: Vec<usize> = (0..self.cores.len()).collect();
        self.replenish_cores(&cores)
    }

    /// The refiller path restricted to a core subset: replenishes only
    /// the listed cores, leaving every other core's budget, counter and
    /// throttle status untouched. One call counts as one elapsed
    /// period, so a sharded simulation — where each shard replenishes
    /// exactly its own cores at a regulation barrier — keeps per-shard
    /// `periods_elapsed` equal to the serial run's.
    ///
    /// Returns the listed cores that were throttled, in the order
    /// given (callers pass ascending core indices for deterministic
    /// wake order).
    ///
    /// # Panics
    ///
    /// Panics if a listed core is out of range (the list is
    /// caller-constructed, never external input).
    pub fn replenish_cores(&mut self, cores: &[usize]) -> Vec<usize> {
        self.periods_elapsed += 1;
        let mut woken = Vec::new();
        for &core in cores {
            let state = &mut self.cores[core];
            if state.throttled {
                woken.push(core);
            }
            state.throttled = state.budget == 0;
            state.counter.reset(state.budget);
            state.used_this_period = 0;
            if state.throttled {
                self.throttled_mask |= 1 << core;
            } else {
                self.throttled_mask &= !(1 << core);
            }
        }
        woken
    }

    /// Number of regulation periods elapsed (refiller invocations).
    pub fn periods_elapsed(&self) -> u64 {
        self.periods_elapsed
    }

    /// Folds another regulator's cumulative *statistics* into this one
    /// (sharded-simulation merge): throttle totals add, since each
    /// shard throttles a disjoint core subset. `periods_elapsed` is
    /// left alone — every shard replenishes at every barrier, so the
    /// per-shard clocks already agree with the serial run's.
    ///
    /// Per-core budget/counter state is *not* merged; the receiver is
    /// only meaningful as a statistics source afterwards.
    pub fn merge_stats(&mut self, other: &BwRegulator) {
        debug_assert_eq!(
            self.periods_elapsed, other.periods_elapsed,
            "shards must have clocked the same number of barriers"
        );
        self.total_throttles += other.total_throttles;
    }

    /// Total throttle events since setup.
    pub fn total_throttles(&self) -> u64 {
        self.total_throttles
    }

    /// Exports the regulator's cumulative statistics into `out` under
    /// `prefix` (e.g. `"membw."`): counters `{prefix}periods_elapsed`,
    /// `{prefix}throttles` and `{prefix}cores`, plus the gauge
    /// `{prefix}period_ms`.
    ///
    /// Pull-only — reads accumulated state, never mutates the
    /// regulator, so exporting cannot perturb a simulation.
    pub fn export_metrics(&self, prefix: &str, out: &mut MetricsRegistry) {
        out.counter_add(&format!("{prefix}periods_elapsed"), self.periods_elapsed);
        out.counter_add(&format!("{prefix}throttles"), self.total_throttles);
        out.counter_add(&format!("{prefix}cores"), self.cores.len() as u64);
        out.gauge_set(&format!("{prefix}period_ms"), self.config.period_ms());
    }
}

impl fmt::Display for BwRegulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BwRegulator({} cores, period {}ms, throttled mask {:#b})",
            self.config.cores(),
            self.config.period_ms(),
            self.throttled_mask
        )
    }
}

/// Converts a bandwidth allocation of `partitions` partitions of
/// `partition_mbps` MB/s each into a per-regulation-period
/// memory-request budget (one request = one 64-byte line fill).
///
/// # Panics
///
/// Panics if `period_ms` is not positive and finite.
pub fn budget_requests_per_period(partitions: u32, partition_mbps: u32, period_ms: f64) -> u64 {
    assert!(
        period_ms.is_finite() && period_ms > 0.0,
        "regulation period must be positive, got {period_ms}"
    );
    let bytes_per_second = u64::from(partitions) * u64::from(partition_mbps) * 1_000_000;
    let bytes_per_period = bytes_per_second as f64 * (period_ms / 1e3);
    (bytes_per_period / CACHE_LINE_BYTES as f64).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regulator() -> BwRegulator {
        let mut r = BwRegulator::new(RegulatorConfig::new(4, 1.0).unwrap());
        for core in 0..4 {
            r.set_budget(core, 100).unwrap();
        }
        r
    }

    #[test]
    fn config_validates() {
        assert!(RegulatorConfig::new(0, 1.0).is_err());
        assert!(RegulatorConfig::new(4, 0.0).is_err());
        assert!(RegulatorConfig::new(4, f64::NAN).is_err());
    }

    #[test]
    fn unconfigured_core_never_throttles() {
        let mut r = BwRegulator::new(RegulatorConfig::new(1, 1.0).unwrap());
        assert_eq!(
            r.record_requests(0, 1_000_000_000).unwrap(),
            ThrottleAction::None
        );
    }

    #[test]
    fn throttles_exactly_at_budget() {
        let mut r = regulator();
        assert_eq!(r.record_requests(0, 99).unwrap(), ThrottleAction::None);
        assert_eq!(r.record_requests(0, 1).unwrap(), ThrottleAction::Throttle);
        assert!(r.is_throttled(0));
        assert_eq!(r.throttled_mask(), 0b0001);
        assert_eq!(
            r.record_requests(0, 1).unwrap(),
            ThrottleAction::AlreadyThrottled
        );
        assert_eq!(r.total_throttles(), 1);
    }

    #[test]
    fn cores_are_independent() {
        let mut r = regulator();
        r.record_requests(2, 150).unwrap();
        assert!(r.is_throttled(2));
        assert!(!r.is_throttled(0));
        assert_eq!(r.throttled_mask(), 0b0100);
    }

    #[test]
    fn replenish_unthrottles_and_reports() {
        let mut r = regulator();
        r.record_requests(1, 200).unwrap();
        r.record_requests(3, 200).unwrap();
        let woken = r.replenish_all();
        assert_eq!(woken, vec![1, 3]);
        assert_eq!(r.throttled_mask(), 0);
        assert!(!r.is_throttled(1));
        assert_eq!(r.remaining(1).unwrap(), 100);
        assert_eq!(r.periods_elapsed(), 1);
        // Guarantee survives: the core may again use its full budget.
        assert_eq!(r.record_requests(1, 99).unwrap(), ThrottleAction::None);
    }

    #[test]
    fn zero_budget_core_is_permanently_throttled() {
        let mut r = regulator();
        r.set_budget(0, 0).unwrap();
        assert!(r.is_throttled(0));
        let woken = r.replenish_all();
        assert_eq!(woken, vec![0], "refiller still reports it");
        assert!(r.is_throttled(0), "but it stays throttled");
    }

    #[test]
    fn replenish_cores_touches_only_the_subset() {
        let mut r = regulator();
        r.record_requests(0, 200).unwrap();
        r.record_requests(2, 200).unwrap();
        let woken = r.replenish_cores(&[0, 1]);
        assert_eq!(woken, vec![0], "only listed throttled cores wake");
        assert!(!r.is_throttled(0));
        assert!(r.is_throttled(2), "unlisted core keeps its throttle");
        assert_eq!(r.throttled_mask(), 0b0100);
        assert_eq!(r.remaining(0).unwrap(), 100, "listed core refilled");
        assert_eq!(r.remaining(2).unwrap(), 0, "unlisted core not refilled");
        assert_eq!(r.periods_elapsed(), 1, "one call = one period");
    }

    #[test]
    fn sharded_replenish_matches_replenish_all() {
        // Two regulators driven identically; one replenishes all cores
        // at once, the other replenishes the same boundary as two
        // disjoint core-subset calls. End state must be identical
        // (periods_elapsed differs by design: per-shard clocks each
        // count every boundary).
        let mut serial = regulator();
        let mut sharded = regulator();
        for r in [&mut serial, &mut sharded] {
            r.record_requests(1, 250).unwrap();
            r.record_requests(3, 250).unwrap();
        }
        let woken_serial = serial.replenish_all();
        let mut woken_sharded = sharded.replenish_cores(&[0, 1]);
        woken_sharded.extend(sharded.replenish_cores(&[2, 3]));
        assert_eq!(woken_serial, woken_sharded);
        assert_eq!(serial.throttled_mask(), sharded.throttled_mask());
        for core in 0..4 {
            assert_eq!(
                serial.remaining(core).unwrap(),
                sharded.remaining(core).unwrap()
            );
        }
    }

    #[test]
    fn merge_stats_adds_disjoint_throttle_totals() {
        // Serial regulator vs two shard clones covering disjoint core
        // subsets: after identical traffic and one boundary each, the
        // merged statistics equal the serial ones.
        let mut serial = regulator();
        let mut shard_a = regulator();
        let mut shard_b = regulator();
        serial.record_requests(1, 250).unwrap();
        serial.record_requests(3, 250).unwrap();
        shard_a.record_requests(1, 250).unwrap();
        shard_b.record_requests(3, 250).unwrap();
        serial.replenish_all();
        shard_a.replenish_cores(&[0, 1]);
        shard_b.replenish_cores(&[2, 3]);
        let mut merged = shard_a.clone();
        merged.merge_stats(&shard_b);
        assert_eq!(merged.total_throttles(), serial.total_throttles());
        assert_eq!(merged.periods_elapsed(), serial.periods_elapsed());
    }

    #[test]
    fn unknown_core_errors() {
        let mut r = regulator();
        assert!(matches!(
            r.record_requests(9, 1),
            Err(MembwError::UnknownCore { core: 9, cores: 4 })
        ));
        assert!(r.set_budget(9, 1).is_err());
        assert!(r.budget(9).is_err());
        assert!(r.remaining(9).is_err());
    }

    #[test]
    fn budget_conversion() {
        // 1 partition × 60 MB/s × 1 ms = 60 KB = 937.5 cache lines.
        assert_eq!(budget_requests_per_period(1, 60, 1.0), 937);
        // 20 partitions: 20×.
        assert_eq!(budget_requests_per_period(20, 60, 1.0), 18_750);
        // Longer period scales linearly.
        assert_eq!(budget_requests_per_period(1, 60, 2.0), 1_875);
        assert_eq!(budget_requests_per_period(0, 60, 1.0), 0);
    }

    #[test]
    fn guaranteed_budget_each_period() {
        // The core receives its configured budget in *every* period:
        // run three periods at exactly the budget, never throttled
        // early, always throttled at the boundary request.
        let mut r = regulator();
        for _ in 0..3 {
            assert_eq!(r.record_requests(0, 100).unwrap(), ThrottleAction::Throttle);
            r.replenish_all();
        }
        assert_eq!(r.total_throttles(), 3);
    }

    #[test]
    fn display() {
        let r = regulator();
        assert!(r.to_string().contains("4 cores"));
    }

    #[test]
    fn metrics_export_reflects_counters() {
        let mut r = regulator();
        r.record_requests(0, 200).unwrap();
        r.replenish_all();
        let mut m = MetricsRegistry::new();
        r.export_metrics("membw.", &mut m);
        assert_eq!(m.counter("membw.periods_elapsed"), Some(1));
        assert_eq!(m.counter("membw.throttles"), Some(1));
        assert_eq!(m.counter("membw.cores"), Some(4));
        assert_eq!(m.gauge("membw.period_ms"), Some(1.0));
    }
}
