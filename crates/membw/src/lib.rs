//! Memory-bandwidth regulation substrate.
//!
//! Reproduces the vC²M bandwidth regulator of Section 3.2 / Figure 1 in
//! simulation. On the real prototype, an unused hardware performance
//! counter on each core counts last-level-cache misses (≈ memory
//! requests); the counter is *preset* so that it overflows exactly when
//! the core exhausts its per-period budget; the LAPIC delivers the
//! overflow interrupt to the *BW enforcer* handler, which tells the
//! hypervisor scheduler to de-schedule the core's VCPU and leave the
//! core **idle** (unlike MemGuard, which keeps it busy); the periodic
//! *BW refiller* handler replenishes every core's budget and re-invokes
//! the scheduler on throttled cores.
//!
//! The simulation mirrors each component:
//!
//! * [`PerfCounter`] — a preset overflow counter plus the overflow
//!   status bit;
//! * [`BwRegulator`] — per-core budgets, the throttled-core bitmask,
//!   the enforcer path ([`BwRegulator::record_requests`]) and the
//!   refiller path ([`BwRegulator::replenish_all`]);
//! * [`budget_requests_per_period`] — converts a bandwidth-partition
//!   count into a per-period memory-request budget.
//!
//! # Example
//!
//! ```
//! use vc2m_membw::{BwRegulator, RegulatorConfig, ThrottleAction};
//!
//! # fn main() -> Result<(), vc2m_membw::MembwError> {
//! let config = RegulatorConfig::new(4, 1.0)?; // 4 cores, 1 ms period
//! let mut regulator = BwRegulator::new(config);
//! regulator.set_budget(0, 1000)?;
//! // 999 requests: still under budget.
//! assert_eq!(regulator.record_requests(0, 999)?, ThrottleAction::None);
//! // The 1000th overflows the counter: the core is throttled.
//! assert_eq!(regulator.record_requests(0, 1)?, ThrottleAction::Throttle);
//! assert!(regulator.is_throttled(0));
//! // The refiller un-throttles it at the next period boundary.
//! let woken = regulator.replenish_all();
//! assert_eq!(woken, vec![0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counter;
mod error;
mod regulator;

pub use counter::PerfCounter;
pub use error::MembwError;
pub use regulator::{budget_requests_per_period, BwRegulator, RegulatorConfig, ThrottleAction};

/// Size of one memory request (a cache-line fill), in bytes. Memory
/// traffic is accounted in last-level-cache misses, each of which
/// transfers one 64-byte line — the same accounting MemGuard and the
/// paper use.
pub const CACHE_LINE_BYTES: u64 = 64;
