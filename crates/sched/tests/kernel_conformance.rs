//! Seeded conformance properties for the incremental schedulability
//! kernels: the k-way checkpoint merge, the reusable
//! [`AnalysisWorkspace`], and the [`MinBudgetSolver`] floor table must
//! reproduce the naive reference implementations **bit for bit** on
//! random tasksets — harmonic, non-harmonic, zero-WCET, and
//! near-incommensurate (no-hyperperiod) alike. Cases come from the
//! in-tree seeded harness (`vc2m_rng::cases`).

use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_sched::dbf::Demand;
use vc2m_sched::kernel::{analysis_horizon, AnalysisWorkspace, MAX_CHECKPOINTS};
use vc2m_sched::sbf::{min_budget, MinBudgetSolver, PeriodicResource};

/// A harmonic taskset (periods base·2^k), the regime the sweep
/// generator produces. Bases are quantized to whole nanoseconds so the
/// hyperperiod is exact.
fn arb_harmonic_demand(rng: &mut DetRng) -> Demand {
    let base = (rng.gen_range(1.0f64..50.0) * 1e6).round() / 1e6;
    let n = rng.gen_range(1usize..6);
    let tasks: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let period = base * f64::from(1u32 << rng.gen_range(0u32..4));
            (period, rng.gen_range(0.01f64..0.24) * period)
        })
        .collect();
    Demand::new(tasks).expect("valid demand")
}

/// An unconstrained taskset: independent ns-quantized periods, and
/// roughly one task in five carries a zero WCET (contributing no
/// checkpoints — the kernels must skip it exactly like the reference).
fn arb_general_demand(rng: &mut DetRng) -> Demand {
    let n = rng.gen_range(1usize..7);
    let tasks: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let period = (rng.gen_range(0.5f64..80.0) * 1e6).round() / 1e6;
            let wcet = if rng.gen_range(0u32..5) == 0 {
                0.0
            } else {
                rng.gen_range(0.01f64..0.2) * period
            };
            (period, wcet)
        })
        .collect();
    Demand::new(tasks).expect("valid demand")
}

/// Near-incommensurate periods: a handful of milliseconds apart on the
/// nanosecond grid, so pairwise LCMs usually overflow the 1e12 ns
/// hyperperiod bound and the analysis walks the bounded fallback
/// horizon — the densest checkpoint regime.
fn arb_incommensurate_demand(rng: &mut DetRng) -> Demand {
    let n = rng.gen_range(2usize..5);
    let tasks: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let period = 7.0 + f64::from(rng.gen_range(0u32..4_000_000)) * 1e-6;
            (period, rng.gen_range(0.05f64..0.2) * period)
        })
        .collect();
    Demand::new(tasks).expect("valid demand")
}

/// Draws from all three regimes.
fn arb_any_demand(rng: &mut DetRng) -> Demand {
    match rng.gen_range(0u32..3) {
        0 => arb_harmonic_demand(rng),
        1 => arb_general_demand(rng),
        _ => arb_incommensurate_demand(rng),
    }
}

/// The historical checkpoint enumeration, written out naively:
/// per-task deadline multiples by running addition (the same float
/// progression the merge cursors follow), capped at `max_points`
/// multiples per task, then collect–sort–dedup–truncate. This is the
/// specification `Demand::checkpoints` documents — earliest points
/// survive both caps.
fn reference_checkpoints(demand: &Demand, horizon: f64, max_points: usize) -> Vec<f64> {
    let mut all = Vec::new();
    for (period, wcet) in demand.pairs() {
        if wcet == 0.0 {
            continue;
        }
        let mut t = period;
        let mut multiples = 0usize;
        while t <= horizon + 1e-9 && multiples < max_points {
            all.push(t);
            multiples += 1;
            t += period;
        }
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("checkpoints are finite"));
    all.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    all.truncate(max_points);
    all
}

fn bits(points: &[f64]) -> Vec<u64> {
    points.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn merged_checkpoint_stream_matches_sorted_dedup_reference() {
    check(192, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let horizon = analysis_horizon(&demand, period);
        // Mostly the production cap; sometimes a tiny one, so the
        // truncation path (keep the earliest points) is pinned too.
        let max_points = if rng.gen_range(0u32..4) == 0 {
            rng.gen_range(1usize..40)
        } else {
            MAX_CHECKPOINTS
        };
        let merged = demand.checkpoints(horizon, max_points);
        let reference = reference_checkpoints(&demand, horizon, max_points);
        assert_eq!(
            bits(&merged),
            bits(&reference),
            "merge diverged for tasks {:?} (horizon {horizon}, cap {max_points})",
            demand.pairs().collect::<Vec<_>>(),
        );
    });
}

#[test]
fn workspace_can_schedule_matches_reference_verdict() {
    // One workspace across all cases: reuse (stale buffers from the
    // previous case) is exactly what must not leak into verdicts.
    let workspace = std::cell::RefCell::new(AnalysisWorkspace::new());
    check(192, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let resource = PeriodicResource::new(period, rng.gen_range(0.0f64..=1.0) * period);
        // The workspace streams demand values point by point; the
        // reference materializes the checkpoint vector. Same booleans,
        // for every demand regime and both verdicts.
        assert_eq!(
            workspace.borrow_mut().can_schedule(&resource, &demand),
            resource.can_schedule(&demand),
            "verdict diverged for tasks {:?} against {resource:?}",
            demand.pairs().collect::<Vec<_>>(),
        );
    });
}

#[test]
fn workspace_min_budget_matches_fresh_demand_bitwise() {
    let workspace = std::cell::RefCell::new(AnalysisWorkspace::new());
    check(192, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let reference = min_budget(&demand, period);
        let incremental = workspace.borrow_mut().min_budget(&demand, period);
        assert_eq!(
            incremental.map(f64::to_bits),
            reference.map(f64::to_bits),
            "budget diverged for tasks {:?} at period {period}: {incremental:?} vs {reference:?}",
            demand.pairs().collect::<Vec<_>>(),
        );
    });
}

#[test]
fn solver_floor_table_matches_fresh_demand_bitwise() {
    check(128, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let solver = MinBudgetSolver::new(demand.periods(), period);
        // Zero-WCET draws exercise the solver's fallback route; all-
        // positive draws its floor-table fast path. Both must land on
        // the reference bit pattern.
        assert_eq!(
            solver.min_budget(demand.wcets()).map(f64::to_bits),
            min_budget(&demand, period).map(f64::to_bits),
            "solver diverged for tasks {:?} at period {period}",
            demand.pairs().collect::<Vec<_>>(),
        );
    });
}

#[test]
fn batched_dbf_matches_per_point_reference_bitwise() {
    // The batched task-major pass must reproduce the per-point `dbf`
    // fold bit for bit on every demand regime — harmonic,
    // incommensurate, and draws containing zero-WCET tasks.
    let out = std::cell::RefCell::new(Vec::new());
    check(192, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let horizon = analysis_horizon(&demand, period);
        let points = demand.checkpoints(horizon, 512);
        let mut out = out.borrow_mut();
        demand.dbf_many(&points, &mut out);
        assert_eq!(out.len(), points.len());
        for (&t, &batched) in points.iter().zip(out.iter()) {
            assert_eq!(
                batched.to_bits(),
                demand.dbf(t).to_bits(),
                "dbf_many diverged at t={t} for tasks {:?}",
                demand.pairs().collect::<Vec<_>>(),
            );
        }
    });
}

#[test]
fn batched_sbf_matches_per_point_reference_bitwise() {
    // Same checkpoint streams, this time through the supply side:
    // the hoisted-blackout batched pass against the scalar `sbf`,
    // including zero-budget and full-budget resources.
    let out = std::cell::RefCell::new(Vec::new());
    check(192, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let budget = match rng.gen_range(0u32..8) {
            0 => 0.0,
            1 => period,
            _ => rng.gen_range(0.0f64..=1.0) * period,
        };
        let resource = PeriodicResource::new(period, budget);
        let horizon = analysis_horizon(&demand, period);
        let points = demand.checkpoints(horizon, 512);
        let mut out = out.borrow_mut();
        resource.sbf_many(&points, &mut out);
        assert_eq!(out.len(), points.len());
        for (&t, &batched) in points.iter().zip(out.iter()) {
            assert_eq!(
                batched.to_bits(),
                resource.sbf(t).to_bits(),
                "sbf_many diverged at t={t} against {resource:?}",
            );
        }
    });
}

#[test]
fn streaming_demand_equals_naive_dbf_at_every_checkpoint() {
    check(128, |rng| {
        let demand = arb_any_demand(rng);
        let period = rng.gen_range(0.5f64..20.0);
        let horizon = analysis_horizon(&demand, period);
        // The kernels evaluate per-point demand through the same
        // task-order expression as `dbf`; job-counter shortcuts would
        // drift. Pin dbf's own identity on the merged stream: each
        // point's demand equals the naive per-task floor sum.
        for t in demand.checkpoints(horizon, 512) {
            let naive: f64 = demand
                .pairs()
                .map(|(p, e)| ((t / p) + 1e-9).floor() * e)
                .sum();
            assert_eq!(demand.dbf(t).to_bits(), naive.to_bits());
        }
    });
}
