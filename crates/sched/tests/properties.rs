//! Property-based tests for the scheduling theory: supply/demand bound
//! functions and minimal periodic-resource budgets. Cases come from
//! the in-tree seeded harness (`vc2m_rng::cases`).

use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_sched::dbf::Demand;
use vc2m_sched::sbf::{min_budget, PeriodicResource};

/// A small harmonic taskset: `(period, wcet)` pairs with periods
/// base·2^k and wcets below the period.
fn arb_harmonic_demand(rng: &mut DetRng) -> Demand {
    // Quantize the base to whole nanoseconds, as the workload
    // generator does: power-of-two multiples are then exactly
    // representable and the hyperperiod is exact.
    let base = (rng.gen_range(1.0f64..50.0) * 1e6).round() / 1e6;
    let n = rng.gen_range(1usize..6);
    let tasks: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let period = base * f64::from(1u32 << rng.gen_range(0u32..4));
            (period, rng.gen_range(0.01f64..0.24) * period)
        })
        .collect();
    Demand::new(tasks).expect("valid demand")
}

#[test]
fn sbf_is_monotone_and_bounded() {
    check(64, |rng| {
        let period = rng.gen_range(1.0f64..100.0);
        let budget_frac = rng.gen_range(0.0f64..=1.0);
        let r = PeriodicResource::new(period, budget_frac * period);
        let n = rng.gen_range(1usize..20);
        let mut sorted: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..500.0)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &sorted {
            let v = r.sbf(t);
            assert!(v >= prev - 1e-9, "sbf not monotone at t={t}");
            assert!(v <= t + 1e-9, "sbf({t}) = {v} exceeds t");
            assert!(r.lsbf(t) <= v + 1e-9, "lsbf must lower-bound sbf");
            prev = v;
        }
    });
}

#[test]
fn sbf_supplies_full_budget_per_period_eventually() {
    check(64, |rng| {
        let period = rng.gen_range(1.0f64..100.0);
        let budget = rng.gen_range(0.1f64..=1.0) * period;
        let k = rng.gen_range(1u32..10);
        let r = PeriodicResource::new(period, budget);
        // Over k+1 periods the resource must have delivered at least
        // k budgets (one period can be lost to worst-case phasing).
        let t = f64::from(k + 1) * period;
        assert!(r.sbf(t) >= f64::from(k) * budget - 1e-6);
    });
}

#[test]
fn dbf_is_superadditive_on_periods() {
    check(64, |rng| {
        let demand = arb_harmonic_demand(rng);
        let k = rng.gen_range(1u32..5);
        // dbf(k·H) = k·dbf(H) for the hyperperiod H of a periodic set.
        if let Some(h) = demand.hyperperiod() {
            let one = demand.dbf(h);
            let many = demand.dbf(f64::from(k) * h);
            assert!((many - f64::from(k) * one).abs() < 1e-6 * one.max(1.0));
        }
    });
}

/// Regression (from a retired shrinker seed): a period that is *not*
/// representable in whole nanoseconds, e.g. `47.0532022340515`, gets a
/// ns-rounded hyperperiod *smaller* than the period itself, so
/// `dbf(H) = 0` while `dbf(2H) = e` — superadditivity over the
/// reported hyperperiod fails. The workload generator avoids the trap
/// by quantizing period bases to whole nanoseconds
/// (`(p·1e6).round()/1e6`) before building tasks; this test pins both
/// the failure mode and the fix.
#[test]
fn regression_unquantized_period_breaks_hyperperiod_superadditivity() {
    let p = 47.0532022340515;
    let e = 0.470532022340515;
    let raw = Demand::new(vec![(p, e)]).expect("valid demand");
    let h = raw.hyperperiod().expect("single task has a hyperperiod");
    // The ns-rounded hyperperiod undershoots the true period …
    assert!(h < p, "hyperperiod {h} not below period {p}");
    // … so no job deadline falls inside it: dbf(H) = 0 ≠ dbf(2H).
    assert_eq!(raw.dbf(h), 0.0);
    assert_eq!(raw.dbf(2.0 * h), e);
    // Quantizing the period the way the generator does restores the
    // k·dbf(H) identity exactly.
    let pq = (p * 1e6f64).round() / 1e6;
    let quantized = Demand::new(vec![(pq, e)]).expect("valid demand");
    let hq = quantized.hyperperiod().expect("hyperperiod");
    assert_eq!(hq, pq);
    for k in 1..5u32 {
        let expected = f64::from(k) * quantized.dbf(hq);
        assert!((quantized.dbf(f64::from(k) * hq) - expected).abs() < 1e-12);
    }
}

#[test]
fn min_budget_is_sound_and_tight() {
    check(64, |rng| {
        let demand = arb_harmonic_demand(rng);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if let Some(theta) = min_budget(&demand, period) {
            // Sound: the resulting resource schedules the demand.
            assert!(PeriodicResource::new(period, theta).can_schedule(&demand));
            // Bandwidth at least the utilization (no magic).
            assert!(theta / period >= demand.utilization() - 1e-9);
            // Tight: 1% less budget fails, unless theta is already at
            // the utilization bound.
            let trimmed = theta * 0.99;
            if trimmed / period > demand.utilization() + 1e-9 {
                assert!(
                    !PeriodicResource::new(period, trimmed).can_schedule(&demand),
                    "budget {theta} was not minimal"
                );
            }
        } else {
            // Infeasible only if even a dedicated processor fails.
            assert!(!PeriodicResource::new(period, period).can_schedule(&demand));
        }
    });
}

#[test]
fn min_budget_monotone_in_wcet() {
    check(64, |rng| {
        let demand = arb_harmonic_demand(rng);
        let grow = rng.gen_range(1.01f64..1.5);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let grown = Demand::new(demand.pairs().map(|(p, e)| (p, e * grow)).collect())
            .expect("still valid");
        match (min_budget(&demand, period), min_budget(&grown, period)) {
            (Some(a), Some(b)) => assert!(b >= a - 1e-9, "more demand, smaller budget?"),
            (Some(_), None) => {} // grown demand became infeasible: fine
            (None, Some(_)) => panic!("less demand infeasible but more feasible"),
            (None, None) => {}
        }
    });
}

#[test]
fn abstraction_overhead_is_nonnegative_and_vanishes_at_full_load() {
    check(64, |rng| {
        let demand = arb_harmonic_demand(rng);
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if let Some(theta) = min_budget(&demand, period) {
            let bandwidth = theta / period;
            let utilization = demand.utilization();
            // The overhead the paper eliminates: existing CSA bandwidth
            // is never below the utilization.
            assert!(bandwidth >= utilization - 1e-9);
        }
    });
}

#[test]
fn can_schedule_antitone_in_demand() {
    check(32, |rng| {
        let demand = arb_harmonic_demand(rng);
        let budget_frac = rng.gen_range(0.05f64..=1.0);
        // If a resource schedules a demand, it also schedules any
        // demand with one task removed.
        let period = demand
            .periods()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let r = PeriodicResource::new(period, budget_frac * period);
        if r.can_schedule(&demand) && demand.len() > 1 {
            let reduced = Demand::new(demand.pairs().skip(1).collect()).expect("valid");
            assert!(r.can_schedule(&reduced));
        }
    });
}
