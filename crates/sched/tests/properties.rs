//! Property-based tests for the scheduling theory: supply/demand bound
//! functions and minimal periodic-resource budgets.

use proptest::prelude::*;
use vc2m_sched::dbf::Demand;
use vc2m_sched::sbf::{min_budget, PeriodicResource};

/// A small harmonic taskset: `(period, wcet)` pairs with periods
/// base·2^k and wcets below the period.
fn arb_harmonic_demand() -> impl Strategy<Value = Demand> {
    (
        1.0f64..50.0,
        proptest::collection::vec((0u32..4, 0.01f64..0.24), 1..6),
    )
        .prop_map(|(base, specs)| {
            // Quantize the base to whole nanoseconds, as the workload
            // generator does: power-of-two multiples are then exactly
            // representable and the hyperperiod is exact.
            let base = (base * 1e6).round() / 1e6;
            let tasks: Vec<(f64, f64)> = specs
                .into_iter()
                .map(|(exp, frac)| {
                    let period = base * f64::from(1u32 << exp);
                    (period, frac * period)
                })
                .collect();
            Demand::new(tasks).expect("valid demand")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sbf_is_monotone_and_bounded(
        period in 1.0f64..100.0,
        budget_frac in 0.0f64..=1.0,
        t_samples in proptest::collection::vec(0.0f64..500.0, 1..20),
    ) {
        let r = PeriodicResource::new(period, budget_frac * period);
        let mut sorted = t_samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &sorted {
            let v = r.sbf(t);
            prop_assert!(v >= prev - 1e-9, "sbf not monotone at t={t}");
            prop_assert!(v <= t + 1e-9, "sbf({t}) = {v} exceeds t");
            prop_assert!(r.lsbf(t) <= v + 1e-9, "lsbf must lower-bound sbf");
            prev = v;
        }
    }

    #[test]
    fn sbf_supplies_full_budget_per_period_eventually(
        period in 1.0f64..100.0,
        budget_frac in 0.1f64..=1.0,
        k in 1u32..10,
    ) {
        let budget = budget_frac * period;
        let r = PeriodicResource::new(period, budget);
        // Over k+1 periods the resource must have delivered at least
        // k budgets (one period can be lost to worst-case phasing).
        let t = f64::from(k + 1) * period;
        prop_assert!(r.sbf(t) >= f64::from(k) * budget - 1e-6);
    }

    #[test]
    fn dbf_is_superadditive_on_periods(demand in arb_harmonic_demand(), k in 1u32..5) {
        // dbf(k·H) = k·dbf(H) for the hyperperiod H of a periodic set.
        if let Some(h) = demand.hyperperiod() {
            let one = demand.dbf(h);
            let many = demand.dbf(f64::from(k) * h);
            prop_assert!((many - f64::from(k) * one).abs() < 1e-6 * one.max(1.0));
        }
    }

    #[test]
    fn min_budget_is_sound_and_tight(demand in arb_harmonic_demand()) {
        let period = demand.tasks().iter().map(|&(p, _)| p).fold(f64::INFINITY, f64::min);
        if let Some(theta) = min_budget(&demand, period) {
            // Sound: the resulting resource schedules the demand.
            prop_assert!(PeriodicResource::new(period, theta).can_schedule(&demand));
            // Bandwidth at least the utilization (no magic).
            prop_assert!(theta / period >= demand.utilization() - 1e-9);
            // Tight: 1% less budget fails, unless theta is already at
            // the utilization bound.
            let trimmed = theta * 0.99;
            if trimmed / period > demand.utilization() + 1e-9 {
                prop_assert!(
                    !PeriodicResource::new(period, trimmed).can_schedule(&demand),
                    "budget {theta} was not minimal"
                );
            }
        } else {
            // Infeasible only if even a dedicated processor fails.
            prop_assert!(!PeriodicResource::new(period, period).can_schedule(&demand));
        }
    }

    #[test]
    fn min_budget_monotone_in_wcet(demand in arb_harmonic_demand(), grow in 1.01f64..1.5) {
        let period = demand.tasks().iter().map(|&(p, _)| p).fold(f64::INFINITY, f64::min);
        let grown = Demand::new(
            demand.tasks().iter().map(|&(p, e)| (p, e * grow)).collect()
        ).expect("still valid");
        match (min_budget(&demand, period), min_budget(&grown, period)) {
            (Some(a), Some(b)) => prop_assert!(b >= a - 1e-9, "more demand, smaller budget?"),
            (Some(_), None) => {} // grown demand became infeasible: fine
            (None, Some(_)) => prop_assert!(false, "less demand infeasible but more feasible"),
            (None, None) => {}
        }
    }

    #[test]
    fn abstraction_overhead_is_nonnegative_and_vanishes_at_full_load(
        demand in arb_harmonic_demand(),
    ) {
        let period = demand.tasks().iter().map(|&(p, _)| p).fold(f64::INFINITY, f64::min);
        if let Some(theta) = min_budget(&demand, period) {
            let bandwidth = theta / period;
            let utilization = demand.utilization();
            // The overhead the paper eliminates: existing CSA bandwidth
            // is never below the utilization.
            prop_assert!(bandwidth >= utilization - 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn can_schedule_antitone_in_demand(
        demand in arb_harmonic_demand(),
        budget_frac in 0.05f64..=1.0,
    ) {
        // If a resource schedules a demand, it also schedules any
        // demand with one task removed.
        let period = demand.tasks().iter().map(|&(p, _)| p).fold(f64::INFINITY, f64::min);
        let r = PeriodicResource::new(period, budget_frac * period);
        if r.can_schedule(&demand) && demand.tasks().len() > 1 {
            let reduced = Demand::new(demand.tasks()[1..].to_vec()).expect("valid");
            prop_assert!(r.can_schedule(&reduced));
        }
    }
}
