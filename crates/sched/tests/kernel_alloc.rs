//! Pins the zero-allocation guarantee of the steady-state kernel path.
//!
//! The naive kernels allocate a checkpoint vector and a demand vector
//! on every `min_budget` / `can_schedule` call. The incremental
//! kernels ([`AnalysisWorkspace`], [`MinBudgetSolver`]) reuse their
//! buffers: after a warm-up call sized the buffers, repeated calls on
//! demands of the same (or smaller) footprint must perform **zero**
//! heap allocations.
//!
//! The test installs a counting global allocator, warms the workspace
//! and solver once, then asserts an exact zero allocation delta over
//! hundreds of further kernel calls. This file deliberately holds a
//! single `#[test]` — a second concurrent test would pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

use vc2m_sched::dbf::Demand;
use vc2m_sched::kernel::AnalysisWorkspace;
use vc2m_sched::sbf::{MinBudgetSolver, PeriodicResource};

#[test]
fn steady_state_kernels_never_allocate() {
    let demand = Demand::new(vec![
        (5.0, 0.5),
        (10.0, 1.0),
        (20.0, 2.0),
        (40.0, 3.0),
        (80.0, 4.0),
    ])
    .expect("valid demand");
    // A second, smaller demand: switching inputs must also stay
    // allocation-free once the buffers fit the larger one.
    let small = Demand::new(vec![(10.0, 1.5), (20.0, 2.0)]).expect("valid demand");

    let mut workspace = AnalysisWorkspace::new();
    let solver = MinBudgetSolver::new(demand.periods(), 5.0);
    let wcets: Vec<f64> = demand.wcets().to_vec();

    // Warm-up: size every reusable buffer (merge scratch, checkpoint
    // and demand vectors, active-set indices). Two passes, because the
    // bisection's `(active, retained)` double buffer swaps roles an
    // odd number of times on some inputs — the second pass grows the
    // half that came up short, after which both sit at full capacity.
    let mut budget = 0.0;
    for _ in 0..2 {
        budget = workspace.min_budget(&demand, 5.0).expect("feasible");
        let _ = workspace.min_budget(&small, 5.0);
        let solver_budget = solver.min_budget(&wcets).expect("feasible");
        assert_eq!(budget.to_bits(), solver_budget.to_bits());
    }
    // A resource with ~5% headroom over the larger demand's minimal
    // budget: schedules both demands (the smaller strictly dominates).
    let resource = PeriodicResource::new(5.0, (budget * 1.05).min(5.0));
    assert!(workspace.can_schedule(&resource, &demand));
    assert!(workspace.can_schedule(&resource, &small));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut acc = 0.0f64;
    let mut verdicts = 0u32;
    for _ in 0..200 {
        acc += workspace.min_budget(&demand, 5.0).expect("feasible");
        acc += workspace.min_budget(&small, 5.0).expect("feasible");
        acc += solver.min_budget(&wcets).expect("feasible");
        verdicts += u32::from(workspace.can_schedule(&resource, &demand));
        verdicts += u32::from(workspace.can_schedule(&resource, &small));
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    std::hint::black_box((acc, verdicts));

    assert!(acc.is_finite());
    assert_eq!(verdicts, 400, "the warm resource schedules both demands");
    assert_eq!(
        delta, 0,
        "steady-state kernel calls performed {delta} heap allocations \
         over 1000 invocations — the incremental path must reuse its \
         buffers"
    );
}
