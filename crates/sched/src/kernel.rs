//! Allocation-free incremental schedulability kernels.
//!
//! The analysis inner loops — `can_schedule` probes and minimal-budget
//! searches — run millions of times per sweep. The reference
//! implementations in [`dbf`](crate::dbf) and [`sbf`](crate::sbf) are
//! written for clarity: every call materializes a fresh checkpoint
//! `Vec`, and historically also sorted and de-duplicated it. This
//! module provides the production kernels:
//!
//! * [`merge_checkpoints`](self) — a k-way merge over the per-task
//!   deadline progressions `p, 2p, 3p, …` that emits checkpoints in
//!   ascending order directly (no sort, no intermediate collection),
//!   de-duplicating against the last emitted point exactly the way the
//!   historical `sort`/`dedup_by` pass did. `Demand::checkpoints` is
//!   built on it, so the merged stream *is* the reference stream.
//! * [`AnalysisWorkspace`] — reusable scratch buffers (merge cursors,
//!   checkpoint/demand arrays, active-set indices) threading the same
//!   pattern `MinBudgetSolver` uses for `active`/`retained`, turning
//!   `can_schedule` into a single O(total points) streaming pass and
//!   `min_budget` into a zero-per-call-allocation bisection. Results
//!   are bit-identical to the reference functions: every float
//!   expression is evaluated in the same order on the same values
//!   (`crates/sched/tests/kernel_conformance.rs` pins this).
//! * [`KernelCounters`] — thread-local telemetry (merge sweeps,
//!   truncations, fallback horizons, kernel calls) that the sweep
//!   driver snapshots per work unit and exports as `analysis.*`
//!   metrics.
//!
//! # Why the demand sum is *not* a running accumulator
//!
//! A literal running demand sum (`d += e` as each task's deadline
//! passes) is mathematically equal to `dbf(t)` but not **bit**-equal:
//! float addition is non-associative, and the accumulated per-task
//! progression `t += p` drifts from the reference's `⌊t/p + 1e-9⌋`
//! job count by more than the 1e-9 tolerance at large multiples. The
//! kernels therefore stream checkpoints incrementally but evaluate the
//! per-point demand with the reference's own task-order expression
//! `Σᵢ ⌊t/pᵢ + 1e-9⌋·eᵢ` — the same trade `MinBudgetSolver`'s floor
//! table makes, preserving bit-identity while still eliminating the
//! sort, the per-call allocations, and (via the active set) most probe
//! comparisons.

use crate::dbf::Demand;
use crate::sbf::{bisect_active, PeriodicResource};
use std::cell::{Cell, RefCell};

/// The checkpoint cap used by every analysis entry point: at most this
/// many merged checkpoints are enumerated per `can_schedule` /
/// `min_budget` evaluation, and at most this many multiples of any
/// single task period. When the cap bites (or the no-hyperperiod
/// fallback horizon is used), the analysis is a bounded-horizon
/// approximation; [`KernelCounters::checkpoints_truncated`] and
/// [`KernelCounters::fallback_horizons`] make that visible to sweeps.
pub const MAX_CHECKPOINTS: usize = 100_000;

/// Per-thread kernel telemetry counters.
///
/// Counters accumulate monotonically per thread; consumers snapshot
/// [`counters`] before and after a unit of work and keep the
/// [`KernelCounters::since`] delta, which merges order-independently
/// across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Checkpoint merge sweeps performed (one per `checkpoints` /
    /// streaming kernel evaluation).
    pub checkpoint_merges: u64,
    /// Checkpoints emitted across all merge sweeps.
    pub checkpoints_emitted: u64,
    /// Merge sweeps truncated by [`MAX_CHECKPOINTS`] (globally or for
    /// a single task's progression).
    pub checkpoints_truncated: u64,
    /// Analyses that fell back to the bounded 10 000 ms horizon
    /// because the taskset has no representable hyperperiod.
    pub fallback_horizons: u64,
    /// [`AnalysisWorkspace::can_schedule`] calls.
    pub can_schedule_calls: u64,
    /// [`AnalysisWorkspace::min_budget`] calls.
    pub min_budget_calls: u64,
    /// `MinBudgetSolver::min_budget` fast-path calls (floor-table
    /// reuse).
    pub solver_calls: u64,
    /// VCPU interface constructions recorded by the analysis crate.
    pub vcpu_builds: u64,
}

impl KernelCounters {
    /// All-zero counters (`const`, so the thread-local can be
    /// zero-initialized without lazy setup).
    pub const fn new() -> Self {
        KernelCounters {
            checkpoint_merges: 0,
            checkpoints_emitted: 0,
            checkpoints_truncated: 0,
            fallback_horizons: 0,
            can_schedule_calls: 0,
            min_budget_calls: 0,
            solver_calls: 0,
            vcpu_builds: 0,
        }
    }

    /// The field-wise difference `self - baseline` — the work done
    /// between two [`counters`] snapshots on the same thread.
    pub fn since(&self, baseline: &KernelCounters) -> KernelCounters {
        KernelCounters {
            checkpoint_merges: self.checkpoint_merges.wrapping_sub(baseline.checkpoint_merges),
            checkpoints_emitted: self.checkpoints_emitted.wrapping_sub(baseline.checkpoints_emitted),
            checkpoints_truncated: self
                .checkpoints_truncated
                .wrapping_sub(baseline.checkpoints_truncated),
            fallback_horizons: self.fallback_horizons.wrapping_sub(baseline.fallback_horizons),
            can_schedule_calls: self.can_schedule_calls.wrapping_sub(baseline.can_schedule_calls),
            min_budget_calls: self.min_budget_calls.wrapping_sub(baseline.min_budget_calls),
            solver_calls: self.solver_calls.wrapping_sub(baseline.solver_calls),
            vcpu_builds: self.vcpu_builds.wrapping_sub(baseline.vcpu_builds),
        }
    }

    /// Adds `other`'s counters into `self` (plain integer addition, so
    /// aggregation order cannot affect the result).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.checkpoint_merges += other.checkpoint_merges;
        self.checkpoints_emitted += other.checkpoints_emitted;
        self.checkpoints_truncated += other.checkpoints_truncated;
        self.fallback_horizons += other.fallback_horizons;
        self.can_schedule_calls += other.can_schedule_calls;
        self.min_budget_calls += other.min_budget_calls;
        self.solver_calls += other.solver_calls;
        self.vcpu_builds += other.vcpu_builds;
    }
}

thread_local! {
    static COUNTERS: Cell<KernelCounters> = const { Cell::new(KernelCounters::new()) };
    static WORKSPACE: RefCell<AnalysisWorkspace> = RefCell::new(AnalysisWorkspace::new());
}

/// Snapshot of this thread's kernel counters.
pub fn counters() -> KernelCounters {
    COUNTERS.with(Cell::get)
}

/// Applies `f` to this thread's counters (plain `Cell` get/set — the
/// counters are `Copy` and small, so no locking or atomics).
pub(crate) fn tick(f: impl FnOnce(&mut KernelCounters)) {
    COUNTERS.with(|cell| {
        let mut value = cell.get();
        f(&mut value);
        cell.set(value);
    });
}

/// Records one VCPU interface construction. Called by the analysis
/// crate's VCPU builders so sweeps can relate kernel-call counts to
/// analysis work units.
pub fn record_vcpu_build() {
    tick(|c| c.vcpu_builds += 1);
}

/// Runs `f` with this thread's shared [`AnalysisWorkspace`].
///
/// Analysis call sites that cannot conveniently own a workspace (the
/// period search, cache-miss closures, one-shot worst-case budgets)
/// borrow the thread-local one; each worker thread of a parallel sweep
/// gets its own, so no synchronization is involved.
///
/// # Panics
///
/// Panics if `f` re-enters `with_workspace` on the same thread (the
/// workspace is a single exclusive scratch buffer).
pub fn with_workspace<R>(f: impl FnOnce(&mut AnalysisWorkspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// The analysis horizon for `demand` against a period-`period`
/// resource: the hyperperiod when representable, else the bounded
/// 10 000 ms fallback (counted in
/// [`KernelCounters::fallback_horizons`]); never below two resource
/// periods. Bit-identical to the reference expression
/// `demand.hyperperiod().unwrap_or(10_000.0).max(2.0 * period)`.
pub fn analysis_horizon(demand: &Demand, period: f64) -> f64 {
    let hyperperiod = match demand.hyperperiod() {
        Some(h) => h,
        None => {
            tick(|c| c.fallback_horizons += 1);
            10_000.0
        }
    };
    hyperperiod.max(2.0 * period)
}

/// Reusable cursor state for [`merge_checkpoints`]: one slot per task
/// with a pending deadline, holding the next deadline value, the task
/// period, and how many deadlines the cursor has yielded.
#[derive(Debug, Default)]
pub(crate) struct MergeScratch {
    next: Vec<f64>,
    periods: Vec<f64>,
    yielded: Vec<u32>,
}

impl MergeScratch {
    fn clear(&mut self) {
        self.next.clear();
        self.periods.clear();
        self.yielded.clear();
    }

    fn swap_remove(&mut self, slot: usize) {
        self.next.swap_remove(slot);
        self.periods.swap_remove(slot);
        self.yielded.swap_remove(slot);
    }
}

/// K-way merge over the per-task deadline progressions, emitting the
/// sorted de-duplicated checkpoint stream of the demand `periods` ×
/// `wcets` in `(0, horizon]` directly — no intermediate collection, no
/// sort.
///
/// Semantics match the (fixed) reference enumeration exactly:
///
/// * zero-WCET tasks contribute no deadlines;
/// * each task's progression `p, p+p, …` uses the same accumulated
///   float values the reference loop produces, and is capped at
///   `max_points` multiples;
/// * a point within `1e-9` of the last *emitted* point is dropped
///   (the `dedup_by` rule);
/// * emission stops after `max_points` points — the **earliest**
///   points are kept, never a mid-task prefix.
///
/// `emit` returning `false` aborts the sweep early (streaming
/// `can_schedule` stops at the first violated checkpoint). Returns
/// `(emitted, truncated)` where `truncated` reports whether either cap
/// dropped in-horizon deadlines; both are also added to this thread's
/// [`KernelCounters`].
pub(crate) fn merge_checkpoints(
    periods: &[f64],
    wcets: &[f64],
    horizon: f64,
    max_points: usize,
    scratch: &mut MergeScratch,
    mut emit: impl FnMut(f64) -> bool,
) -> (usize, bool) {
    scratch.clear();
    for (&p, &e) in periods.iter().zip(wcets) {
        if e == 0.0 {
            continue;
        }
        if p <= horizon + 1e-9 {
            scratch.next.push(p);
            scratch.periods.push(p);
            scratch.yielded.push(0);
        }
    }
    let mut last = f64::NEG_INFINITY;
    let mut emitted = 0usize;
    let mut truncated = false;
    while !scratch.next.is_empty() {
        // Linear min-scan over the cursors: k is the task count, which
        // is the same factor every dbf evaluation already pays, so the
        // merge stays O(k · points) like the work it feeds.
        let mut slot = 0usize;
        for (i, &t) in scratch.next.iter().enumerate().skip(1) {
            if t < scratch.next[slot] {
                slot = i;
            }
        }
        let t = scratch.next[slot];
        // Advance or retire the cursor, replicating the reference
        // loop's accumulated `t += p` values bit for bit.
        scratch.yielded[slot] += 1;
        let next_t = t + scratch.periods[slot];
        if scratch.yielded[slot] as usize >= max_points {
            if next_t <= horizon + 1e-9 {
                truncated = true; // per-task cap dropped in-horizon deadlines
            }
            scratch.swap_remove(slot);
        } else if next_t > horizon + 1e-9 {
            scratch.swap_remove(slot);
        } else {
            scratch.next[slot] = next_t;
        }
        // De-duplicate against the last emitted point (the reference's
        // `dedup_by(|a, b| (a - b).abs() < 1e-9)` keeps the first of
        // each cluster; the stream is ascending, so comparing against
        // the last emitted value is the same rule).
        if (t - last).abs() < 1e-9 {
            continue;
        }
        if emitted == max_points {
            truncated = true; // an emittable point exists beyond the cap
            break;
        }
        last = t;
        emitted += 1;
        if !emit(t) {
            break;
        }
    }
    tick(|c| {
        c.checkpoint_merges += 1;
        c.checkpoints_emitted += emitted as u64;
        c.checkpoints_truncated += u64::from(truncated);
    });
    (emitted, truncated)
}

/// Reusable scratch buffers for the incremental schedulability
/// kernels.
///
/// One workspace serves any number of demands: every buffer is
/// `clear()`ed (capacity retained) per call, so steady-state kernel
/// calls perform **zero heap allocations**
/// (`crates/sched/tests/kernel_alloc.rs` pins this with a counting
/// global allocator). Results are bit-identical to the reference
/// [`PeriodicResource::can_schedule`] and
/// [`min_budget`](crate::sbf::min_budget) — the conformance argument
/// is the [module docs](self) plus the active-set proof on
/// [`MinBudgetSolver::min_budget`](crate::sbf::MinBudgetSolver::min_budget).
#[derive(Debug, Default)]
pub struct AnalysisWorkspace {
    merge: MergeScratch,
    points: Vec<f64>,
    demands: Vec<f64>,
    active: Vec<u32>,
    retained: Vec<u32>,
}

impl AnalysisWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        AnalysisWorkspace::default()
    }

    /// Whether `demand` is EDF-schedulable on `resource` — the
    /// streaming, allocation-free equivalent of
    /// [`PeriodicResource::can_schedule`], returning the identical
    /// boolean (same checkpoint stream, same `dbf`/`sbf` expressions,
    /// same first-violation early exit).
    pub fn can_schedule(&mut self, resource: &PeriodicResource, demand: &Demand) -> bool {
        tick(|c| c.can_schedule_calls += 1);
        if demand.utilization() > resource.bandwidth() + 1e-12 {
            return false;
        }
        let horizon = analysis_horizon(demand, resource.period());
        let mut ok = true;
        merge_checkpoints(
            demand.periods(),
            demand.wcets(),
            horizon,
            MAX_CHECKPOINTS,
            &mut self.merge,
            |t| {
                if demand.dbf(t) > resource.sbf(t) + 1e-9 {
                    ok = false;
                    return false;
                }
                true
            },
        );
        ok
    }

    /// The minimal budget Θ making `demand` schedulable on a
    /// period-`period` resource — bit-identical to
    /// [`min_budget`](crate::sbf::min_budget), with the checkpoints
    /// merged into reused buffers and the bisection probing only the
    /// active checkpoint set.
    ///
    /// Unlike [`MinBudgetSolver`](crate::sbf::MinBudgetSolver), the
    /// checkpoint stream is built from the *actual* WCETs, so demands
    /// mixing zero and positive WCETs take the fast path too.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite.
    pub fn min_budget(&mut self, demand: &Demand, period: f64) -> Option<f64> {
        assert!(
            period.is_finite() && period > 0.0,
            "resource period must be positive and finite, got {period}"
        );
        tick(|c| c.min_budget_calls += 1);
        if demand.wcets().iter().all(|&e| e == 0.0) {
            return Some(0.0);
        }
        let horizon = analysis_horizon(demand, period);
        let AnalysisWorkspace {
            merge,
            points,
            demands,
            active,
            retained,
        } = self;
        points.clear();
        merge_checkpoints(
            demand.periods(),
            demand.wcets(),
            horizon,
            MAX_CHECKPOINTS,
            merge,
            |t| {
                points.push(t);
                true
            },
        );
        // Batched demand evaluation: all checkpoints in one task-major
        // pass over the SoA layout (bit-identical to mapping `dbf`
        // point by point — see `Demand::dbf_many`).
        demand.dbf_many(points, demands);
        bisect_active(period, demand.utilization(), points, demands, active, retained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbf::min_budget;

    #[test]
    fn workspace_matches_reference_on_basic_demands() {
        let mut ws = AnalysisWorkspace::new();
        for pairs in [
            vec![(10.0, 1.0)],
            vec![(10.0, 1.0), (20.0, 3.0), (40.0, 4.0)],
            vec![(10.0, 0.0), (20.0, 4.0)],
            vec![(3.0000001, 0.2), (7.0, 0.4)],
            vec![(10.0, 12.0)], // infeasible
            vec![],
        ] {
            let demand = Demand::new(pairs.clone()).unwrap();
            for period in [10.0, 5.0, 2.5] {
                assert_eq!(
                    ws.min_budget(&demand, period).map(f64::to_bits),
                    min_budget(&demand, period).map(f64::to_bits),
                    "min_budget diverged for {pairs:?} at period {period}"
                );
                for frac in [0.05, 0.3, 0.8, 1.0] {
                    let r = PeriodicResource::new(period, frac * period);
                    assert_eq!(
                        ws.can_schedule(&r, &demand),
                        r.can_schedule(&demand),
                        "can_schedule diverged for {pairs:?} on ({period}, {frac})"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_track_kernel_calls() {
        let before = counters();
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let mut ws = AnalysisWorkspace::new();
        let _ = ws.min_budget(&demand, 10.0);
        let r = PeriodicResource::new(10.0, 6.0);
        let _ = ws.can_schedule(&r, &demand);
        let delta = counters().since(&before);
        assert_eq!(delta.min_budget_calls, 1);
        assert_eq!(delta.can_schedule_calls, 1);
        assert!(delta.checkpoint_merges >= 2);
        assert!(delta.checkpoints_emitted >= 2);
        assert_eq!(delta.checkpoints_truncated, 0);
    }

    #[test]
    fn fallback_horizon_is_counted() {
        // Periods defeating the ns-scaled LCM: hyperperiod is None.
        let demand = Demand::new(vec![(999_937.0, 1.0), (999_983.0, 1.0)]).unwrap();
        assert_eq!(demand.hyperperiod(), None);
        let before = counters();
        let mut ws = AnalysisWorkspace::new();
        let _ = ws.min_budget(&demand, 10.0);
        assert_eq!(counters().since(&before).fallback_horizons, 1);
    }

    #[test]
    fn truncation_is_counted_and_keeps_earliest_points() {
        let demand = Demand::new(vec![(1.0, 0.1)]).unwrap();
        let before = counters();
        let points = demand.checkpoints(1e6, 50);
        assert_eq!(points.len(), 50);
        assert_eq!(points[0], 1.0);
        assert_eq!(points[49], 50.0);
        assert_eq!(counters().since(&before).checkpoints_truncated, 1);
    }

    #[test]
    fn counters_merge_and_delta() {
        let mut total = KernelCounters::new();
        total.merge(&KernelCounters {
            checkpoint_merges: 2,
            checkpoints_emitted: 10,
            ..KernelCounters::new()
        });
        total.merge(&KernelCounters {
            checkpoint_merges: 1,
            solver_calls: 4,
            ..KernelCounters::new()
        });
        assert_eq!(total.checkpoint_merges, 3);
        assert_eq!(total.checkpoints_emitted, 10);
        assert_eq!(total.solver_calls, 4);
        let base = KernelCounters {
            checkpoint_merges: 1,
            ..KernelCounters::new()
        };
        assert_eq!(total.since(&base).checkpoint_merges, 2);
    }
}
