//! EDF demand bound functions for implicit-deadline periodic tasksets.
//!
//! For a synchronous implicit-deadline periodic taskset
//! T = {(pᵢ, eᵢ)}, the demand bound function under EDF is
//!
//! ```text
//! dbf(t) = Σᵢ ⌊t / pᵢ⌋ · eᵢ
//! ```
//!
//! the maximum execution demand of jobs with both release and deadline
//! inside any window of length `t`. A resource supply `sbf` can feed
//! the taskset iff `dbf(t) ≤ sbf(t)` for all `t > 0`; since `dbf` only
//! increases at multiples of task periods and `sbf` is non-decreasing,
//! it suffices to check `t` at those *checkpoints*.

use std::fmt;

/// Validated demand description of an implicit-deadline periodic
/// taskset.
///
/// Stored structure-of-arrays (`periods[]` / `wcets[]` as parallel
/// slices) so the analysis kernels can stream each array
/// independently: the checkpoint merge walks `periods` alone, the
/// zero-WCET screens walk `wcets` alone, and `dbf` zips both without
/// loading unused halves of `(f64, f64)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Demand {
    periods: Vec<f64>,
    wcets: Vec<f64>,
    utilization: f64,
    hyperperiod: Option<f64>,
}

/// Error returned by [`Demand::new`] for invalid `(period, wcet)`
/// pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidDemandError {
    /// Index of the offending pair.
    pub index: usize,
    /// The offending `(period, wcet)` pair.
    pub pair: (f64, f64),
}

impl fmt::Display for InvalidDemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid (period, wcet) pair {:?} at index {}: both must be finite, period > 0, wcet >= 0",
            self.pair, self.index
        )
    }
}

impl std::error::Error for InvalidDemandError {}

impl Demand {
    /// Builds a demand from `(period, wcet)` pairs (milliseconds).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDemandError`] if any period is not positive and
    /// finite, or any WCET is negative or non-finite. A zero WCET is
    /// allowed (the task contributes no demand).
    pub fn new(tasks: Vec<(f64, f64)>) -> Result<Self, InvalidDemandError> {
        for (index, &pair) in tasks.iter().enumerate() {
            let (p, e) = pair;
            if !p.is_finite() || p <= 0.0 || !e.is_finite() || e < 0.0 {
                return Err(InvalidDemandError { index, pair });
            }
        }
        let utilization = tasks.iter().map(|(p, e)| e / p).sum();
        let hyperperiod = hyperperiod(tasks.iter().map(|&(p, _)| p));
        let (periods, wcets) = tasks.into_iter().unzip();
        Ok(Demand {
            periods,
            wcets,
            utilization,
            hyperperiod,
        })
    }

    /// The task periods, parallel to [`wcets`](Demand::wcets).
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// The task WCETs, parallel to [`periods`](Demand::periods).
    pub fn wcets(&self) -> &[f64] {
        &self.wcets
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// Whether the taskset is empty.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// The `(period, wcet)` pairs, zipped back from the SoA storage.
    pub fn pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.periods.iter().zip(&self.wcets).map(|(&p, &e)| (p, e))
    }

    /// Total utilization Σ eᵢ/pᵢ.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The taskset's hyperperiod (least common multiple of the
    /// periods), if one could be computed with reasonable precision.
    ///
    /// For the harmonic periods used throughout the paper this is just
    /// the maximum period. Returns `None` for an empty taskset or if
    /// the LCM overflows the precision budget (wildly incommensurate
    /// periods).
    pub fn hyperperiod(&self) -> Option<f64> {
        self.hyperperiod
    }

    /// Evaluates `dbf(t)`.
    pub fn dbf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.periods
            .iter()
            .zip(&self.wcets)
            .map(|(&p, &e)| ((t / p) + 1e-9).floor() * e)
            .sum()
    }

    /// Evaluates `dbf` at every checkpoint of `points` in one batched,
    /// task-major pass over the SoA storage, writing into `out`
    /// (cleared first; capacity is reused across calls).
    ///
    /// **Bit-identical** to `points.iter().map(|&t| self.dbf(t))`: the
    /// reference folds task terms into each point's sum in ascending
    /// task order starting from `0.0`, and the task-major accumulation
    /// here performs exactly those additions in exactly that order per
    /// point — only the *point* loop is interchanged into the inner
    /// position, where it runs branch-free over contiguous memory and
    /// vectorizes. (`kernel_conformance` pins the equality on random
    /// harmonic, incommensurate and zero-WCET demands.)
    ///
    /// Every point must be positive — true of any checkpoint stream,
    /// which is what this kernel exists to serve. (The reference
    /// `dbf` short-circuits `t ≤ 0` to `0.0` before summing; a
    /// per-element guard here would defeat vectorization, so
    /// non-positive points are rejected in debug builds instead.)
    pub fn dbf_many(&self, points: &[f64], out: &mut Vec<f64>) {
        debug_assert!(
            points.iter().all(|&t| t > 0.0),
            "dbf_many expects positive checkpoint times"
        );
        out.clear();
        out.resize(points.len(), 0.0);
        for (&p, &e) in self.periods.iter().zip(&self.wcets) {
            for (acc, &t) in out.iter_mut().zip(points) {
                *acc += ((t / p) + 1e-9).floor() * e;
            }
        }
    }

    /// The sorted, de-duplicated checkpoints (job deadlines) in
    /// `(0, horizon]` at which `dbf` increases.
    ///
    /// Implemented as a k-way merge over the per-task deadline
    /// progressions ([`kernel::merge_checkpoints`][crate::kernel]), so
    /// points come out in order without a sort pass.
    ///
    /// Two caps bound the enumeration, and both keep the **earliest**
    /// points when they bite (never a mid-task prefix, which the
    /// historical collect-sort path could produce):
    ///
    /// * at most `max_points` checkpoints are returned;
    /// * each task contributes at most `max_points` deadline multiples.
    ///
    /// Truncation by either cap is recorded in the thread's
    /// [`kernel::KernelCounters::checkpoints_truncated`][crate::kernel::KernelCounters]
    /// counter, which sweeps export so a bounded enumeration is never
    /// silent. Callers that need completeness should pass a horizon
    /// equal to the hyperperiod, which for the paper's harmonic
    /// tasksets is small.
    pub fn checkpoints(&self, horizon: f64, max_points: usize) -> Vec<f64> {
        let mut scratch = crate::kernel::MergeScratch::default();
        let mut points = Vec::new();
        crate::kernel::merge_checkpoints(
            &self.periods,
            &self.wcets,
            horizon,
            max_points,
            &mut scratch,
            |t| {
                points.push(t);
                true
            },
        );
        points
    }
}

/// Least common multiple of a set of positive periods, computed by
/// scaling to integer nanoseconds. Returns `None` if empty or if the
/// LCM exceeds 10¹² ns (1000 s of simulated time) — beyond that the
/// periods are effectively incommensurate and checkpoint enumeration
/// over a hyperperiod is useless; callers fall back to a bounded
/// horizon. (The cap is only checked when combining periods: a single
/// period is returned as-is, since it is its own — trivially
/// enumerable — hyperperiod.)
pub fn hyperperiod(periods: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut acc: Option<u128> = None;
    for p in periods {
        let ns = (p * 1e6).round() as u128;
        if ns == 0 {
            return None;
        }
        acc = Some(match acc {
            None => ns,
            Some(a) => {
                let l = lcm(a, ns);
                if l > 1_000_000_000_000 {
                    return None;
                }
                l
            }
        });
    }
    acc.map(|ns| ns as f64 / 1e6)
}

/// Iterative Euclid — constant stack depth regardless of how long the
/// remainder chain is (adversarial near-Fibonacci inputs recurse ~90
/// deep in the naive version; harmless for u128 but pointless).
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

fn lcm(a: u128, b: u128) -> u128 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Demand::new(vec![(10.0, 1.0)]).is_ok());
        assert!(Demand::new(vec![(0.0, 1.0)]).is_err());
        assert!(Demand::new(vec![(10.0, -1.0)]).is_err());
        assert!(Demand::new(vec![(f64::NAN, 1.0)]).is_err());
        assert!(Demand::new(vec![(10.0, 0.0)]).is_ok(), "zero wcet allowed");
        assert!(Demand::new(vec![]).is_ok(), "empty taskset allowed");
    }

    #[test]
    fn soa_accessors_agree() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        assert_eq!(d.periods(), &[10.0, 20.0]);
        assert_eq!(d.wcets(), &[1.0, 4.0]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.pairs().collect::<Vec<_>>(), vec![(10.0, 1.0), (20.0, 4.0)]);
        assert!(Demand::new(vec![]).unwrap().is_empty());
    }

    #[test]
    fn dbf_single_task() {
        let d = Demand::new(vec![(10.0, 2.0)]).unwrap();
        assert_eq!(d.dbf(0.0), 0.0);
        assert_eq!(d.dbf(9.9), 0.0);
        assert_eq!(d.dbf(10.0), 2.0);
        assert_eq!(d.dbf(19.9), 2.0);
        assert_eq!(d.dbf(20.0), 4.0);
        assert_eq!(d.dbf(100.0), 20.0);
    }

    #[test]
    fn dbf_multiple_tasks() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        assert_eq!(d.dbf(10.0), 1.0);
        assert_eq!(d.dbf(20.0), 2.0 + 4.0);
        assert_eq!(d.dbf(40.0), 4.0 + 8.0);
        assert!((d.utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dbf_many_matches_per_point_dbf_bitwise() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0), (7.3, 0.9)]).unwrap();
        let points = d.checkpoints(80.0, 1000);
        let mut batched = Vec::new();
        d.dbf_many(&points, &mut batched);
        assert_eq!(batched.len(), points.len());
        for (&t, &b) in points.iter().zip(&batched) {
            assert_eq!(b.to_bits(), d.dbf(t).to_bits(), "diverged at t={t}");
        }
        // The output buffer is cleared, not appended to.
        d.dbf_many(&points, &mut batched);
        assert_eq!(batched.len(), points.len());
        // Empty demands and empty point sets are both fine.
        d.dbf_many(&[], &mut batched);
        assert!(batched.is_empty());
        let empty = Demand::new(vec![]).unwrap();
        empty.dbf_many(&[1.0, 2.0], &mut batched);
        assert_eq!(batched, vec![0.0, 0.0]);
    }

    #[test]
    fn dbf_is_monotone() {
        let d = Demand::new(vec![(3.0, 1.0), (7.0, 2.0)]).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let t = i as f64 * 0.37;
            let v = d.dbf(t);
            assert!(v >= prev, "dbf must be non-decreasing");
            prev = v;
        }
    }

    #[test]
    fn checkpoints_are_deadlines() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        let cps = d.checkpoints(40.0, 100);
        assert_eq!(cps, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn checkpoints_skip_zero_wcet_tasks() {
        let d = Demand::new(vec![(10.0, 0.0), (20.0, 4.0)]).unwrap();
        assert_eq!(d.checkpoints(40.0, 100), vec![20.0, 40.0]);
    }

    #[test]
    fn checkpoints_respect_cap() {
        let d = Demand::new(vec![(1.0, 0.1)]).unwrap();
        assert_eq!(d.checkpoints(1e6, 50).len(), 50);
    }

    #[test]
    fn checkpoints_keep_earliest_points_across_tasks() {
        // The historical enumeration broke out of the *current task's*
        // loop once 4 × max_points raw entries were collected, so a
        // later task contributed only its first deadline and its early
        // multiples (here 7.5, 12.5, …) vanished from the truncated
        // result. The merge keeps the globally earliest points.
        let d = Demand::new(vec![(1.0, 0.1), (2.5, 0.1)]).unwrap();
        let cps = d.checkpoints(1e6, 50);
        assert_eq!(cps.len(), 50);
        for needle in [2.5, 7.5, 12.5, 17.5] {
            assert!(
                cps.iter().any(|&t| (t - needle).abs() < 1e-9),
                "expected early deadline {needle} in {cps:?}"
            );
        }
        let mut sorted = cps.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(cps, sorted, "merge must emit in ascending order");
    }

    #[test]
    fn hyperperiod_harmonic_is_max() {
        assert_eq!(hyperperiod([100.0, 200.0, 400.0]), Some(400.0));
        let d = Demand::new(vec![(100.0, 1.0), (400.0, 1.0)]).unwrap();
        assert_eq!(d.hyperperiod(), Some(400.0));
    }

    #[test]
    fn hyperperiod_non_harmonic() {
        assert_eq!(hyperperiod([4.0, 6.0]), Some(12.0));
        assert_eq!(hyperperiod(std::iter::empty::<f64>()), None);
    }

    #[test]
    fn hyperperiod_respects_lcm_overflow_boundary() {
        // lcm(1e6 ms, 2e5 ms) = 1e6 ms = exactly 1e12 ns: at the cap,
        // still representable.
        assert_eq!(hyperperiod([1_000_000.0, 200_000.0]), Some(1_000_000.0));
        // lcm(1e6 ms, 3e5 ms) = 3e6 ms = 3e12 ns: one combination past
        // the cap, rejected.
        assert_eq!(hyperperiod([1_000_000.0, 300_000.0]), None);
        // Sub-nanosecond period rounds to 0 ns: not representable.
        assert_eq!(hyperperiod([4.0e-7]), None);
        // Adjacent Fibonacci numbers (as ns) drive Euclid through its
        // longest remainder chain; the iterative gcd handles it and the
        // LCM is their product (gcd = 1), under the cap.
        assert_eq!(
            hyperperiod([0.514229, 0.832040]),
            Some(514_229.0 * 832_040.0 / 1e6)
        );
    }

    #[test]
    fn dbf_at_checkpoints_increases() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        let cps = d.checkpoints(40.0, 100);
        let mut prev = 0.0;
        for &t in &cps {
            let v = d.dbf(t);
            assert!(v > prev, "dbf must strictly increase at checkpoints");
            prev = v;
        }
    }
}
