//! EDF demand bound functions for implicit-deadline periodic tasksets.
//!
//! For a synchronous implicit-deadline periodic taskset
//! T = {(pᵢ, eᵢ)}, the demand bound function under EDF is
//!
//! ```text
//! dbf(t) = Σᵢ ⌊t / pᵢ⌋ · eᵢ
//! ```
//!
//! the maximum execution demand of jobs with both release and deadline
//! inside any window of length `t`. A resource supply `sbf` can feed
//! the taskset iff `dbf(t) ≤ sbf(t)` for all `t > 0`; since `dbf` only
//! increases at multiples of task periods and `sbf` is non-decreasing,
//! it suffices to check `t` at those *checkpoints*.

use std::fmt;

/// Validated demand description of an implicit-deadline periodic
/// taskset: a list of `(period, wcet)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Demand {
    tasks: Vec<(f64, f64)>,
    utilization: f64,
    hyperperiod: Option<f64>,
}

/// Error returned by [`Demand::new`] for invalid `(period, wcet)`
/// pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidDemandError {
    /// Index of the offending pair.
    pub index: usize,
    /// The offending `(period, wcet)` pair.
    pub pair: (f64, f64),
}

impl fmt::Display for InvalidDemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid (period, wcet) pair {:?} at index {}: both must be finite, period > 0, wcet >= 0",
            self.pair, self.index
        )
    }
}

impl std::error::Error for InvalidDemandError {}

impl Demand {
    /// Builds a demand from `(period, wcet)` pairs (milliseconds).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDemandError`] if any period is not positive and
    /// finite, or any WCET is negative or non-finite. A zero WCET is
    /// allowed (the task contributes no demand).
    pub fn new(tasks: Vec<(f64, f64)>) -> Result<Self, InvalidDemandError> {
        for (index, &pair) in tasks.iter().enumerate() {
            let (p, e) = pair;
            if !p.is_finite() || p <= 0.0 || !e.is_finite() || e < 0.0 {
                return Err(InvalidDemandError { index, pair });
            }
        }
        let utilization = tasks.iter().map(|(p, e)| e / p).sum();
        let hyperperiod = hyperperiod(tasks.iter().map(|&(p, _)| p));
        Ok(Demand {
            tasks,
            utilization,
            hyperperiod,
        })
    }

    /// The `(period, wcet)` pairs.
    pub fn tasks(&self) -> &[(f64, f64)] {
        &self.tasks
    }

    /// Total utilization Σ eᵢ/pᵢ.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The taskset's hyperperiod (least common multiple of the
    /// periods), if one could be computed with reasonable precision.
    ///
    /// For the harmonic periods used throughout the paper this is just
    /// the maximum period. Returns `None` for an empty taskset or if
    /// the LCM overflows the precision budget (wildly incommensurate
    /// periods).
    pub fn hyperperiod(&self) -> Option<f64> {
        self.hyperperiod
    }

    /// Evaluates `dbf(t)`.
    pub fn dbf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.tasks
            .iter()
            .map(|&(p, e)| ((t / p) + 1e-9).floor() * e)
            .sum()
    }

    /// The sorted, de-duplicated checkpoints (job deadlines) in
    /// `(0, horizon]` at which `dbf` increases.
    ///
    /// The number of checkpoints is capped at `max_points`; if the
    /// horizon would produce more, the list is truncated (callers that
    /// need completeness should pass a horizon equal to the
    /// hyperperiod, which for the paper's harmonic tasksets is small).
    pub fn checkpoints(&self, horizon: f64, max_points: usize) -> Vec<f64> {
        let mut points: Vec<f64> = Vec::new();
        for &(p, e) in &self.tasks {
            if e == 0.0 {
                continue;
            }
            let mut t = p;
            while t <= horizon + 1e-9 {
                points.push(t);
                t += p;
                if points.len() > 4 * max_points {
                    break;
                }
            }
        }
        points.sort_by(|a, b| a.partial_cmp(b).expect("checkpoints are finite"));
        points.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        points.truncate(max_points);
        points
    }
}

/// Least common multiple of a set of positive periods, computed by
/// scaling to integer nanoseconds. Returns `None` if empty or if the
/// LCM exceeds 10¹² ns (1000 s of simulated time) — beyond that the
/// periods are effectively incommensurate and checkpoint enumeration
/// over a hyperperiod is useless; callers fall back to a bounded
/// horizon.
pub fn hyperperiod(periods: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut acc: Option<u128> = None;
    for p in periods {
        let ns = (p * 1e6).round() as u128;
        if ns == 0 {
            return None;
        }
        acc = Some(match acc {
            None => ns,
            Some(a) => {
                let l = lcm(a, ns);
                if l > 1_000_000_000_000 {
                    return None;
                }
                l
            }
        });
    }
    acc.map(|ns| ns as f64 / 1e6)
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u128, b: u128) -> u128 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Demand::new(vec![(10.0, 1.0)]).is_ok());
        assert!(Demand::new(vec![(0.0, 1.0)]).is_err());
        assert!(Demand::new(vec![(10.0, -1.0)]).is_err());
        assert!(Demand::new(vec![(f64::NAN, 1.0)]).is_err());
        assert!(Demand::new(vec![(10.0, 0.0)]).is_ok(), "zero wcet allowed");
        assert!(Demand::new(vec![]).is_ok(), "empty taskset allowed");
    }

    #[test]
    fn dbf_single_task() {
        let d = Demand::new(vec![(10.0, 2.0)]).unwrap();
        assert_eq!(d.dbf(0.0), 0.0);
        assert_eq!(d.dbf(9.9), 0.0);
        assert_eq!(d.dbf(10.0), 2.0);
        assert_eq!(d.dbf(19.9), 2.0);
        assert_eq!(d.dbf(20.0), 4.0);
        assert_eq!(d.dbf(100.0), 20.0);
    }

    #[test]
    fn dbf_multiple_tasks() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        assert_eq!(d.dbf(10.0), 1.0);
        assert_eq!(d.dbf(20.0), 2.0 + 4.0);
        assert_eq!(d.dbf(40.0), 4.0 + 8.0);
        assert!((d.utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dbf_is_monotone() {
        let d = Demand::new(vec![(3.0, 1.0), (7.0, 2.0)]).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let t = i as f64 * 0.37;
            let v = d.dbf(t);
            assert!(v >= prev, "dbf must be non-decreasing");
            prev = v;
        }
    }

    #[test]
    fn checkpoints_are_deadlines() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        let cps = d.checkpoints(40.0, 100);
        assert_eq!(cps, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn checkpoints_skip_zero_wcet_tasks() {
        let d = Demand::new(vec![(10.0, 0.0), (20.0, 4.0)]).unwrap();
        assert_eq!(d.checkpoints(40.0, 100), vec![20.0, 40.0]);
    }

    #[test]
    fn checkpoints_respect_cap() {
        let d = Demand::new(vec![(1.0, 0.1)]).unwrap();
        assert_eq!(d.checkpoints(1e6, 50).len(), 50);
    }

    #[test]
    fn hyperperiod_harmonic_is_max() {
        assert_eq!(hyperperiod([100.0, 200.0, 400.0]), Some(400.0));
        let d = Demand::new(vec![(100.0, 1.0), (400.0, 1.0)]).unwrap();
        assert_eq!(d.hyperperiod(), Some(400.0));
    }

    #[test]
    fn hyperperiod_non_harmonic() {
        assert_eq!(hyperperiod([4.0, 6.0]), Some(12.0));
        assert_eq!(hyperperiod(std::iter::empty::<f64>()), None);
    }

    #[test]
    fn dbf_at_checkpoints_increases() {
        let d = Demand::new(vec![(10.0, 1.0), (20.0, 4.0)]).unwrap();
        let cps = d.checkpoints(40.0, 100);
        let mut prev = 0.0;
        for &t in &cps {
            let v = d.dbf(t);
            assert!(v > prev, "dbf must strictly increase at checkpoints");
            prev = v;
        }
    }
}
