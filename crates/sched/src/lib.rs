//! EDF scheduling theory and runtime scheduling structures.
//!
//! This crate provides the scheduling machinery the rest of the vC²M
//! reproduction builds on:
//!
//! * [`dbf`] — the EDF *demand bound function* of implicit-deadline
//!   periodic tasksets, and the checkpoint sets needed to evaluate it;
//! * [`sbf`] — the *supply bound function* of the periodic resource
//!   model (Shin & Lee 2003), which is the "existing compositional
//!   analysis" \[13\] the paper compares against, including the minimal
//!   budget computation;
//! * [`kernel`] — allocation-free incremental versions of the
//!   schedulability inner loops (checkpoint merge, reusable
//!   [`AnalysisWorkspace`](kernel::AnalysisWorkspace), per-thread
//!   kernel telemetry), bit-identical to the reference functions;
//! * [`server`] — runtime periodic-server state machines (budget
//!   accounting) used by the hypervisor simulator;
//! * [`edf`] — a deterministic EDF ready queue implementing the paper's
//!   tie-breaking rule (Section 3.2): equal absolute deadlines are
//!   ordered by period (smaller first), then by index (smaller first).
//!
//! # Example: the paper's worked example
//!
//! A task with period 10 ms and WCET 1 ms (utilization 0.1) needs a
//! periodic-resource budget of **5.5 ms** on a period-10 resource under
//! the existing analysis — 5.5× its utilization. This is the
//! abstraction overhead vC²M removes.
//!
//! ```
//! use vc2m_sched::{dbf::Demand, sbf::min_budget};
//!
//! let demand = Demand::new(vec![(10.0, 1.0)]).expect("valid taskset");
//! let theta = min_budget(&demand, 10.0).expect("feasible");
//! assert!((theta - 5.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dbf;
pub mod edf;
pub mod kernel;
pub mod sbf;
pub mod server;
