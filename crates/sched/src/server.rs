//! Runtime periodic-server budget accounting.
//!
//! The hypervisor schedules each VCPU as a *periodic server*: every
//! period Π the server's budget is replenished to Θ and its deadline
//! advances by Π; while a VCPU runs, its budget drains in real time;
//! at zero budget the VCPU is depleted and must wait for its next
//! replenishment. This is the budget model of Xen's RTDS scheduler
//! that the paper's prototype extends, and — combined with harmonic
//! periods, a common release offset and the deterministic EDF
//! tie-break — it yields the *well-regulated* execution pattern of
//! Theorem 2.

use vc2m_model::{SimDuration, SimTime, VcpuId};

/// Lifecycle state of a periodic server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerState {
    /// Has budget and is waiting to be picked by the scheduler.
    Ready,
    /// Currently executing on a core.
    Running,
    /// Budget exhausted; waiting for the next replenishment.
    Depleted,
}

/// A periodic server: the runtime incarnation of a VCPU
/// (period Π, full budget Θ, remaining budget, release/deadline
/// bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicServer {
    id: VcpuId,
    period: SimDuration,
    full_budget: SimDuration,
    remaining: SimDuration,
    /// Start of the current period (last release).
    release: SimTime,
    /// Absolute deadline = release + period.
    deadline: SimTime,
    state: ServerState,
}

impl PeriodicServer {
    /// Creates a server first released at `release`, with its budget
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the budget exceeds the period.
    pub fn new(id: VcpuId, period: SimDuration, budget: SimDuration, release: SimTime) -> Self {
        assert!(period > SimDuration::ZERO, "server period must be positive");
        assert!(
            budget <= period,
            "server budget {budget} exceeds period {period}"
        );
        PeriodicServer {
            id,
            period,
            full_budget: budget,
            remaining: budget,
            release,
            deadline: release + period,
            state: if budget > SimDuration::ZERO {
                ServerState::Ready
            } else {
                ServerState::Depleted
            },
        }
    }

    /// The VCPU this server realizes.
    pub fn id(&self) -> VcpuId {
        self.id
    }

    /// The server period Π.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The full per-period budget Θ.
    pub fn full_budget(&self) -> SimDuration {
        self.full_budget
    }

    /// Budget remaining in the current period.
    pub fn remaining_budget(&self) -> SimDuration {
        self.remaining
    }

    /// Start of the current period.
    pub fn release(&self) -> SimTime {
        self.release
    }

    /// Absolute deadline of the current period.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Moves the first release to `release` (the release
    /// synchronization hypercall of Section 3.2: the VCPU's first
    /// release is aligned with its task's).
    ///
    /// # Panics
    ///
    /// Panics if the server has already started running — release
    /// synchronization happens at task initialization only.
    pub fn synchronize_release(&mut self, release: SimTime) {
        assert!(
            self.remaining == self.full_budget,
            "release synchronization after execution started"
        );
        self.release = release;
        self.deadline = release + self.period;
    }

    /// Replenishes the budget to Θ and advances the period window so
    /// that `now` falls inside it. Called by the scheduler's
    /// replenishment handler at period boundaries.
    ///
    /// Periods with no execution are skipped wholesale (the server's
    /// window always advances by an integral number of periods, keeping
    /// releases aligned to `release₀ + k·Π` — the alignment Theorem 2's
    /// well-regulated pattern requires).
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the current deadline (replenishing
    /// early would violate the periodic-server semantics).
    pub fn replenish(&mut self, now: SimTime) {
        assert!(
            now >= self.deadline,
            "replenish at {now} before deadline {deadline}",
            deadline = self.deadline
        );
        let elapsed = now.since(self.release).as_ns();
        let periods = elapsed / self.period.as_ns();
        debug_assert!(periods >= 1);
        self.release = SimTime(self.release.as_ns() + periods * self.period.as_ns());
        self.deadline = self.release + self.period;
        self.remaining = self.full_budget;
        if self.state != ServerState::Running {
            self.state = if self.full_budget > SimDuration::ZERO {
                ServerState::Ready
            } else {
                ServerState::Depleted
            };
        }
    }

    /// Marks the server as running on a core.
    ///
    /// # Panics
    ///
    /// Panics unless the server is `Ready`.
    pub fn start_running(&mut self) {
        assert_eq!(
            self.state,
            ServerState::Ready,
            "only a ready server can start running"
        );
        self.state = ServerState::Running;
    }

    /// Consumes `used` of the budget after running, and returns to
    /// `Ready` or `Depleted` accordingly.
    ///
    /// # Panics
    ///
    /// Panics unless the server is `Running`, or if `used` exceeds the
    /// remaining budget.
    pub fn stop_running(&mut self, used: SimDuration) {
        assert_eq!(self.state, ServerState::Running, "server was not running");
        assert!(
            used <= self.remaining,
            "consumed {used} exceeds remaining budget {remaining}",
            remaining = self.remaining
        );
        self.remaining = self.remaining - used;
        self.state = if self.remaining > SimDuration::ZERO {
            ServerState::Ready
        } else {
            ServerState::Depleted
        };
    }

    /// Time until the budget would run out if the server ran
    /// continuously from now on.
    pub fn budget_horizon(&self) -> SimDuration {
        self.remaining
    }

    /// Changes the per-period budget Θ (a dynamic reallocation, e.g. a
    /// vCAT mode change altering the core's resources). The new budget
    /// takes full effect at the next replenishment; the current
    /// period's remaining budget is capped at the new value so a
    /// shrinking budget cannot be overspent.
    ///
    /// # Panics
    ///
    /// Panics if the server is currently running (callers must suspend
    /// it first so in-flight consumption is accounted), or if the new
    /// budget exceeds the period.
    pub fn set_full_budget(&mut self, budget: SimDuration) {
        assert_ne!(
            self.state,
            ServerState::Running,
            "suspend the server before changing its budget"
        );
        assert!(
            budget <= self.period,
            "new budget {budget} exceeds period {period}",
            period = self.period
        );
        self.full_budget = budget;
        self.remaining = self.remaining.min(budget);
        self.state = if self.remaining > SimDuration::ZERO {
            ServerState::Ready
        } else {
            ServerState::Depleted
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(period_ms: f64, budget_ms: f64) -> PeriodicServer {
        PeriodicServer::new(
            VcpuId(0),
            SimDuration::from_ms(period_ms),
            SimDuration::from_ms(budget_ms),
            SimTime::ZERO,
        )
    }

    #[test]
    fn new_server_is_ready_with_full_budget() {
        let s = server(10.0, 4.0);
        assert_eq!(s.state(), ServerState::Ready);
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(4.0));
        assert_eq!(s.deadline(), SimTime::from_ms(10.0));
    }

    #[test]
    #[should_panic(expected = "exceeds period")]
    fn budget_above_period_rejected() {
        let _ = server(10.0, 11.0);
    }

    #[test]
    fn run_and_deplete() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.stop_running(SimDuration::from_ms(1.5));
        assert_eq!(s.state(), ServerState::Ready);
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(2.5));
        s.start_running();
        s.stop_running(SimDuration::from_ms(2.5));
        assert_eq!(s.state(), ServerState::Depleted);
    }

    #[test]
    #[should_panic(expected = "exceeds remaining budget")]
    fn overconsumption_panics() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.stop_running(SimDuration::from_ms(5.0));
    }

    #[test]
    fn replenish_advances_one_period() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.stop_running(SimDuration::from_ms(4.0));
        s.replenish(SimTime::from_ms(10.0));
        assert_eq!(s.state(), ServerState::Ready);
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(4.0));
        assert_eq!(s.release(), SimTime::from_ms(10.0));
        assert_eq!(s.deadline(), SimTime::from_ms(20.0));
    }

    #[test]
    fn replenish_skips_idle_periods_keeping_alignment() {
        let mut s = server(10.0, 4.0);
        // Replenished late, at t = 35: window must advance to [30, 40),
        // staying aligned to multiples of the period.
        s.replenish(SimTime::from_ms(35.0));
        assert_eq!(s.release(), SimTime::from_ms(30.0));
        assert_eq!(s.deadline(), SimTime::from_ms(40.0));
    }

    #[test]
    #[should_panic(expected = "before deadline")]
    fn early_replenish_panics() {
        let mut s = server(10.0, 4.0);
        s.replenish(SimTime::from_ms(5.0));
    }

    #[test]
    fn release_synchronization_shifts_window() {
        let mut s = server(10.0, 4.0);
        s.synchronize_release(SimTime::from_ms(3.0));
        assert_eq!(s.release(), SimTime::from_ms(3.0));
        assert_eq!(s.deadline(), SimTime::from_ms(13.0));
        // Later replenishments stay aligned to 3 + 10k.
        s.replenish(SimTime::from_ms(27.0));
        assert_eq!(s.release(), SimTime::from_ms(23.0));
    }

    #[test]
    #[should_panic(expected = "after execution started")]
    fn late_synchronization_panics() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.stop_running(SimDuration::from_ms(1.0));
        s.synchronize_release(SimTime::from_ms(5.0));
    }

    #[test]
    fn budget_changes_apply_with_cap() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.stop_running(SimDuration::from_ms(1.0)); // 3.0 left
                                                   // Shrink below the remaining: capped immediately.
        s.set_full_budget(SimDuration::from_ms(2.0));
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(2.0));
        // Grow: remaining unchanged this period, full from next.
        s.set_full_budget(SimDuration::from_ms(6.0));
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(2.0));
        s.start_running();
        s.stop_running(SimDuration::from_ms(2.0));
        assert_eq!(s.state(), ServerState::Depleted);
        s.replenish(SimTime::from_ms(10.0));
        assert_eq!(s.remaining_budget(), SimDuration::from_ms(6.0));
    }

    #[test]
    #[should_panic(expected = "suspend the server")]
    fn budget_change_while_running_panics() {
        let mut s = server(10.0, 4.0);
        s.start_running();
        s.set_full_budget(SimDuration::from_ms(2.0));
    }

    #[test]
    fn zero_budget_server_is_depleted() {
        let s = server(10.0, 0.0);
        assert_eq!(s.state(), ServerState::Depleted);
    }
}
