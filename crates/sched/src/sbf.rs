//! Periodic resource model: supply bound function and minimal budgets.
//!
//! This module implements the "existing compositional scheduling
//! analysis" the paper uses as its baseline (reference \[13\]: Shin &
//! Lee, *Periodic Resource Model for Compositional Real-Time
//! Guarantees*, RTSS 2003).
//!
//! A periodic resource Γ = (Π, Θ) supplies Θ units of execution every
//! period Π, in the worst case as late as possible. Its supply bound
//! function — the minimum supply in any window of length `t` — is
//!
//! ```text
//! sbf(t) = 0                                        if t ≤ Π − Θ
//!        = k·Θ + max(0, t' − k·Π − (Π − Θ))         otherwise,
//!   where t' = t − (Π − Θ), k = ⌊t' / Π⌋
//! ```
//!
//! A taskset with demand `dbf` is EDF-schedulable on Γ iff
//! `dbf(t) ≤ sbf(t)` at every checkpoint `t`. [`min_budget`] inverts
//! this: the smallest Θ making a given demand schedulable on a
//! period-Π resource — the quantity whose inflation over the taskset
//! utilization is the *abstraction overhead* vC²M eliminates.

use crate::dbf::Demand;

/// A periodic resource Γ = (Π, Θ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicResource {
    period: f64,
    budget: f64,
}

impl PeriodicResource {
    /// Creates a periodic resource with the given period and budget
    /// (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive and finite, or the budget
    /// is negative, non-finite, or exceeds the period.
    pub fn new(period: f64, budget: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "resource period must be positive and finite, got {period}"
        );
        assert!(
            budget.is_finite() && (0.0..=period).contains(&budget),
            "resource budget must lie in [0, period], got {budget} (period {period})"
        );
        PeriodicResource { period, budget }
    }

    /// The resource period Π.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The resource budget Θ.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The resource bandwidth Θ/Π.
    pub fn bandwidth(&self) -> f64 {
        self.budget / self.period
    }

    /// Evaluates the supply bound function at `t`.
    pub fn sbf(&self, t: f64) -> f64 {
        let blackout = self.period - self.budget;
        if t <= blackout || self.budget == 0.0 {
            return 0.0;
        }
        let t_eff = t - blackout;
        let k = (t_eff / self.period + 1e-12).floor();
        let supplied = k * self.budget;
        let partial = (t_eff - k * self.period - blackout).max(0.0);
        supplied + partial.min(self.budget)
    }

    /// The linear lower bound on the supply:
    /// `lsbf(t) = (Θ/Π)·(t − 2(Π − Θ))`, clamped at zero. Useful for
    /// quick infeasibility screening.
    pub fn lsbf(&self, t: f64) -> f64 {
        (self.bandwidth() * (t - 2.0 * (self.period - self.budget))).max(0.0)
    }

    /// Whether `demand` is EDF-schedulable on this resource.
    ///
    /// Checks `dbf(t) ≤ sbf(t)` at every deadline checkpoint up to the
    /// demand's hyperperiod (or a capped horizon if the hyperperiod is
    /// unavailable), plus the long-run bandwidth condition
    /// `U ≤ Θ/Π`, which extends the checkpoint argument beyond the
    /// horizon when the resource period divides the hyperperiod (true
    /// for the harmonic workloads of the paper, where Π is chosen as
    /// the minimum task period).
    pub fn can_schedule(&self, demand: &Demand) -> bool {
        if demand.utilization() > self.bandwidth() + 1e-12 {
            return false;
        }
        let horizon = demand
            .hyperperiod()
            .unwrap_or(10_000.0)
            .max(2.0 * self.period);
        for t in demand.checkpoints(horizon, 100_000) {
            if demand.dbf(t) > self.sbf(t) + 1e-9 {
                return false;
            }
        }
        true
    }
}

/// Computes the minimal budget Θ such that `demand` is
/// EDF-schedulable on a periodic resource with period `period`.
///
/// Returns `None` if even Θ = Π (a dedicated processor) cannot
/// schedule the demand.
///
/// The feasible set of budgets is upward-closed (more supply never
/// hurts), so a binary search on the schedulability predicate is exact
/// up to the `1e-7` ms tolerance used here.
///
/// # Panics
///
/// Panics if `period` is not positive and finite.
pub fn min_budget(demand: &Demand, period: f64) -> Option<f64> {
    assert!(
        period.is_finite() && period > 0.0,
        "resource period must be positive and finite, got {period}"
    );
    if demand.tasks().iter().all(|&(_, e)| e == 0.0) {
        return Some(0.0);
    }
    // Precompute the checkpoints and the demand at each one — they do
    // not depend on the candidate budget, and the binary search below
    // evaluates the predicate dozens of times.
    let horizon = demand.hyperperiod().unwrap_or(10_000.0).max(2.0 * period);
    let points = demand.checkpoints(horizon, 100_000);
    let demands: Vec<f64> = points.iter().map(|&t| demand.dbf(t)).collect();
    let feasible = |theta: f64| {
        if demand.utilization() > theta / period + 1e-12 {
            return false;
        }
        let resource = PeriodicResource::new(period, theta);
        points
            .iter()
            .zip(&demands)
            .all(|(&t, &d)| d <= resource.sbf(t) + 1e-9)
    };
    if !feasible(period) {
        return None;
    }
    // Lower bound: bandwidth at least the utilization.
    let mut lo = (demand.utilization() * period).min(period);
    if feasible(lo) {
        return Some(lo);
    }
    let mut hi = period;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must lie in [0, period]")]
    fn budget_above_period_rejected() {
        let _ = PeriodicResource::new(10.0, 11.0);
    }

    #[test]
    fn sbf_shape() {
        let r = PeriodicResource::new(10.0, 4.0);
        // Blackout of 2(Π−Θ) = 12 at worst, first supply after Π−Θ = 6...
        assert_eq!(r.sbf(0.0), 0.0);
        assert_eq!(r.sbf(6.0), 0.0);
        // After the blackout, supply ramps at slope 1 for Θ time units
        // starting at 2(Π−Θ) = 12.
        assert_eq!(r.sbf(12.0), 0.0);
        assert_eq!(r.sbf(13.0), 1.0);
        assert_eq!(r.sbf(16.0), 4.0);
        // Then flat until the next period's supply.
        assert_eq!(r.sbf(22.0), 4.0);
        assert_eq!(r.sbf(23.0), 5.0);
    }

    #[test]
    fn sbf_full_budget_is_identity_minus_nothing() {
        // Θ = Π: a dedicated processor; sbf(t) = t.
        let r = PeriodicResource::new(5.0, 5.0);
        for t in [0.0, 1.0, 2.5, 7.0, 100.0] {
            assert!((r.sbf(t) - t).abs() < 1e-9, "sbf({t}) = {}", r.sbf(t));
        }
    }

    #[test]
    fn sbf_zero_budget_is_zero() {
        let r = PeriodicResource::new(5.0, 0.0);
        assert_eq!(r.sbf(100.0), 0.0);
    }

    #[test]
    fn sbf_monotone_and_bounded_by_t() {
        let r = PeriodicResource::new(7.0, 3.0);
        let mut prev = 0.0;
        for i in 0..1000 {
            let t = i as f64 * 0.1;
            let v = r.sbf(t);
            assert!(v >= prev - 1e-12, "sbf must be non-decreasing");
            assert!(v <= t + 1e-9, "sbf(t) must not exceed t");
            prev = v;
        }
    }

    #[test]
    fn lsbf_lower_bounds_sbf() {
        let r = PeriodicResource::new(9.0, 4.0);
        for i in 0..500 {
            let t = i as f64 * 0.2;
            assert!(
                r.lsbf(t) <= r.sbf(t) + 1e-9,
                "lsbf({t}) = {} > sbf({t}) = {}",
                r.lsbf(t),
                r.sbf(t)
            );
        }
    }

    #[test]
    fn paper_example_budget_is_5_5() {
        // Introduction: task (period 10, WCET 1) needs budget 5.5 on a
        // period-10 periodic resource — 5.5× its utilization of 0.1.
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let theta = min_budget(&demand, 10.0).expect("feasible");
        assert!((theta - 5.5).abs() < 1e-6, "got {theta}");
    }

    #[test]
    fn min_budget_monotone_in_demand() {
        let light = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let heavy = Demand::new(vec![(10.0, 2.0)]).unwrap();
        let tl = min_budget(&light, 5.0).unwrap();
        let th = min_budget(&heavy, 5.0).unwrap();
        assert!(th > tl);
    }

    #[test]
    fn min_budget_smaller_period_less_overhead() {
        // A finer-grained server tracks the task more closely, so the
        // required *bandwidth* shrinks as the resource period shrinks.
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let bw_coarse = min_budget(&demand, 10.0).unwrap() / 10.0;
        let bw_fine = min_budget(&demand, 2.0).unwrap() / 2.0;
        assert!(bw_fine < bw_coarse);
    }

    #[test]
    fn min_budget_infeasible() {
        // Utilization 1.2 cannot fit on any single resource.
        let demand = Demand::new(vec![(10.0, 12.0)]).unwrap();
        assert_eq!(min_budget(&demand, 10.0), None);
    }

    #[test]
    fn min_budget_zero_demand() {
        let demand = Demand::new(vec![(10.0, 0.0)]).unwrap();
        assert_eq!(min_budget(&demand, 5.0), Some(0.0));
    }

    #[test]
    fn min_budget_result_schedules_and_is_tight() {
        let demand = Demand::new(vec![(10.0, 1.0), (20.0, 3.0), (40.0, 4.0)]).unwrap();
        let period = 10.0;
        let theta = min_budget(&demand, period).expect("feasible");
        assert!(PeriodicResource::new(period, theta).can_schedule(&demand));
        let slightly_less = (theta - 1e-3).max(0.0);
        assert!(
            !PeriodicResource::new(period, slightly_less).can_schedule(&demand),
            "budget {theta} is not tight"
        );
        // And the abstraction overhead is real: budget bandwidth
        // strictly exceeds taskset utilization.
        assert!(theta / period > demand.utilization());
    }

    #[test]
    fn dedicated_resource_schedules_up_to_full_utilization() {
        let demand = Demand::new(vec![(10.0, 5.0), (20.0, 10.0)]).unwrap(); // U = 1.0
        assert!(PeriodicResource::new(10.0, 10.0).can_schedule(&demand));
    }
}
