//! Periodic resource model: supply bound function and minimal budgets.
//!
//! This module implements the "existing compositional scheduling
//! analysis" the paper uses as its baseline (reference \[13\]: Shin &
//! Lee, *Periodic Resource Model for Compositional Real-Time
//! Guarantees*, RTSS 2003).
//!
//! A periodic resource Γ = (Π, Θ) supplies Θ units of execution every
//! period Π, in the worst case as late as possible. Its supply bound
//! function — the minimum supply in any window of length `t` — is
//!
//! ```text
//! sbf(t) = 0                                        if t ≤ Π − Θ
//!        = k·Θ + max(0, t' − k·Π − (Π − Θ))         otherwise,
//!   where t' = t − (Π − Θ), k = ⌊t' / Π⌋
//! ```
//!
//! A taskset with demand `dbf` is EDF-schedulable on Γ iff
//! `dbf(t) ≤ sbf(t)` at every checkpoint `t`. [`min_budget`] inverts
//! this: the smallest Θ making a given demand schedulable on a
//! period-Π resource — the quantity whose inflation over the taskset
//! utilization is the *abstraction overhead* vC²M eliminates.

use crate::dbf::Demand;
use crate::kernel::analysis_horizon;

/// A periodic resource Γ = (Π, Θ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicResource {
    period: f64,
    budget: f64,
}

impl PeriodicResource {
    /// Creates a periodic resource with the given period and budget
    /// (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive and finite, or the budget
    /// is negative, non-finite, or exceeds the period.
    pub fn new(period: f64, budget: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "resource period must be positive and finite, got {period}"
        );
        assert!(
            budget.is_finite() && (0.0..=period).contains(&budget),
            "resource budget must lie in [0, period], got {budget} (period {period})"
        );
        PeriodicResource { period, budget }
    }

    /// The resource period Π.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The resource budget Θ.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The resource bandwidth Θ/Π.
    pub fn bandwidth(&self) -> f64 {
        self.budget / self.period
    }

    /// Evaluates the supply bound function at `t`.
    pub fn sbf(&self, t: f64) -> f64 {
        let blackout = self.period - self.budget;
        if t <= blackout || self.budget == 0.0 {
            return 0.0;
        }
        let t_eff = t - blackout;
        let k = (t_eff / self.period + 1e-12).floor();
        let supplied = k * self.budget;
        let partial = (t_eff - k * self.period - blackout).max(0.0);
        supplied + partial.min(self.budget)
    }

    /// Evaluates [`sbf`](Self::sbf) at every point of `points` in one
    /// batched pass, writing into `out` (cleared first; capacity is
    /// reused across calls).
    ///
    /// **Bit-identical** per point to the scalar `sbf`: the blackout
    /// `Π − Θ` is hoisted out of the loop (it depends only on the
    /// resource — the same hoist `probe_active` performs), and every
    /// remaining expression is evaluated exactly as the scalar version
    /// writes it. A checkpoint stream's supply values can therefore be
    /// materialized in one cache-friendly sweep without re-deriving
    /// the resource constants per point.
    pub fn sbf_many(&self, points: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(points.len());
        let blackout = self.period - self.budget;
        if self.budget == 0.0 {
            out.resize(points.len(), 0.0);
            return;
        }
        for &t in points {
            let supply = if t <= blackout {
                0.0
            } else {
                let t_eff = t - blackout;
                let k = (t_eff / self.period + 1e-12).floor();
                let supplied = k * self.budget;
                let partial = (t_eff - k * self.period - blackout).max(0.0);
                supplied + partial.min(self.budget)
            };
            out.push(supply);
        }
    }

    /// The linear lower bound on the supply:
    /// `lsbf(t) = (Θ/Π)·(t − 2(Π − Θ))`, clamped at zero. Useful for
    /// quick infeasibility screening.
    pub fn lsbf(&self, t: f64) -> f64 {
        (self.bandwidth() * (t - 2.0 * (self.period - self.budget))).max(0.0)
    }

    /// Whether `demand` is EDF-schedulable on this resource.
    ///
    /// Checks `dbf(t) ≤ sbf(t)` at every deadline checkpoint up to the
    /// demand's hyperperiod (or a capped horizon if the hyperperiod is
    /// unavailable), plus the long-run bandwidth condition
    /// `U ≤ Θ/Π`, which extends the checkpoint argument beyond the
    /// horizon when the resource period divides the hyperperiod (true
    /// for the harmonic workloads of the paper, where Π is chosen as
    /// the minimum task period).
    pub fn can_schedule(&self, demand: &Demand) -> bool {
        if demand.utilization() > self.bandwidth() + 1e-12 {
            return false;
        }
        let horizon = analysis_horizon(demand, self.period);
        for t in demand.checkpoints(horizon, crate::kernel::MAX_CHECKPOINTS) {
            if demand.dbf(t) > self.sbf(t) + 1e-9 {
                return false;
            }
        }
        true
    }
}

/// Computes the minimal budget Θ such that `demand` is
/// EDF-schedulable on a periodic resource with period `period`.
///
/// Returns `None` if even Θ = Π (a dedicated processor) cannot
/// schedule the demand.
///
/// The feasible set of budgets is upward-closed (more supply never
/// hurts), so a binary search on the schedulability predicate is exact
/// up to the `1e-7` ms tolerance used here.
///
/// # Panics
///
/// Panics if `period` is not positive and finite.
pub fn min_budget(demand: &Demand, period: f64) -> Option<f64> {
    assert!(
        period.is_finite() && period > 0.0,
        "resource period must be positive and finite, got {period}"
    );
    if demand.wcets().iter().all(|&e| e == 0.0) {
        return Some(0.0);
    }
    // Precompute the checkpoints and the demand at each one — they do
    // not depend on the candidate budget, and the binary search below
    // evaluates the predicate dozens of times.
    let horizon = analysis_horizon(demand, period);
    let points = demand.checkpoints(horizon, crate::kernel::MAX_CHECKPOINTS);
    let demands: Vec<f64> = points.iter().map(|&t| demand.dbf(t)).collect();
    let feasible = |theta: f64| {
        if demand.utilization() > theta / period + 1e-12 {
            return false;
        }
        let resource = PeriodicResource::new(period, theta);
        points
            .iter()
            .zip(&demands)
            .all(|(&t, &d)| d <= resource.sbf(t) + 1e-9)
    };
    if !feasible(period) {
        return None;
    }
    // Lower bound: bandwidth at least the utilization.
    let mut lo = (demand.utilization() * period).min(period);
    if feasible(lo) {
        return Some(lo);
    }
    let mut hi = period;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    Some(hi)
}

/// Repeated minimal-budget solver for demands sharing one period
/// vector.
///
/// The existing-CSA analysis ([`min_budget`] behind
/// `vc2m_analysis::existing`) evaluates the minimal budget once per
/// allocation cell of a budget surface — hundreds of calls whose
/// demands share *periods* and differ only in their WCETs. The horizon,
/// the checkpoints and the per-checkpoint job counts ⌊t/pᵢ⌋ depend only
/// on the periods, so this solver computes them once and repeats only
/// the WCET-dependent part per cell.
///
/// Results are **bit-identical** to `min_budget(&Demand::new(periods ⨯
/// wcets), period)`: every floating-point operation of the search is
/// performed in the same order on the same values (`solver_matches_
/// min_budget_bitwise` below, and the sweep conformance suite, pin
/// this).
#[derive(Debug, Clone)]
pub struct MinBudgetSolver {
    periods: Vec<f64>,
    period: f64,
    points: Vec<f64>,
    /// `floors[i · points.len() + j] = ⌊points[j] / periods[i] + 1e-9⌋`
    /// — the job count of task `i` at checkpoint `j`, stored flat and
    /// **task-major** so the per-cell demand fill streams one task's
    /// contiguous row across all checkpoints at a time (the batched
    /// layout of [`Demand::dbf_many`], vectorizable and allocated as a
    /// single block instead of one `Vec` per checkpoint).
    floors: Vec<f64>,
    /// Reusable per-call buffer for the checkpoint demands (the solver
    /// is called once per surface cell; the allocation is not).
    demands: std::cell::RefCell<Vec<f64>>,
    /// Reusable `(active, retained)` index buffers for the active-set
    /// bisection (see [`MinBudgetSolver::min_budget`]).
    active: std::cell::RefCell<(Vec<u32>, Vec<u32>)>,
}

impl MinBudgetSolver {
    /// Precomputes the checkpoint structure for demands over
    /// `task_periods` analyzed against a resource of period `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` or any task period is not positive and
    /// finite.
    pub fn new(task_periods: &[f64], period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "resource period must be positive and finite, got {period}"
        );
        // A unit-WCET proxy demand: checkpoints and hyperperiod depend
        // only on the periods, except that zero-WCET tasks are skipped
        // — the all-positive fast path of `min_budget` below relies on
        // this, and mixed-zero WCET vectors fall back to the reference
        // implementation.
        let proxy = Demand::new(task_periods.iter().map(|&p| (p, 1.0)).collect())
            .expect("task periods must be positive and finite");
        let horizon = analysis_horizon(&proxy, period);
        let points = proxy.checkpoints(horizon, crate::kernel::MAX_CHECKPOINTS);
        let mut floors = vec![0.0; task_periods.len() * points.len()];
        for (row, &p) in floors.chunks_exact_mut(points.len().max(1)).zip(task_periods) {
            for (slot, &t) in row.iter_mut().zip(&points) {
                *slot = ((t / p) + 1e-9).floor();
            }
        }
        MinBudgetSolver {
            periods: task_periods.to_vec(),
            period,
            points,
            floors,
            demands: std::cell::RefCell::new(Vec::new()),
            active: std::cell::RefCell::new((Vec::new(), Vec::new())),
        }
    }

    /// The resource period Π this solver was built for.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Computes the minimal budget for the demand pairing this solver's
    /// periods with `wcets`, bit-identical to [`min_budget`] on the
    /// corresponding [`Demand`].
    ///
    /// # Panics
    ///
    /// Panics if `wcets` has the wrong length or contains a negative or
    /// non-finite WCET.
    // The negated comparisons are load-bearing: `!(e > 0.0)` routes
    // NaN WCETs to the fallback (where `Demand::new` rejects them),
    // and the feasibility guards must evaluate the reference's exact
    // boolean expressions, negation included.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn min_budget(&self, wcets: &[f64]) -> Option<f64> {
        assert_eq!(
            wcets.len(),
            self.periods.len(),
            "WCET vector length must match the solver's period vector"
        );
        if wcets.iter().all(|&e| e == 0.0) {
            return Some(0.0);
        }
        if wcets.iter().any(|&e| !(e > 0.0)) {
            // A mix of zero and positive WCETs changes the checkpoint
            // set (zero-WCET tasks contribute no deadlines); defer to
            // the reference implementation rather than replicate that
            // rarely-exercised branch. Negative or non-finite WCETs
            // also land here, where `Demand::new` rejects them.
            let demand =
                Demand::new(self.periods.iter().copied().zip(wcets.iter().copied()).collect())
                    .expect("solver WCETs must be finite and non-negative");
            return min_budget(&demand, self.period);
        }
        // From here on the arithmetic mirrors `min_budget` operation
        // for operation: same folds, same order, same tolerances. The
        // *set of points checked* per probe shrinks (see
        // [`probe_active`]), but every per-point comparison that is
        // performed uses the exact float expressions of
        // [`PeriodicResource::sbf`], and skipped comparisons are
        // provably `true` — so every probe's boolean, hence the
        // bisection trajectory, hence the returned bits, are identical
        // to the reference.
        crate::kernel::tick(|c| c.solver_calls += 1);
        let utilization: f64 = self.periods.iter().zip(wcets).map(|(p, e)| e / p).sum();
        let mut demands = self.demands.borrow_mut();
        demands.clear();
        demands.resize(self.points.len(), 0.0);
        // Batched demand fill over the task-major floor table: each
        // task's row adds `kᵢⱼ · eᵢ` into every checkpoint's
        // accumulator. Per checkpoint the additions happen in
        // ascending task order from 0.0 — the exact fold the
        // historical per-checkpoint dot product (and the reference
        // `dbf`) performs, so the sums are bit-identical; only the
        // loop order changed, putting the contiguous, vectorizable
        // sweep innermost.
        for (row, &e) in self.floors.chunks_exact(self.points.len().max(1)).zip(wcets) {
            for (acc, &k) in demands.iter_mut().zip(row) {
                *acc += k * e;
            }
        }
        let demands = &*demands;
        let mut guard = self.active.borrow_mut();
        let (active, retained) = &mut *guard;
        bisect_active(self.period, utilization, &self.points, demands, active, retained)
    }
}

/// Margin for retiring a checkpoint from the active set: a point
/// satisfied by more than this at an infeasible probe θ is satisfied
/// at every larger θ and is never checked again.
///
/// Soundness: the mathematical sbf is non-decreasing in Θ for fixed
/// (t, Π), and the float evaluation in [`PeriodicResource::sbf`]
/// (< 10 operations on values bounded by the `1e6` ms horizon cap)
/// deviates from it by at most a few ulps of the horizon,
/// ≈ `1e-9`. A retired point has `d ≤ sbf(θ) − 1e-6`, so at any
/// θ' ≥ θ the *computed* supply is within `2·1e-9` of a value at
/// least `sbf(θ)`, leaving `d ≤ sbf(θ') + 1e-9` true by a margin
/// of ~`1e-6` — the skipped comparison is provably `true`.
const DROP_MARGIN: f64 = 1e-6;

/// One feasibility probe at budget `theta` over the active checkpoint
/// subset of `points`/`demands`. When the probe is infeasible (θ
/// becomes the new bisection `lo`, so all later probes are larger),
/// comfortably satisfied points are retired from `active`.
///
/// Shared by [`MinBudgetSolver::min_budget`] and
/// [`AnalysisWorkspace::min_budget`](crate::kernel::AnalysisWorkspace::min_budget)
/// — both thread caller-owned `active`/`retained` buffers through it,
/// so the probe itself never allocates.
// Negated comparisons mirror the reference's booleans exactly; see
// `MinBudgetSolver::min_budget`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline]
pub(crate) fn probe_active(
    period: f64,
    theta: f64,
    points: &[f64],
    demands: &[f64],
    active: &mut Vec<u32>,
    retained: &mut Vec<u32>,
) -> bool {
    // `PeriodicResource::sbf` with `blackout` hoisted out of the
    // point loop — same expressions, same rounding, per point.
    let blackout = period - theta;
    retained.clear();
    let mut feasible = true;
    for &j in active.iter() {
        let t = points[j as usize];
        let d = demands[j as usize];
        let supply = if t <= blackout || theta == 0.0 {
            0.0
        } else {
            let t_eff = t - blackout;
            let k = (t_eff / period + 1e-12).floor();
            let supplied = k * theta;
            let partial = (t_eff - k * period - blackout).max(0.0);
            supplied + partial.min(theta)
        };
        if !(d <= supply + 1e-9) {
            feasible = false;
            retained.push(j);
        } else if !(d + DROP_MARGIN <= supply) {
            retained.push(j);
        }
    }
    if !feasible {
        std::mem::swap(active, retained);
    }
    feasible
}

/// The active-set bisection shared by [`MinBudgetSolver::min_budget`]
/// and
/// [`AnalysisWorkspace::min_budget`](crate::kernel::AnalysisWorkspace::min_budget):
/// given the precomputed checkpoints and per-checkpoint demands of a
/// (non-trivial) demand with the given `utilization`, returns the
/// minimal budget on a period-`period` resource — bit-identical to the
/// reference [`min_budget`] search (see the conformance notes on
/// [`MinBudgetSolver::min_budget`]).
///
/// `active`/`retained` are caller-owned scratch; their previous
/// contents are discarded.
// Negated comparisons mirror the reference's booleans exactly; see
// `MinBudgetSolver::min_budget`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub(crate) fn bisect_active(
    period: f64,
    utilization: f64,
    points: &[f64],
    demands: &[f64],
    active: &mut Vec<u32>,
    retained: &mut Vec<u32>,
) -> Option<f64> {
    active.clear();
    active.extend(0..points.len() as u32);
    // The reference's feasible(Π) utilization guard compares against
    // Π/Π + 1e-12; x/x is exactly 1.0 for any finite positive x, so
    // the constant is bit-identical.
    if utilization > 1.0 + 1e-12 || !probe_active(period, period, points, demands, active, retained) {
        return None;
    }
    let mut lo = (utilization * period).min(period);
    if !(utilization > lo / period + 1e-12) && probe_active(period, lo, points, demands, active, retained)
    {
        return Some(lo);
    }
    // In the bisection the utilization guard of the reference's
    // `feasible` can never fire: reaching here means U ≤ 1 + 1e-12,
    // and if U > 1 then lo = Π and feasible(Π) above already
    // returned. So U ≤ 1, lo = U·Π (one rounding), and every probe
    // θ = ½(lo + hi) ≥ lo, giving U − θ/Π ≤ a few ulps of U —
    // orders below the guard's 1e-12 slack. The guard is therefore
    // omitted from the loop; its boolean is identically `false`.
    let mut hi = period;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if probe_active(period, mid, points, demands, active, retained) {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must lie in [0, period]")]
    fn budget_above_period_rejected() {
        let _ = PeriodicResource::new(10.0, 11.0);
    }

    #[test]
    fn sbf_shape() {
        let r = PeriodicResource::new(10.0, 4.0);
        // Blackout of 2(Π−Θ) = 12 at worst, first supply after Π−Θ = 6...
        assert_eq!(r.sbf(0.0), 0.0);
        assert_eq!(r.sbf(6.0), 0.0);
        // After the blackout, supply ramps at slope 1 for Θ time units
        // starting at 2(Π−Θ) = 12.
        assert_eq!(r.sbf(12.0), 0.0);
        assert_eq!(r.sbf(13.0), 1.0);
        assert_eq!(r.sbf(16.0), 4.0);
        // Then flat until the next period's supply.
        assert_eq!(r.sbf(22.0), 4.0);
        assert_eq!(r.sbf(23.0), 5.0);
    }

    #[test]
    fn sbf_full_budget_is_identity_minus_nothing() {
        // Θ = Π: a dedicated processor; sbf(t) = t.
        let r = PeriodicResource::new(5.0, 5.0);
        for t in [0.0, 1.0, 2.5, 7.0, 100.0] {
            assert!((r.sbf(t) - t).abs() < 1e-9, "sbf({t}) = {}", r.sbf(t));
        }
    }

    #[test]
    fn sbf_zero_budget_is_zero() {
        let r = PeriodicResource::new(5.0, 0.0);
        assert_eq!(r.sbf(100.0), 0.0);
    }

    #[test]
    fn sbf_monotone_and_bounded_by_t() {
        let r = PeriodicResource::new(7.0, 3.0);
        let mut prev = 0.0;
        for i in 0..1000 {
            let t = i as f64 * 0.1;
            let v = r.sbf(t);
            assert!(v >= prev - 1e-12, "sbf must be non-decreasing");
            assert!(v <= t + 1e-9, "sbf(t) must not exceed t");
            prev = v;
        }
    }

    #[test]
    fn sbf_many_matches_per_point_sbf_bitwise() {
        let mut out = Vec::new();
        for (period, budget) in [(10.0, 4.0), (7.0, 7.0), (5.0, 0.0), (9.0, 0.001)] {
            let r = PeriodicResource::new(period, budget);
            let points: Vec<f64> = (0..300).map(|i| i as f64 * 0.17).collect();
            r.sbf_many(&points, &mut out);
            assert_eq!(out.len(), points.len());
            for (&t, &batched) in points.iter().zip(&out) {
                assert_eq!(
                    batched.to_bits(),
                    r.sbf(t).to_bits(),
                    "sbf_many diverged at t={t} for ({period}, {budget})"
                );
            }
        }
        // Cleared, not appended, across calls.
        let r = PeriodicResource::new(10.0, 4.0);
        r.sbf_many(&[13.0], &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn lsbf_lower_bounds_sbf() {
        let r = PeriodicResource::new(9.0, 4.0);
        for i in 0..500 {
            let t = i as f64 * 0.2;
            assert!(
                r.lsbf(t) <= r.sbf(t) + 1e-9,
                "lsbf({t}) = {} > sbf({t}) = {}",
                r.lsbf(t),
                r.sbf(t)
            );
        }
    }

    #[test]
    fn paper_example_budget_is_5_5() {
        // Introduction: task (period 10, WCET 1) needs budget 5.5 on a
        // period-10 periodic resource — 5.5× its utilization of 0.1.
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let theta = min_budget(&demand, 10.0).expect("feasible");
        assert!((theta - 5.5).abs() < 1e-6, "got {theta}");
    }

    #[test]
    fn min_budget_monotone_in_demand() {
        let light = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let heavy = Demand::new(vec![(10.0, 2.0)]).unwrap();
        let tl = min_budget(&light, 5.0).unwrap();
        let th = min_budget(&heavy, 5.0).unwrap();
        assert!(th > tl);
    }

    #[test]
    fn min_budget_smaller_period_less_overhead() {
        // A finer-grained server tracks the task more closely, so the
        // required *bandwidth* shrinks as the resource period shrinks.
        let demand = Demand::new(vec![(10.0, 1.0)]).unwrap();
        let bw_coarse = min_budget(&demand, 10.0).unwrap() / 10.0;
        let bw_fine = min_budget(&demand, 2.0).unwrap() / 2.0;
        assert!(bw_fine < bw_coarse);
    }

    #[test]
    fn min_budget_infeasible() {
        // Utilization 1.2 cannot fit on any single resource.
        let demand = Demand::new(vec![(10.0, 12.0)]).unwrap();
        assert_eq!(min_budget(&demand, 10.0), None);
    }

    #[test]
    fn min_budget_zero_demand() {
        let demand = Demand::new(vec![(10.0, 0.0)]).unwrap();
        assert_eq!(min_budget(&demand, 5.0), Some(0.0));
    }

    #[test]
    fn min_budget_result_schedules_and_is_tight() {
        let demand = Demand::new(vec![(10.0, 1.0), (20.0, 3.0), (40.0, 4.0)]).unwrap();
        let period = 10.0;
        let theta = min_budget(&demand, period).expect("feasible");
        assert!(PeriodicResource::new(period, theta).can_schedule(&demand));
        let slightly_less = (theta - 1e-3).max(0.0);
        assert!(
            !PeriodicResource::new(period, slightly_less).can_schedule(&demand),
            "budget {theta} is not tight"
        );
        // And the abstraction overhead is real: budget bandwidth
        // strictly exceeds taskset utilization.
        assert!(theta / period > demand.utilization());
    }

    #[test]
    fn dedicated_resource_schedules_up_to_full_utilization() {
        let demand = Demand::new(vec![(10.0, 5.0), (20.0, 10.0)]).unwrap(); // U = 1.0
        assert!(PeriodicResource::new(10.0, 10.0).can_schedule(&demand));
    }

    fn assert_solver_matches(periods: &[f64], period: f64, wcet_vectors: &[Vec<f64>]) {
        let solver = MinBudgetSolver::new(periods, period);
        for wcets in wcet_vectors {
            let demand =
                Demand::new(periods.iter().copied().zip(wcets.iter().copied()).collect()).unwrap();
            let reference = min_budget(&demand, period);
            let fast = solver.min_budget(wcets);
            assert_eq!(
                fast.map(f64::to_bits),
                reference.map(f64::to_bits),
                "solver diverged for periods {periods:?}, wcets {wcets:?}, period {period}: \
                 {fast:?} vs {reference:?}"
            );
        }
    }

    #[test]
    fn solver_matches_min_budget_bitwise() {
        // Harmonic periods (the paper's workloads) at several resource
        // periods, spanning feasible, tight and infeasible WCETs.
        assert_solver_matches(
            &[100.0, 200.0, 400.0],
            100.0,
            &[
                vec![1.0, 2.0, 4.0],
                vec![30.0, 40.0, 80.0],
                vec![90.0, 100.0, 200.0], // infeasible: U > 1
                vec![0.017, 123.4, 5.0],
            ],
        );
        assert_solver_matches(
            &[100.0, 200.0, 400.0],
            100.0 / 16.0,
            &[vec![1.0, 2.0, 4.0], vec![0.5, 0.25, 0.125]],
        );
        // Non-harmonic periods exercise the LCM hyperperiod path.
        assert_solver_matches(
            &[4.0, 6.0, 10.0],
            2.0,
            &[vec![0.5, 1.0, 2.0], vec![1.9, 2.9, 4.9]],
        );
        // A period that defeats the ns-scaled LCM falls back to the
        // capped horizon.
        assert_solver_matches(&[3.0000001, 7.0], 3.0, &[vec![0.2, 0.4]]);
    }

    #[test]
    fn solver_zero_and_mixed_wcets_match() {
        let periods = [10.0, 20.0];
        let solver = MinBudgetSolver::new(&periods, 5.0);
        assert_eq!(solver.min_budget(&[0.0, 0.0]), Some(0.0));
        // Mixed zero WCETs change the checkpoint set; the solver must
        // still agree with the reference implementation.
        let demand = Demand::new(vec![(10.0, 0.0), (20.0, 4.0)]).unwrap();
        assert_eq!(
            solver.min_budget(&[0.0, 4.0]).map(f64::to_bits),
            min_budget(&demand, 5.0).map(f64::to_bits)
        );
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn solver_rejects_wrong_arity() {
        let _ = MinBudgetSolver::new(&[10.0, 20.0], 5.0).min_budget(&[1.0]);
    }
}
