//! Deterministic EDF ready queue.
//!
//! The hypervisor and the guest OS in the simulation both schedule by
//! Earliest Deadline First. The paper's well-regulated VCPU mechanism
//! (Section 3.2) additionally requires a *deterministic tie-breaking
//! rule* for equal absolute deadlines: first the smaller period wins,
//! then the smaller index. [`EdfKey`] encodes exactly that ordering,
//! and [`ReadyQueue`] is a priority queue over it.

use std::collections::BTreeSet;
use vc2m_model::SimTime;

/// Total priority order for EDF with the paper's deterministic
/// tie-break: `(deadline, period, index)`, all ascending.
///
/// Lower keys are higher priority. The `index` component makes the
/// order a *total* order for distinct entities, so scheduling is fully
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdfKey {
    /// Absolute deadline of the current job/server period.
    pub deadline: SimTime,
    /// Period in nanoseconds (smaller period → higher priority on
    /// deadline ties).
    pub period_ns: u64,
    /// Entity index (smaller index → higher priority on full ties).
    pub index: usize,
}

impl EdfKey {
    /// Creates a key.
    pub fn new(deadline: SimTime, period_ns: u64, index: usize) -> Self {
        EdfKey {
            deadline,
            period_ns,
            index,
        }
    }
}

/// A ready queue ordered by [`EdfKey`].
///
/// Entries are the keys themselves; the entity index inside the key is
/// the handle callers use to map back to their tasks/VCPUs. Insertions
/// and removals are `O(log n)`; the minimum (highest-priority) entry is
/// inspected with [`ReadyQueue::peek`].
///
/// # Example
///
/// ```
/// use vc2m_sched::edf::{EdfKey, ReadyQueue};
/// use vc2m_model::SimTime;
///
/// let mut q = ReadyQueue::new();
/// q.insert(EdfKey::new(SimTime::from_ms(10.0), 10_000_000, 1));
/// q.insert(EdfKey::new(SimTime::from_ms(10.0), 5_000_000, 2));
/// // Same deadline: the smaller period (entity 2) wins.
/// assert_eq!(q.peek().expect("non-empty").index, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadyQueue {
    set: BTreeSet<EdfKey>,
}

impl ReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Inserts a key. Returns `false` if the identical key was already
    /// present (which indicates a double-insert bug in the caller).
    pub fn insert(&mut self, key: EdfKey) -> bool {
        self.set.insert(key)
    }

    /// Removes a key. Returns `false` if it was not present.
    pub fn remove(&mut self, key: &EdfKey) -> bool {
        self.set.remove(key)
    }

    /// The highest-priority entry, if any.
    pub fn peek(&self) -> Option<&EdfKey> {
        self.set.first()
    }

    /// Removes and returns the highest-priority entry.
    pub fn pop(&mut self) -> Option<EdfKey> {
        self.set.pop_first()
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates entries in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &EdfKey> {
        self.set.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline_ms: f64, period_ms: f64, index: usize) -> EdfKey {
        EdfKey::new(
            SimTime::from_ms(deadline_ms),
            (period_ms * 1e6) as u64,
            index,
        )
    }

    #[test]
    fn earliest_deadline_wins() {
        let mut q = ReadyQueue::new();
        q.insert(key(20.0, 5.0, 0));
        q.insert(key(10.0, 50.0, 1));
        assert_eq!(q.pop().unwrap().index, 1);
        assert_eq!(q.pop().unwrap().index, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn deadline_tie_broken_by_period_then_index() {
        let mut q = ReadyQueue::new();
        q.insert(key(10.0, 10.0, 0));
        q.insert(key(10.0, 5.0, 7));
        q.insert(key(10.0, 5.0, 3));
        // Period 5 beats period 10; among period 5, index 3 beats 7.
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|k| k.index)).collect();
        assert_eq!(order, vec![3, 7, 0]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut q = ReadyQueue::new();
        let k = key(10.0, 10.0, 0);
        assert!(q.insert(k));
        assert!(!q.insert(k), "duplicate insert must report false");
        assert_eq!(q.len(), 1);
        assert!(q.remove(&k));
        assert!(!q.remove(&k));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = ReadyQueue::new();
        q.insert(key(10.0, 10.0, 0));
        assert!(q.peek().is_some());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn iteration_is_priority_ordered() {
        let mut q = ReadyQueue::new();
        q.insert(key(30.0, 10.0, 0));
        q.insert(key(10.0, 10.0, 1));
        q.insert(key(20.0, 10.0, 2));
        let order: Vec<usize> = q.iter().map(|k| k.index).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
