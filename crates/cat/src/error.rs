//! Error type for cache-allocation operations.

use std::error::Error;
use std::fmt;

/// Error returned by CAT/vCAT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatError {
    /// A capacity bitmask was empty, non-contiguous, or narrower than
    /// the hardware minimum.
    InvalidMask {
        /// Description of the violation.
        detail: String,
    },
    /// A mask or partition range exceeded the cache geometry.
    OutOfRange {
        /// First partition index requested.
        start: u32,
        /// Number of partitions requested.
        len: u32,
        /// Total partitions available.
        total: u32,
    },
    /// A COS identifier was not present in the controller.
    UnknownCos {
        /// The missing COS index.
        cos: u32,
    },
    /// A core index was out of range for the controller.
    UnknownCore {
        /// The offending core index.
        core: usize,
    },
    /// Requested per-core partition counts do not fit in the cache.
    Overcommitted {
        /// Sum of requested partitions.
        requested: u32,
        /// Total partitions available.
        total: u32,
    },
    /// A virtual partition index fell outside the VM's vCAT domain.
    VirtualOutOfRange {
        /// The offending virtual index.
        virtual_index: u32,
        /// Size of the domain's virtual space.
        domain_size: u32,
    },
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatError::InvalidMask { detail } => write!(f, "invalid cache mask: {detail}"),
            CatError::OutOfRange { start, len, total } => write!(
                f,
                "partition range [{start}, {end}) exceeds cache size {total}",
                end = start + len
            ),
            CatError::UnknownCos { cos } => write!(f, "unknown class of service {cos}"),
            CatError::UnknownCore { core } => write!(f, "unknown core index {core}"),
            CatError::Overcommitted { requested, total } => write!(
                f,
                "requested {requested} partitions but the cache has only {total}"
            ),
            CatError::VirtualOutOfRange {
                virtual_index,
                domain_size,
            } => write!(
                f,
                "virtual partition {virtual_index} outside domain of size {domain_size}"
            ),
        }
    }
}

impl Error for CatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CatError::OutOfRange {
            start: 18,
            len: 4,
            total: 20,
        };
        assert_eq!(
            e.to_string(),
            "partition range [18, 22) exceeds cache size 20"
        );
        assert!(CatError::UnknownCos { cos: 9 }.to_string().contains('9'));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<CatError>();
    }
}
