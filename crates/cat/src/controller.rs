//! The physical CAT controller: COS registers and per-core COS
//! assignment.

use crate::{CacheMask, CatError};
use std::fmt;

/// Index of a class-of-service register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CosId(pub u32);

impl fmt::Display for CosId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COS{}", self.0)
    }
}

/// A simulated CAT controller.
///
/// Real CAT hardware exposes a small array of COS registers, each
/// holding a capacity bitmask, and a per-core register selecting which
/// COS the core's memory accesses are tagged with. The controller
/// mirrors that structure:
///
/// * `set_mask` programs a COS register (an `IA32_L3_MASK_n` write);
/// * `assign` points a core at a COS (an `IA32_PQR_ASSOC` write);
/// * `mask_of_core` resolves the effective mask of a core.
///
/// At reset every COS covers the full cache and every core uses COS 0,
/// matching the hardware's power-on state.
#[derive(Debug, Clone, PartialEq)]
pub struct CatController {
    masks: Vec<CacheMask>,
    core_cos: Vec<CosId>,
    total_partitions: u32,
}

impl CatController {
    /// Creates a controller for `cores` cores, `cos_count` COS
    /// registers and a cache of `total_partitions` partitions, in the
    /// reset state (all masks full, all cores on COS 0).
    ///
    /// # Errors
    ///
    /// Returns [`CatError::InvalidMask`] if `total_partitions` is zero,
    /// or an `InvalidMask` describing the problem if `cos_count` or
    /// `cores` is zero.
    pub fn new(cores: usize, cos_count: u32, total_partitions: u32) -> Result<Self, CatError> {
        if cores == 0 || cos_count == 0 {
            return Err(CatError::InvalidMask {
                detail: "controller needs at least one core and one COS".into(),
            });
        }
        let full = CacheMask::full(total_partitions)?;
        Ok(CatController {
            masks: vec![full; cos_count as usize],
            core_cos: vec![CosId(0); cores],
            total_partitions,
        })
    }

    /// Number of COS registers.
    pub fn cos_count(&self) -> u32 {
        self.masks.len() as u32
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_cos.len()
    }

    /// Total cache partitions.
    pub fn total_partitions(&self) -> u32 {
        self.total_partitions
    }

    /// Programs COS register `cos` with `mask`.
    ///
    /// # Errors
    ///
    /// * [`CatError::UnknownCos`] if `cos` is out of range.
    /// * [`CatError::OutOfRange`] if the mask belongs to a different
    ///   cache geometry.
    pub fn set_mask(&mut self, cos: CosId, mask: CacheMask) -> Result<(), CatError> {
        if mask.total() != self.total_partitions {
            return Err(CatError::OutOfRange {
                start: mask.start(),
                len: mask.ways(),
                total: self.total_partitions,
            });
        }
        let slot = self
            .masks
            .get_mut(cos.0 as usize)
            .ok_or(CatError::UnknownCos { cos: cos.0 })?;
        *slot = mask;
        Ok(())
    }

    /// Reads COS register `cos`.
    ///
    /// # Errors
    ///
    /// Returns [`CatError::UnknownCos`] if `cos` is out of range.
    pub fn mask(&self, cos: CosId) -> Result<CacheMask, CatError> {
        self.masks
            .get(cos.0 as usize)
            .copied()
            .ok_or(CatError::UnknownCos { cos: cos.0 })
    }

    /// Points `core` at COS `cos`.
    ///
    /// # Errors
    ///
    /// * [`CatError::UnknownCore`] if `core` is out of range.
    /// * [`CatError::UnknownCos`] if `cos` is out of range.
    pub fn assign(&mut self, core: usize, cos: CosId) -> Result<(), CatError> {
        if cos.0 as usize >= self.masks.len() {
            return Err(CatError::UnknownCos { cos: cos.0 });
        }
        let slot = self
            .core_cos
            .get_mut(core)
            .ok_or(CatError::UnknownCore { core })?;
        *slot = cos;
        Ok(())
    }

    /// The COS a core currently uses.
    ///
    /// # Errors
    ///
    /// Returns [`CatError::UnknownCore`] if `core` is out of range.
    pub fn cos_of_core(&self, core: usize) -> Result<CosId, CatError> {
        self.core_cos
            .get(core)
            .copied()
            .ok_or(CatError::UnknownCore { core })
    }

    /// The effective capacity mask of a core.
    ///
    /// # Errors
    ///
    /// Returns [`CatError::UnknownCore`] if `core` is out of range.
    pub fn mask_of_core(&self, core: usize) -> Result<CacheMask, CatError> {
        let cos = self.cos_of_core(core)?;
        self.mask(cos)
    }

    /// Whether every pair of distinct cores currently has
    /// non-overlapping masks — the cache-isolation invariant vC²M's
    /// allocation establishes.
    pub fn cores_isolated(&self) -> bool {
        let masks: Vec<CacheMask> = self
            .core_cos
            .iter()
            .map(|cos| self.masks[cos.0 as usize])
            .collect();
        for i in 0..masks.len() {
            for j in (i + 1)..masks.len() {
                if masks[i].overlaps(&masks[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> CatController {
        CatController::new(4, 8, 20).unwrap()
    }

    #[test]
    fn reset_state_is_full_masks_cos0() {
        let c = controller();
        assert_eq!(c.cos_count(), 8);
        assert_eq!(c.cores(), 4);
        for core in 0..4 {
            assert_eq!(c.cos_of_core(core).unwrap(), CosId(0));
            assert_eq!(c.mask_of_core(core).unwrap().ways(), 20);
        }
        assert!(!c.cores_isolated(), "reset state shares the full cache");
    }

    #[test]
    fn program_and_resolve() {
        let mut c = controller();
        c.set_mask(CosId(1), CacheMask::new(0, 10, 20).unwrap())
            .unwrap();
        c.set_mask(CosId(2), CacheMask::new(10, 10, 20).unwrap())
            .unwrap();
        c.assign(0, CosId(1)).unwrap();
        c.assign(1, CosId(2)).unwrap();
        assert_eq!(c.mask_of_core(0).unwrap().start(), 0);
        assert_eq!(c.mask_of_core(1).unwrap().start(), 10);
    }

    #[test]
    fn isolation_invariant() {
        let mut c = CatController::new(2, 4, 20).unwrap();
        c.set_mask(CosId(0), CacheMask::new(0, 10, 20).unwrap())
            .unwrap();
        c.set_mask(CosId(1), CacheMask::new(10, 10, 20).unwrap())
            .unwrap();
        c.assign(0, CosId(0)).unwrap();
        c.assign(1, CosId(1)).unwrap();
        assert!(c.cores_isolated());
        // Point both cores at the same COS: isolation broken.
        c.assign(1, CosId(0)).unwrap();
        assert!(!c.cores_isolated());
    }

    #[test]
    fn errors() {
        let mut c = controller();
        assert!(matches!(
            c.mask(CosId(99)),
            Err(CatError::UnknownCos { cos: 99 })
        ));
        assert!(matches!(
            c.assign(99, CosId(0)),
            Err(CatError::UnknownCore { core: 99 })
        ));
        assert!(matches!(
            c.assign(0, CosId(99)),
            Err(CatError::UnknownCos { .. })
        ));
        let foreign = CacheMask::new(0, 4, 12).unwrap();
        assert!(matches!(
            c.set_mask(CosId(0), foreign),
            Err(CatError::OutOfRange { .. })
        ));
        assert!(CatController::new(0, 4, 20).is_err());
        assert!(CatController::new(4, 0, 20).is_err());
    }
}
