//! CAT capacity bitmasks.

use crate::CatError;
use std::fmt;

/// A CAT capacity bitmask (CBM): a contiguous, non-empty run of cache
/// ways/partitions, stored as `[start, start + len)` over a cache of
/// `total` partitions.
///
/// Intel CAT requires capacity masks to be contiguous; this type makes
/// non-contiguous masks unrepresentable instead of validating them at
/// use sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheMask {
    start: u32,
    len: u32,
    total: u32,
}

impl CacheMask {
    /// Creates the mask covering partitions `[start, start + len)` of a
    /// cache with `total` partitions.
    ///
    /// # Errors
    ///
    /// * [`CatError::InvalidMask`] if `len` is zero (hardware forbids
    ///   empty CBMs).
    /// * [`CatError::OutOfRange`] if the run does not fit in the cache.
    pub fn new(start: u32, len: u32, total: u32) -> Result<Self, CatError> {
        if len == 0 {
            return Err(CatError::InvalidMask {
                detail: "capacity mask must cover at least one partition".into(),
            });
        }
        if start.checked_add(len).is_none_or(|end| end > total) {
            return Err(CatError::OutOfRange { start, len, total });
        }
        Ok(CacheMask { start, len, total })
    }

    /// The mask covering the whole cache (the power-on default COS0
    /// state on real hardware).
    ///
    /// # Errors
    ///
    /// Returns [`CatError::InvalidMask`] if `total` is zero.
    pub fn full(total: u32) -> Result<Self, CatError> {
        CacheMask::new(0, total, total)
    }

    /// First partition covered.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of partitions covered (the mask's *ways*).
    pub fn ways(&self) -> u32 {
        self.len
    }

    /// One past the last partition covered.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Total partitions in the underlying cache.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The raw bitmask value as hardware would hold it (bit `i` set iff
    /// partition `i` is covered). Only available for caches of ≤ 64
    /// partitions, which covers all real CAT hardware.
    ///
    /// # Panics
    ///
    /// Panics if the cache has more than 64 partitions.
    pub fn bits(&self) -> u64 {
        assert!(
            self.total <= 64,
            "bitmask representation limited to 64 partitions"
        );
        if self.len == 64 {
            u64::MAX
        } else {
            ((1u64 << self.len) - 1) << self.start
        }
    }

    /// Whether this mask covers partition `index`.
    pub fn contains(&self, index: u32) -> bool {
        (self.start..self.end()).contains(&index)
    }

    /// Whether this mask shares any partition with `other`.
    ///
    /// Overlapping masks mean the two owners can evict each other's
    /// lines — exactly the interference vC²M's isolation eliminates.
    pub fn overlaps(&self, other: &CacheMask) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for CacheMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})/{}", self.start, self.end(), self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(CacheMask::new(0, 0, 20).is_err());
        assert!(CacheMask::new(18, 4, 20).is_err());
        assert!(CacheMask::new(0, 21, 20).is_err());
        assert!(CacheMask::new(19, 1, 20).is_ok());
        assert!(
            CacheMask::new(u32::MAX, 2, u32::MAX).is_err(),
            "overflow guarded"
        );
    }

    #[test]
    fn geometry() {
        let m = CacheMask::new(4, 6, 20).unwrap();
        assert_eq!(m.start(), 4);
        assert_eq!(m.ways(), 6);
        assert_eq!(m.end(), 10);
        assert!(m.contains(4));
        assert!(m.contains(9));
        assert!(!m.contains(10));
    }

    #[test]
    fn full_mask() {
        let m = CacheMask::full(20).unwrap();
        assert_eq!(m.ways(), 20);
        assert_eq!(m.bits(), (1u64 << 20) - 1);
        assert!(CacheMask::full(0).is_err());
    }

    #[test]
    fn bit_representation() {
        let m = CacheMask::new(2, 3, 20).unwrap();
        assert_eq!(m.bits(), 0b11100);
        let whole = CacheMask::full(64).unwrap();
        assert_eq!(whole.bits(), u64::MAX);
    }

    #[test]
    fn overlap_detection() {
        let a = CacheMask::new(0, 6, 20).unwrap();
        let b = CacheMask::new(6, 6, 20).unwrap();
        let c = CacheMask::new(5, 2, 20).unwrap();
        assert!(!a.overlaps(&b), "adjacent masks do not overlap");
        assert!(!b.overlaps(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn display_shows_range() {
        assert_eq!(CacheMask::new(4, 6, 20).unwrap().to_string(), "[4, 10)/20");
    }
}
