//! The vCAT virtualization layer.
//!
//! vCAT \[16\] lets a guest VM manage cache partitions *virtually*: the
//! VM sees a zero-based contiguous space of partitions, and the
//! hypervisor translates guest mask updates into the physical region it
//! reserved for the VM. This keeps guests oblivious to where in the
//! physical cache they live, and makes it impossible for a guest to
//! reach outside its region.

use crate::{CacheMask, CatError};

/// A VM's virtual cache domain: a physical region of the shared cache
/// that the guest addresses as partitions `0..size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcatDomain {
    /// Physical partition index where the domain starts.
    physical_start: u32,
    /// Number of partitions in the domain.
    size: u32,
    /// Total partitions of the physical cache.
    physical_total: u32,
}

impl VcatDomain {
    /// Creates a domain mapping virtual partitions `0..size` onto
    /// physical partitions `physical_start .. physical_start + size`.
    ///
    /// # Errors
    ///
    /// * [`CatError::InvalidMask`] if `size` is zero.
    /// * [`CatError::OutOfRange`] if the region does not fit in the
    ///   physical cache.
    pub fn new(physical_start: u32, size: u32, physical_total: u32) -> Result<Self, CatError> {
        // Reuse mask validation: the domain is itself a contiguous region.
        let _ = CacheMask::new(physical_start, size, physical_total)?;
        Ok(VcatDomain {
            physical_start,
            size,
            physical_total,
        })
    }

    /// Builds the domain corresponding to an already-validated physical
    /// mask (e.g. one produced by a
    /// [`PartitionPlan`](crate::PartitionPlan)).
    pub fn from_mask(mask: CacheMask) -> Self {
        VcatDomain {
            physical_start: mask.start(),
            size: mask.ways(),
            physical_total: mask.total(),
        }
    }

    /// Size of the virtual partition space.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The physical region backing the domain.
    pub fn physical_mask(&self) -> CacheMask {
        CacheMask::new(self.physical_start, self.size, self.physical_total)
            .expect("domain was validated at construction")
    }

    /// Translates a guest mask request — virtual partitions
    /// `[virtual_start, virtual_start + len)` — into a physical mask.
    ///
    /// # Errors
    ///
    /// * [`CatError::VirtualOutOfRange`] if the virtual range escapes
    ///   the domain.
    /// * [`CatError::InvalidMask`] if `len` is zero.
    pub fn translate(&self, virtual_start: u32, len: u32) -> Result<CacheMask, CatError> {
        if len == 0 {
            return Err(CatError::InvalidMask {
                detail: "guest mask must cover at least one partition".into(),
            });
        }
        let end = virtual_start
            .checked_add(len)
            .ok_or(CatError::VirtualOutOfRange {
                virtual_index: virtual_start,
                domain_size: self.size,
            })?;
        if end > self.size {
            return Err(CatError::VirtualOutOfRange {
                virtual_index: end - 1,
                domain_size: self.size,
            });
        }
        CacheMask::new(
            self.physical_start + virtual_start,
            len,
            self.physical_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionPlan;

    #[test]
    fn translation_offsets_into_physical_region() {
        let d = VcatDomain::new(8, 6, 20).unwrap();
        let m = d.translate(0, 6).unwrap();
        assert_eq!((m.start(), m.end()), (8, 14));
        let m = d.translate(2, 3).unwrap();
        assert_eq!((m.start(), m.end()), (10, 13));
    }

    #[test]
    fn guest_cannot_escape_domain() {
        let d = VcatDomain::new(8, 6, 20).unwrap();
        assert!(matches!(
            d.translate(4, 3),
            Err(CatError::VirtualOutOfRange {
                virtual_index: 6,
                domain_size: 6
            })
        ));
        assert!(d.translate(6, 1).is_err());
        assert!(d.translate(0, 0).is_err());
        assert!(d.translate(u32::MAX, 2).is_err(), "overflow guarded");
    }

    #[test]
    fn from_partition_plan() {
        let plan = PartitionPlan::contiguous(20, &[6, 6, 8]).unwrap();
        let d = VcatDomain::from_mask(plan.mask_for_core(1));
        assert_eq!(d.size(), 6);
        assert_eq!(d.physical_mask().start(), 6);
        // Guests of different cores can never produce overlapping
        // physical masks.
        let d2 = VcatDomain::from_mask(plan.mask_for_core(2));
        let m1 = d.translate(0, 6).unwrap();
        let m2 = d2.translate(0, 8).unwrap();
        assert!(!m1.overlaps(&m2));
    }

    #[test]
    fn construction_validates() {
        assert!(VcatDomain::new(16, 6, 20).is_err());
        assert!(VcatDomain::new(0, 0, 20).is_err());
    }
}
