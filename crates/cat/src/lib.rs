//! Shared-cache allocation substrate: an Intel-CAT-style capacity
//! bitmask model with a vCAT virtualization layer.
//!
//! The paper's prototype partitions the shared last-level cache with
//! Intel's Cache Allocation Technology (CAT) through the vCAT system
//! \[16\] built into its modified Xen. This crate reproduces that
//! substrate in simulation:
//!
//! * [`CacheMask`] — a CAT capacity bitmask (CBM): a **contiguous**,
//!   non-empty run of ways, exactly as the hardware requires;
//! * [`CatController`] — the physical controller: class-of-service
//!   (COS) registers holding masks, and a per-core COS assignment;
//! * [`VcatDomain`] — the vCAT layer: each VM operates on *virtual*
//!   partition indices which are translated to the physical region the
//!   hypervisor assigned to the VM/core;
//! * [`PartitionPlan`] — turns the per-core partition *counts* produced
//!   by the allocation algorithms into disjoint contiguous physical
//!   masks, and verifies the isolation invariant (no two cores share a
//!   partition).
//!
//! With disjoint masks, concurrently running tasks cannot evict each
//! other's cache lines — the cache-isolation half of vC²M's
//! interference mitigation.
//!
//! # Example
//!
//! ```
//! use vc2m_cat::{CacheMask, PartitionPlan};
//!
//! # fn main() -> Result<(), vc2m_cat::CatError> {
//! // Cores get 6, 6 and 8 of 20 partitions: disjoint contiguous runs.
//! let plan = PartitionPlan::contiguous(20, &[6, 6, 8])?;
//! assert!(plan.is_isolated());
//! assert_eq!(plan.mask_for_core(2).ways(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod error;
mod mask;
mod plan;
mod vcat;

pub use controller::{CatController, CosId};
pub use error::CatError;
pub use mask::CacheMask;
pub use plan::PartitionPlan;
pub use vcat::VcatDomain;
