//! Partition plans: per-core partition counts → disjoint physical
//! masks.

use crate::{CacheMask, CatController, CatError, CosId};

/// A concrete, isolated layout of the shared cache: one contiguous
/// mask per core, pairwise disjoint.
///
/// This is the bridge between the allocation algorithms (which decide
/// *how many* partitions each core gets) and the CAT substrate (which
/// needs *which* partitions). The layout packs cores left-to-right,
/// which is exactly how the paper's prototype programs vCAT: disjoint
/// consecutive regions per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    masks: Vec<CacheMask>,
    total: u32,
}

impl PartitionPlan {
    /// Builds a plan giving core `k` the next `counts[k]` consecutive
    /// partitions of a cache with `total` partitions.
    ///
    /// # Errors
    ///
    /// * [`CatError::Overcommitted`] if the counts sum to more than
    ///   `total`.
    /// * [`CatError::InvalidMask`] if any count is zero.
    pub fn contiguous(total: u32, counts: &[u32]) -> Result<Self, CatError> {
        let requested: u32 = counts.iter().sum();
        if requested > total {
            return Err(CatError::Overcommitted { requested, total });
        }
        let mut masks = Vec::with_capacity(counts.len());
        let mut cursor = 0;
        for &count in counts {
            masks.push(CacheMask::new(cursor, count, total)?);
            cursor += count;
        }
        Ok(PartitionPlan { masks, total })
    }

    /// Number of cores covered by the plan.
    pub fn cores(&self) -> usize {
        self.masks.len()
    }

    /// Total partitions in the cache.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The mask assigned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mask_for_core(&self, core: usize) -> CacheMask {
        self.masks[core]
    }

    /// Number of partitions left unassigned by the plan.
    pub fn unused_partitions(&self) -> u32 {
        self.total - self.masks.iter().map(CacheMask::ways).sum::<u32>()
    }

    /// Whether all per-core masks are pairwise disjoint. True by
    /// construction for [`PartitionPlan::contiguous`]; exposed so
    /// integration tests can assert the invariant end-to-end.
    pub fn is_isolated(&self) -> bool {
        for i in 0..self.masks.len() {
            for j in (i + 1)..self.masks.len() {
                if self.masks[i].overlaps(&self.masks[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Programs a [`CatController`] with this plan: COS `k` gets core
    /// `k`'s mask, and core `k` is pointed at COS `k`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CatError`] if the controller has fewer
    /// cores or COS registers than the plan needs, or a different cache
    /// geometry.
    pub fn program(&self, controller: &mut CatController) -> Result<(), CatError> {
        for (core, &mask) in self.masks.iter().enumerate() {
            let cos = CosId(core as u32);
            controller.set_mask(cos, mask)?;
            controller.assign(core, cos)?;
        }
        Ok(())
    }

    /// Iterates `(core_index, mask)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, CacheMask)> + '_ {
        self.masks.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_left_to_right() {
        let plan = PartitionPlan::contiguous(20, &[6, 6, 8]).unwrap();
        assert_eq!(plan.mask_for_core(0).start(), 0);
        assert_eq!(plan.mask_for_core(1).start(), 6);
        assert_eq!(plan.mask_for_core(2).start(), 12);
        assert_eq!(plan.mask_for_core(2).end(), 20);
        assert_eq!(plan.unused_partitions(), 0);
        assert!(plan.is_isolated());
    }

    #[test]
    fn partial_use_leaves_slack() {
        let plan = PartitionPlan::contiguous(20, &[2, 2]).unwrap();
        assert_eq!(plan.unused_partitions(), 16);
        assert!(plan.is_isolated());
    }

    #[test]
    fn overcommit_rejected() {
        assert!(matches!(
            PartitionPlan::contiguous(20, &[10, 11]),
            Err(CatError::Overcommitted {
                requested: 21,
                total: 20
            })
        ));
    }

    #[test]
    fn zero_count_rejected() {
        assert!(PartitionPlan::contiguous(20, &[4, 0]).is_err());
    }

    #[test]
    fn programs_controller_isolated() {
        let plan = PartitionPlan::contiguous(20, &[5, 5, 5, 5]).unwrap();
        let mut ctl = CatController::new(4, 8, 20).unwrap();
        plan.program(&mut ctl).unwrap();
        assert!(ctl.cores_isolated());
        assert_eq!(ctl.mask_of_core(3).unwrap().start(), 15);
    }

    #[test]
    fn programming_too_small_controller_fails() {
        let plan = PartitionPlan::contiguous(20, &[5, 5, 5, 5]).unwrap();
        let mut ctl = CatController::new(2, 8, 20).unwrap();
        assert!(matches!(
            plan.program(&mut ctl),
            Err(CatError::UnknownCore { .. })
        ));
    }

    #[test]
    fn iter_yields_all_cores() {
        let plan = PartitionPlan::contiguous(12, &[4, 4, 4]).unwrap();
        let collected: Vec<(usize, u32)> = plan.iter().map(|(c, m)| (c, m.ways())).collect();
        assert_eq!(collected, vec![(0, 4), (1, 4), (2, 4)]);
    }
}
