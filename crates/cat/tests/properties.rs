//! Property-based tests for the cache-allocation substrate.

use proptest::prelude::*;
use vc2m_cat::{CacheMask, CatController, CosId, PartitionPlan, VcatDomain};

proptest! {
    #[test]
    fn contiguous_plans_are_always_isolated(
        total in 4u32..64,
        counts in proptest::collection::vec(1u32..8, 1..8),
    ) {
        let requested: u32 = counts.iter().sum();
        match PartitionPlan::contiguous(total, &counts) {
            Ok(plan) => {
                prop_assert!(requested <= total);
                prop_assert!(plan.is_isolated());
                prop_assert_eq!(plan.unused_partitions(), total - requested);
                // Every partition covered at most once.
                let mut owners = vec![0u32; total as usize];
                for (_, mask) in plan.iter() {
                    for p in mask.start()..mask.end() {
                        owners[p as usize] += 1;
                    }
                }
                prop_assert!(owners.iter().all(|&o| o <= 1));
            }
            Err(_) => prop_assert!(requested > total),
        }
    }

    #[test]
    fn masks_overlap_iff_ranges_intersect(
        total in 8u32..64,
        s1 in 0u32..56,
        l1 in 1u32..8,
        s2 in 0u32..56,
        l2 in 1u32..8,
    ) {
        prop_assume!(s1 + l1 <= total && s2 + l2 <= total);
        let a = CacheMask::new(s1, l1, total).unwrap();
        let b = CacheMask::new(s2, l2, total).unwrap();
        let intersects = s1 < s2 + l2 && s2 < s1 + l1;
        prop_assert_eq!(a.overlaps(&b), intersects);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a), "overlap must be symmetric");
        if total <= 64 {
            // Bit-level cross-check.
            prop_assert_eq!(a.bits() & b.bits() != 0, intersects);
        }
    }

    #[test]
    fn vcat_translations_stay_inside_the_domain(
        total in 8u32..64,
        dom_start in 0u32..32,
        dom_size in 1u32..16,
        v_start in 0u32..16,
        v_len in 1u32..16,
    ) {
        prop_assume!(dom_start + dom_size <= total);
        let domain = VcatDomain::new(dom_start, dom_size, total).unwrap();
        match domain.translate(v_start, v_len) {
            Ok(mask) => {
                prop_assert!(v_start + v_len <= dom_size);
                let region = domain.physical_mask();
                prop_assert!(mask.start() >= region.start());
                prop_assert!(mask.end() <= region.end());
            }
            Err(_) => prop_assert!(v_start + v_len > dom_size),
        }
    }

    #[test]
    fn programming_a_plan_keeps_controller_isolated(
        counts in proptest::collection::vec(1u32..6, 1..8),
    ) {
        let total = 64u32;
        prop_assume!(counts.iter().sum::<u32>() <= total);
        let plan = PartitionPlan::contiguous(total, &counts).unwrap();
        let mut ctl = CatController::new(counts.len(), counts.len() as u32, total).unwrap();
        plan.program(&mut ctl).unwrap();
        prop_assert!(ctl.cores_isolated());
        for (core, mask) in plan.iter() {
            prop_assert_eq!(ctl.mask_of_core(core).unwrap(), mask);
            prop_assert_eq!(ctl.cos_of_core(core).unwrap(), CosId(core as u32));
        }
    }
}
