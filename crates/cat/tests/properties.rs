//! Property-based tests for the cache-allocation substrate, driven by
//! the in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_cat::{CacheMask, CatController, CosId, PartitionPlan, VcatDomain};
use vc2m_rng::{cases::check, Rng};

#[test]
fn contiguous_plans_are_always_isolated() {
    check(64, |rng| {
        let total = rng.gen_range(4u32..64);
        let n = rng.gen_range(1usize..8);
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..8)).collect();
        let requested: u32 = counts.iter().sum();
        match PartitionPlan::contiguous(total, &counts) {
            Ok(plan) => {
                assert!(requested <= total);
                assert!(plan.is_isolated());
                assert_eq!(plan.unused_partitions(), total - requested);
                // Every partition covered at most once.
                let mut owners = vec![0u32; total as usize];
                for (_, mask) in plan.iter() {
                    for p in mask.start()..mask.end() {
                        owners[p as usize] += 1;
                    }
                }
                assert!(owners.iter().all(|&o| o <= 1));
            }
            Err(_) => assert!(requested > total),
        }
    });
}

#[test]
fn masks_overlap_iff_ranges_intersect() {
    check(64, |rng| {
        let total = rng.gen_range(8u32..64);
        let l1 = rng.gen_range(1u32..8).min(total);
        let s1 = rng.gen_range(0u32..=(total - l1));
        let l2 = rng.gen_range(1u32..8).min(total);
        let s2 = rng.gen_range(0u32..=(total - l2));
        let a = CacheMask::new(s1, l1, total).unwrap();
        let b = CacheMask::new(s2, l2, total).unwrap();
        let intersects = s1 < s2 + l2 && s2 < s1 + l1;
        assert_eq!(a.overlaps(&b), intersects);
        assert_eq!(a.overlaps(&b), b.overlaps(&a), "overlap must be symmetric");
        // Bit-level cross-check (total is always <= 64 here).
        assert_eq!(a.bits() & b.bits() != 0, intersects);
    });
}

#[test]
fn vcat_translations_stay_inside_the_domain() {
    check(64, |rng| {
        let total = rng.gen_range(8u32..64);
        let dom_size = rng.gen_range(1u32..16).min(total);
        let dom_start = rng.gen_range(0u32..=(total - dom_size));
        let v_start = rng.gen_range(0u32..16);
        let v_len = rng.gen_range(1u32..16);
        let domain = VcatDomain::new(dom_start, dom_size, total).unwrap();
        match domain.translate(v_start, v_len) {
            Ok(mask) => {
                assert!(v_start + v_len <= dom_size);
                let region = domain.physical_mask();
                assert!(mask.start() >= region.start());
                assert!(mask.end() <= region.end());
            }
            Err(_) => assert!(v_start + v_len > dom_size),
        }
    });
}

#[test]
fn programming_a_plan_keeps_controller_isolated() {
    check(64, |rng| {
        let total = 64u32;
        // At most 7 counts of at most 5 partitions each: always fits.
        let n = rng.gen_range(1usize..8);
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..6)).collect();
        assert!(counts.iter().sum::<u32>() <= total);
        let plan = PartitionPlan::contiguous(total, &counts).unwrap();
        let mut ctl = CatController::new(counts.len(), counts.len() as u32, total).unwrap();
        plan.program(&mut ctl).unwrap();
        assert!(ctl.cores_isolated());
        for (core, mask) in plan.iter() {
            assert_eq!(ctl.mask_of_core(core).unwrap(), mask);
            assert_eq!(ctl.cos_of_core(core).unwrap(), CosId(core as u32));
        }
    });
}
