//! Golden tests for `vc2m admit`: the committed 50-request trace at
//! `tests/data/admit_50.trace` is replayed through the streaming
//! admission engine and both outputs are pinned byte-for-byte — the
//! decision log (`--report-out`) and the `admission.*` metrics
//! document (`--metrics-out`, schema `vc2m-metrics-v1`).
//!
//! The pins are the CLI-level half of the determinism guarantee: the
//! same trace and seed must produce the identical decision log on
//! every machine and every run, so any change to the engine's
//! placement order, verdict rendering, float formatting, or metric
//! names must show up here as a conscious golden update. The
//! reference-mode replay additionally re-proves the differential
//! contract end to end: the slow oracle engine emits the exact same
//! log bytes as the warm-start engine.

use std::path::PathBuf;
use vc2m_cli::run;

fn run_capture(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&argv, &mut buf);
    (code, String::from_utf8(buf).expect("utf8 output"))
}

/// A per-test scratch path that is removed on drop, keeping reruns
/// hermetic without any tempdir dependency.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("vc2m-admit-{}-{name}", std::process::id()));
        ScratchFile(path)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf8 temp path")
    }

    fn read(&self) -> String {
        std::fs::read_to_string(&self.0).expect("output file written")
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The committed trace, resolved relative to this crate.
fn trace_path() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/admit_50.trace");
    path.to_str().expect("utf8 path").to_string()
}

const REPORT_GOLDEN: &str = "\
#00000 arrive vm=1 u=0.206838 -> admitted/incremental | vms=1 vcpus=3 cores=1 load=0.206838
#00001 arrive vm=2 u=0.237193 -> admitted/incremental | vms=2 vcpus=10 cores=1 load=0.444031
#00002 arrive vm=5 u=0.232248 -> admitted/incremental | vms=3 vcpus=14 cores=1 load=0.676279
#00003 arrive vm=4 u=0.201503 -> admitted/incremental | vms=4 vcpus=18 cores=1 load=0.877782
#00004 arrive vm=3 u=0.128844 -> admitted/repack | vms=5 vcpus=21 cores=2 load=1.006626
#00005 arrive vm=6 u=0.217524 -> admitted/incremental | vms=6 vcpus=27 cores=2 load=1.224151
#00006 mode vm=4 u=0.182100 -> admitted/incremental | vms=6 vcpus=26 cores=2 load=1.204747
#00007 arrive vm=7 u=0.211871 -> admitted/repack | vms=7 vcpus=29 cores=2 load=1.416618
#00008 arrive vm=8 u=0.315959 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=2 load=1.416618
#00009 arrive vm=9 u=0.260077 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=2 load=1.416618
#00010 arrive vm=10 u=0.135253 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=2 load=1.416618
#00011 arrive vm=11 u=0.164946 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=2 load=1.416618
#00012 arrive vm=12 u=0.115398 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=2 load=1.416618
#00013 depart vm=5 u=0.232248 -> departed | vms=6 vcpus=25 cores=2 load=1.184370
#00014 arrive vm=13 u=0.252952 -> admitted/repack | vms=7 vcpus=30 cores=4 load=1.437322
#00015 depart vm=6 u=0.217524 -> departed | vms=6 vcpus=24 cores=4 load=1.219798
#00016 arrive vm=14 u=0.098322 -> admitted/incremental | vms=7 vcpus=26 cores=4 load=1.318120
#00017 arrive vm=15 u=0.094620 -> admitted/incremental | vms=8 vcpus=30 cores=4 load=1.412740
#00018 arrive vm=16 u=0.275826 -> rejected (workload not schedulable) | vms=8 vcpus=30 cores=4 load=1.412740
#00019 depart vm=9 u=0.000000 -> rejected (vm 9 not admitted) | vms=8 vcpus=30 cores=4 load=1.412740
#00020 depart vm=1 u=0.206838 -> departed | vms=7 vcpus=27 cores=4 load=1.205902
#00021 mode vm=14 u=0.271812 -> admitted/incremental | vms=7 vcpus=30 cores=4 load=1.379392
#00022 arrive vm=18 u=0.278349 -> rejected (workload not schedulable) | vms=7 vcpus=30 cores=4 load=1.379392
#00023 arrive vm=17 u=0.086363 -> rejected (workload not schedulable) | vms=7 vcpus=30 cores=4 load=1.379392
#00024 depart vm=13 u=0.252952 -> departed | vms=6 vcpus=25 cores=4 load=1.126440
#00025 arrive vm=20 u=0.140549 -> admitted/incremental | vms=7 vcpus=28 cores=4 load=1.266989
#00026 arrive vm=19 u=0.136428 -> admitted/incremental | vms=8 vcpus=30 cores=4 load=1.403417
#00027 depart vm=10 u=0.000000 -> rejected (vm 10 not admitted) | vms=8 vcpus=30 cores=4 load=1.403417
#00028 depart vm=2 u=0.237193 -> departed | vms=7 vcpus=23 cores=4 load=1.166224
#00029 arrive vm=21 u=0.286585 -> admitted/incremental | vms=8 vcpus=30 cores=4 load=1.452809
#00030 depart vm=20 u=0.140549 -> departed | vms=7 vcpus=27 cores=4 load=1.312260
#00031 depart vm=21 u=0.286585 -> departed | vms=6 vcpus=20 cores=4 load=1.025675
#00032 depart vm=3 u=0.128844 -> departed | vms=5 vcpus=17 cores=4 load=0.896831
#00033 depart vm=17 u=0.000000 -> rejected (vm 17 not admitted) | vms=5 vcpus=17 cores=4 load=0.896831
#00034 arrive vm=22 u=0.270794 -> admitted/incremental | vms=6 vcpus=22 cores=4 load=1.167625
#00035 arrive vm=23 u=0.202699 -> admitted/incremental | vms=7 vcpus=29 cores=4 load=1.370324
#00036 depart vm=23 u=0.202699 -> departed | vms=6 vcpus=22 cores=4 load=1.167625
#00037 depart vm=4 u=0.182100 -> departed | vms=5 vcpus=19 cores=4 load=0.985525
#00038 arrive vm=24 u=0.277978 -> admitted/incremental | vms=6 vcpus=27 cores=4 load=1.263503
#00039 arrive vm=25 u=0.151723 -> rejected (workload not schedulable) | vms=6 vcpus=27 cores=4 load=1.263503
#00040 depart vm=18 u=0.000000 -> rejected (vm 18 not admitted) | vms=6 vcpus=27 cores=4 load=1.263503
#00041 arrive vm=26 u=0.142123 -> admitted/incremental | vms=7 vcpus=32 cores=4 load=1.405626
#00042 depart vm=26 u=0.142123 -> departed | vms=6 vcpus=27 cores=4 load=1.263503
#00043 arrive vm=27 u=0.139479 -> admitted/incremental | vms=7 vcpus=29 cores=4 load=1.402982
#00044 arrive vm=30 u=0.295840 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=4 load=1.402982
#00045 arrive vm=28 u=0.105572 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=4 load=1.402982
#00046 arrive vm=29 u=0.070749 -> rejected (workload not schedulable) | vms=7 vcpus=29 cores=4 load=1.402982
#00047 depart vm=12 u=0.000000 -> rejected (vm 12 not admitted) | vms=7 vcpus=29 cores=4 load=1.402982
#00048 depart vm=22 u=0.270794 -> departed | vms=6 vcpus=24 cores=4 load=1.132188
#00049 arrive vm=31 u=0.108251 -> admitted/incremental | vms=7 vcpus=26 cores=4 load=1.240440
";

const METRICS_GOLDEN: &str = r#"{
  "schema": "vc2m-metrics-v1",
  "command": "admit",
  "metrics": {
    "counters": {
      "admission.admitted_incremental": 18,
      "admission.admitted_repack": 3,
      "admission.batches": 5,
      "admission.cache.evictions": 0,
      "admission.cache.hits": 0,
      "admission.cache.lookups": 0,
      "admission.cache.misses": 0,
      "admission.capacity_rejects": 0,
      "admission.core_upgrades": 43,
      "admission.cores_opened": 1,
      "admission.degraded": 0,
      "admission.departed": 12,
      "admission.dirty_cores_verified": 37,
      "admission.full_verifies": 0,
      "admission.memo_hits": 0,
      "admission.memo_inserts": 12,
      "admission.memo_invalidations": 5,
      "admission.rejected": 17,
      "admission.repack_attempts": 15,
      "admission.requests": 50
    },
    "gauges": {
      "admission.cache.hit_rate": 0,
      "admission.cores": 4,
      "admission.load": 1.2404396366831993,
      "admission.vcpus": 26,
      "admission.vms": 7
    },
    "histograms": {}
  }
}
"#;

#[test]
fn admit_report_matches_golden() {
    let report = ScratchFile::new("report.log");
    let (code, out) = run_capture(&[
        "admit",
        "--trace-in",
        &trace_path(),
        "--seed",
        "42",
        "--report-out",
        report.as_str(),
    ]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains(&format!("wrote {}", report.as_str())));
    assert_eq!(report.read(), REPORT_GOLDEN);
}

#[test]
fn admit_metrics_json_matches_golden() {
    let metrics = ScratchFile::new("metrics.json");
    let (code, out) = run_capture(&[
        "admit",
        "--trace-in",
        &trace_path(),
        "--seed",
        "42",
        "--metrics-out",
        metrics.as_str(),
    ]);
    assert_eq!(code, 0, "output: {out}");
    assert_eq!(metrics.read(), METRICS_GOLDEN);
}

#[test]
fn admit_reference_engine_emits_identical_report() {
    // The CLI-level differential check: the slow oracle (full verify
    // everywhere, analysis cache disabled) replays the committed trace
    // to the exact same decision-log bytes as the warm-start engine.
    let report = ScratchFile::new("reference-report.log");
    let (code, out) = run_capture(&[
        "admit",
        "--trace-in",
        &trace_path(),
        "--seed",
        "42",
        "--reference",
        "--report-out",
        report.as_str(),
    ]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("(reference mode)"));
    assert_eq!(report.read(), REPORT_GOLDEN);
}

#[test]
fn committed_trace_regenerates_from_its_seed() {
    // `--requests 50 --seed 42` is how tests/data/admit_50.trace was
    // produced; the generator must keep reproducing it byte-for-byte,
    // or the committed trace and the documented provenance diverge.
    let trace = ScratchFile::new("regen.trace");
    let (code, out) = run_capture(&[
        "admit",
        "--requests",
        "50",
        "--seed",
        "42",
        "--trace-out",
        trace.as_str(),
    ]);
    assert_eq!(code, 0, "output: {out}");
    let committed = std::fs::read_to_string(trace_path()).expect("committed trace");
    assert_eq!(trace.read(), committed);
}

#[test]
fn admit_summary_agrees_with_the_pinned_log() {
    let (code, out) = run_capture(&["admit", "--trace-in", &trace_path(), "--seed", "42"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(
        out.contains("admitted 21 (18 incremental, 3 repack), rejected 17 (0 at capacity), degraded 0, departed 12"),
        "unexpected summary: {out}"
    );
    assert!(out.contains("final state: 7 VMs on 4 cores"), "{out}");
}
