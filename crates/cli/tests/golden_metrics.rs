//! Golden tests for the observability outputs: `vc2m simulate
//! --metrics-out/--trace-out` and `vc2m sweep --metrics-out`.
//!
//! The metrics JSON is pinned byte-for-byte. That is deliberate: the
//! document is the machine-readable contract (`vc2m-metrics-v1`) that
//! downstream tooling diffs across runs, so any change to the name
//! schema, the key order, or the number formatting must show up here
//! as a conscious golden update — never as silent drift. The pin also
//! re-proves determinism: every value in the document derives from
//! simulated time, so a wall-clock leak or iteration-order change
//! breaks the test immediately.

use std::path::PathBuf;
use vc2m_cli::run;

fn run_capture(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&argv, &mut buf);
    (code, String::from_utf8(buf).expect("utf8 output"))
}

/// A per-test scratch path that is removed on drop, keeping reruns
/// hermetic without any tempdir dependency.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("vc2m-golden-{}-{name}", std::process::id()));
        ScratchFile(path)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf8 temp path")
    }

    fn read(&self) -> String {
        std::fs::read_to_string(&self.0).expect("output file written")
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const SIMULATE_GOLDEN: &str = r#"{
  "schema": "vc2m-metrics-v1",
  "command": "simulate",
  "runs": [
    {
      "solution": "Baseline (existing CSA)",
      "metrics": {
        "counters": {
          "membw.cores": 1,
          "membw.periods_elapsed": 250,
          "membw.throttles": 0,
          "sim.context.switches": 1,
          "sim.deadline.misses": 0,
          "sim.jobs.completed": 2,
          "sim.jobs.released": 3,
          "sim.throttle.events": 0,
          "sim.trace.dropped": 284,
          "sim.trace.recorded": 0
        },
        "gauges": {
          "membw.period_ms": 1,
          "sim.core0.busy_ms": 237.200125,
          "sim.core0.throttled_ms": 0,
          "sim.horizon_ms": 250
        },
        "histograms": {
          "sim.response_ms.T0": {
            "count": 1,
            "min": 47.700857,
            "avg": 47.700857,
            "max": 47.700857
          },
          "sim.response_ms.T1": {
            "count": 1,
            "min": 122.461298,
            "avg": 122.461298,
            "max": 122.461298
          },
          "sim.response_ms.T2": {
            "count": 0,
            "min": null,
            "avg": null,
            "max": null
          }
        }
      }
    }
  ]
}
"#;

/// The same workload as [`SIMULATE_GOLDEN`] with a seeded fault plan
/// attached (`--fault-seed 7 --fault-count 4`). Pins three contracts
/// at once: the `faults.*` counter family (names and values) is
/// exported exactly when a plan is attached, fault injection is
/// bit-reproducible from the seed, and the injected faults genuinely
/// perturb the run (throttled time appears, T1's response shifts)
/// without breaking the fault-free counters' schema.
const FAULTED_SIMULATE_GOLDEN: &str = r#"{
  "schema": "vc2m-metrics-v1",
  "command": "simulate",
  "runs": [
    {
      "solution": "Baseline (existing CSA)",
      "metrics": {
        "counters": {
          "faults.core_stalls": 1,
          "faults.injected": 4,
          "faults.load_spike_jobs": 0,
          "faults.load_spikes": 0,
          "faults.overrun_jobs": 0,
          "faults.overruns": 3,
          "faults.replenish_delays": 0,
          "faults.throttle_faults": 0,
          "membw.cores": 1,
          "membw.periods_elapsed": 250,
          "membw.throttles": 0,
          "sim.context.switches": 1,
          "sim.deadline.misses": 0,
          "sim.jobs.completed": 2,
          "sim.jobs.released": 3,
          "sim.throttle.events": 1,
          "sim.trace.dropped": 291,
          "sim.trace.recorded": 0
        },
        "gauges": {
          "membw.period_ms": 1,
          "sim.core0.busy_ms": 233.132998,
          "sim.core0.throttled_ms": 4.920452,
          "sim.horizon_ms": 250
        },
        "histograms": {
          "sim.response_ms.T0": {
            "count": 1,
            "min": 47.700857,
            "avg": 47.700857,
            "max": 47.700857
          },
          "sim.response_ms.T1": {
            "count": 1,
            "min": 127.38175,
            "avg": 127.38175,
            "max": 127.38175
          },
          "sim.response_ms.T2": {
            "count": 0,
            "min": null,
            "avg": null,
            "max": null
          }
        }
      }
    }
  ]
}
"#;

const SWEEP_GOLDEN: &str = r#"{
  "schema": "vc2m-metrics-v1",
  "command": "sweep",
  "metrics": {
    "counters": {
      "analysis.cache.evictions": 0,
      "analysis.cache.hits": 567,
      "analysis.cache.lookups": 3402,
      "analysis.cache.misses": 2835,
      "analysis.checkpoints.emitted": 13620,
      "analysis.checkpoints.fallback_horizons": 0,
      "analysis.checkpoints.merges": 2835,
      "analysis.checkpoints.truncated": 0,
      "analysis.kernel.can_schedule": 0,
      "analysis.kernel.min_budget": 2835,
      "analysis.kernel.solver_min_budget": 0,
      "analysis.kernel.vcpu_builds": 567,
      "sweep.points": 10,
      "sweep.solutions": 1,
      "sweep.tasksets.analyzed": 80,
      "sweep.tasksets.schedulable": 23
    },
    "gauges": {
      "analysis.cache.hit_rate": 0.16666666666666666,
      "sweep.breakdown.Baseline (existing CSA)": 0.4
    },
    "histograms": {}
  }
}
"#;

const SIMULATE_ARGS: &[&str] = &[
    "simulate",
    "--utilization",
    "0.2",
    "--solution",
    "baseline",
    "--horizon-ms",
    "250",
    "--seed",
    "42",
];

#[test]
fn simulate_metrics_json_matches_golden() {
    let file = ScratchFile::new("sim-metrics.json");
    let mut args = SIMULATE_ARGS.to_vec();
    args.extend(["--metrics-out", file.as_str()]);
    let (code, out) = run_capture(&args);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains(&format!("wrote {}", file.as_str())));
    assert_eq!(file.read(), SIMULATE_GOLDEN);
}

#[test]
fn faulted_simulate_metrics_json_matches_golden() {
    let file = ScratchFile::new("sim-metrics-faulted.json");
    let mut args = SIMULATE_ARGS.to_vec();
    args.extend([
        "--fault-seed",
        "7",
        "--fault-count",
        "4",
        "--metrics-out",
        file.as_str(),
    ]);
    let (code, out) = run_capture(&args);
    assert_eq!(code, 0, "output: {out}");
    assert!(
        out.contains("injecting 4 faults (seed 7)"),
        "unexpected output: {out}"
    );
    assert_eq!(file.read(), FAULTED_SIMULATE_GOLDEN);
}

#[test]
fn sharded_simulate_output_is_byte_identical_to_serial() {
    // `--threads N` must not change a byte of anything the command
    // emits: stdout, the metrics JSON (pinned to the serial golden)
    // or the trace file — the sharded engine is exactly conformant.
    let metrics = ScratchFile::new("sim-metrics-sharded.json");
    let trace = ScratchFile::new("sim-trace-sharded.txt");
    let mut args = SIMULATE_ARGS.to_vec();
    args.extend([
        "--threads",
        "4",
        "--metrics-out",
        metrics.as_str(),
        "--trace-out",
        trace.as_str(),
    ]);
    let (code, out) = run_capture(&args);
    assert_eq!(code, 0, "output: {out}");

    let serial_metrics = ScratchFile::new("sim-metrics-serial.json");
    let serial_trace = ScratchFile::new("sim-trace-serial.txt");
    let mut serial_args = SIMULATE_ARGS.to_vec();
    serial_args.extend([
        "--metrics-out",
        serial_metrics.as_str(),
        "--trace-out",
        serial_trace.as_str(),
    ]);
    let (serial_code, serial_out) = run_capture(&serial_args);
    assert_eq!(serial_code, 0);
    // Everything except the "wrote <scratch path>" lines must agree.
    let sim_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.starts_with("wrote "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        sim_lines(&out),
        sim_lines(&serial_out),
        "stdout differs under --threads"
    );
    assert_eq!(trace.read(), serial_trace.read(), "trace differs");
    assert_eq!(metrics.read(), serial_metrics.read(), "metrics differ");

    let (bad_code, bad_out) = run_capture(&["simulate", "--threads", "0"]);
    assert_eq!(bad_code, 2);
    assert!(bad_out.contains("--threads must be at least 1"));
}

#[test]
fn fault_seed_rejects_garbage() {
    let (code, out) = run_capture(&[
        "simulate",
        "--utilization",
        "0.2",
        "--solution",
        "baseline",
        "--fault-seed",
        "not-a-seed",
    ]);
    assert_eq!(code, 2);
    assert!(
        out.contains("--fault-seed must be a u64"),
        "unexpected output: {out}"
    );
}

#[test]
fn simulate_trace_is_deterministic_and_complete() {
    let file = ScratchFile::new("sim-trace.txt");
    let mut args = SIMULATE_ARGS.to_vec();
    args.extend(["--trace-out", file.as_str()]);
    let (code, _) = run_capture(&args);
    assert_eq!(code, 0);
    let trace = file.read();
    let mut lines = trace.lines();
    // Header carries the recorded/dropped accounting; under the 4096
    // ring nothing is dropped at this horizon, so every emitted event
    // is on disk: one line per record plus the header.
    assert_eq!(
        lines.next(),
        Some("# Baseline (existing CSA) (284 recorded, 0 dropped)")
    );
    assert_eq!(lines.next(), Some("[0.000000ms] run V0 task T2 for 15.463730ms"));
    assert_eq!(trace.lines().count(), 285);
    assert_eq!(trace.lines().last(), Some("[250.000000ms] refill woke 0 cores"));
}

#[test]
fn simulate_metrics_agree_between_traced_and_untraced_runs() {
    // The report-level conformance lives in the hypervisor tests; this
    // pins it end to end: enabling the trace ring must change nothing
    // in the metrics document except the recorded/dropped split, whose
    // total is the invariant number of emitted events.
    let plain = ScratchFile::new("sim-metrics-plain.json");
    let traced = ScratchFile::new("sim-metrics-traced.json");
    let trace = ScratchFile::new("sim-trace-side.txt");

    let mut args = SIMULATE_ARGS.to_vec();
    args.extend(["--metrics-out", plain.as_str()]);
    assert_eq!(run_capture(&args).0, 0);

    let mut args = SIMULATE_ARGS.to_vec();
    args.extend(["--metrics-out", traced.as_str(), "--trace-out", trace.as_str()]);
    assert_eq!(run_capture(&args).0, 0);

    let normalize = |text: String| -> (Vec<String>, u64) {
        let mut total = 0;
        let kept = text
            .lines()
            .filter(|line| {
                let split = line.trim().strip_prefix("\"sim.trace.recorded\": ").or_else(|| {
                    line.trim().strip_prefix("\"sim.trace.dropped\": ")
                });
                match split {
                    Some(value) => {
                        total += value
                            .trim_end_matches(',')
                            .parse::<u64>()
                            .expect("integer counter");
                        false
                    }
                    None => true,
                }
            })
            .map(str::to_string)
            .collect();
        (kept, total)
    };
    let (plain_doc, plain_events) = normalize(plain.read());
    let (traced_doc, traced_events) = normalize(traced.read());
    assert_eq!(plain_doc, traced_doc);
    assert_eq!(plain_events, traced_events);
    assert_eq!(plain_events, 284);
}

#[test]
fn sweep_metrics_json_matches_golden() {
    let file = ScratchFile::new("sweep-metrics.json");
    let (code, out) = run_capture(&[
        "sweep",
        "--solution",
        "baseline",
        "--seed",
        "42",
        "--threads",
        "2",
        "--metrics-out",
        file.as_str(),
    ]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains(&format!("wrote {}", file.as_str())));
    assert_eq!(file.read(), SWEEP_GOLDEN);
}

#[test]
fn metrics_out_reports_unwritable_path() {
    let (code, out) = run_capture(&[
        "simulate",
        "--utilization",
        "0.2",
        "--horizon-ms",
        "250",
        "--solution",
        "baseline",
        "--metrics-out",
        "/nonexistent-dir/metrics.json",
    ]);
    assert_eq!(code, 2);
    assert!(
        out.contains("cannot write /nonexistent-dir/metrics.json"),
        "unexpected output: {out}"
    );
}
