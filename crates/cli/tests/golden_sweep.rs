//! Golden test for `vc2m sweep`: pins the exact stdout of a fixed
//! quick-scale sweep, and with it three stronger guarantees at once —
//! the sweep's determinism across runs, the irrelevance of the thread
//! count and of the analysis cache to the results (only wall-clock may
//! change), and the stability of the rendered table format the
//! figures' tooling parses.

use vc2m_cli::run;

const GOLDEN: &str = "    u*  baseline\n\
\x20 0.20      1.00\n\
\x20 0.40      1.00\n\
\x20 0.60      0.88\n\
\x20 0.80      0.00\n\
\x20 1.00      0.00\n\
\x20 1.20      0.00\n\
\x20 1.40      0.00\n\
\x20 1.60      0.00\n\
\x20 1.80      0.00\n\
\x20 2.00      0.00\n\
breakdown Baseline (existing CSA)                  0.40\n";

fn run_capture(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&argv, &mut buf);
    (code, String::from_utf8(buf).expect("utf8 output"))
}

#[test]
fn sweep_output_matches_golden() {
    let (code, out) = run_capture(&[
        "sweep", "--solution", "baseline", "--seed", "42", "--threads", "2",
    ]);
    assert_eq!(code, 0);
    assert_eq!(out, GOLDEN);
}

#[test]
fn sweep_output_is_invariant_under_thread_count() {
    for threads in ["1", "8"] {
        let (code, out) = run_capture(&[
            "sweep", "--solution", "baseline", "--seed", "42", "--threads", threads,
        ]);
        assert_eq!(code, 0, "threads={threads}");
        assert_eq!(out, GOLDEN, "threads={threads}");
    }
}

#[test]
fn sweep_output_is_invariant_under_no_cache() {
    let (code, out) = run_capture(&[
        "sweep", "--solution", "baseline", "--seed", "42", "--threads", "2", "--no-cache",
    ]);
    assert_eq!(code, 0);
    assert_eq!(out, GOLDEN);
}

#[test]
fn sweep_rejects_zero_threads() {
    let (code, out) = run_capture(&[
        "sweep", "--solution", "baseline", "--seed", "42", "--threads", "0",
    ]);
    assert_eq!(code, 2);
    assert!(
        out.contains("--threads must be at least 1"),
        "unexpected error output: {out}"
    );
}
