//! Entry point of the `vc2m` command-line tool.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let code = vc2m_cli::run(&argv, &mut stdout);
    std::process::exit(code);
}
