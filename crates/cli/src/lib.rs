//! The `vc2m` command-line tool.
//!
//! A thin, dependency-free front end over the [`vc2m`] library:
//!
//! ```text
//! vc2m platforms                         list the built-in platforms
//! vc2m benchmarks [--platform a]         list benchmark profiles + slowdowns
//! vc2m analyze   --utilization 1.0 ...   allocate a random workload
//! vc2m simulate  --utilization 1.0 ...   allocate, then validate by simulation
//! vc2m sweep     --distribution uniform  schedulability sweep (Fig. 2/3 style)
//! vc2m admit     --requests 100          stream a VM admission trace
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! admits no CLI crates); see [`args`]. Each subcommand lives in
//! [`commands`] and returns a process exit code, so the whole tool is
//! testable without spawning processes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;

use std::fmt;

/// Error produced by CLI parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description, printed to stderr.
    pub message: String,
}

impl CliError {
    /// Creates an error from anything printable.
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
vc2m — holistic CPU/cache/memory-bandwidth allocation (DAC'19 reproduction)

USAGE:
    vc2m <COMMAND> [OPTIONS]

COMMANDS:
    platforms     List the built-in evaluation platforms
    benchmarks    List the PARSEC-style benchmark profiles
    analyze       Generate a workload and allocate it
    simulate      Allocate a workload and validate it on the simulator
    sweep         Run a schedulability sweep (Figure 2/3 style)
    isolation     WCET with vs without isolation (Section 3.3 style)
    admit         Replay a VM admission trace through the streaming engine
    help          Show this message

COMMON OPTIONS:
    --platform <a|b|c>            Platform (default: a)
    --utilization <f64>           Taskset reference utilization (default: 1.0)
    --distribution <name>         uniform | light | medium | heavy (default: uniform)
    --solution <name>             flattening | overhead-free | existing |
                                  evenly | baseline | all (default: all)
    --seed <u64>                  Workload/allocation seed (default: 42)
    --vms <usize>                 Number of VMs to split the workload into (default: 1)

SWEEP OPTIONS:
    --full                        Paper scale (step 0.05, 50 tasksets/point)
    --fleet                       Campaign scale (step 0.001, 3 tasksets/point)
    --threads <usize>             Worker threads (default: all cores)
    --no-cache                    Disable the analysis interface cache
    --out <path>                  Write the fractions CSV here
    --metrics-out <path>          Write the aggregate sweep metrics as JSON

SIMULATE OPTIONS:
    --horizon-ms <f64>            Simulation horizon (default: 2500)
    --threads <usize>             Sharded parallel simulation (default: 1 = serial;
                                  output is bit-identical at every thread count)
    --gantt                       Print an ASCII schedule chart (first 200 ms)
    --trace-out <path>            Write the event trace (last 4096 records/run)
    --metrics-out <path>          Write per-solution run metrics as JSON

ADMIT OPTIONS:
    --trace-in <path>             Replay this vc2m-admission-trace-v1 file
    --requests <usize>            Generate a trace of this size instead (default: 100)
    --hosts <usize>               Fleet size (default: the trace's hosts directive, else 1)
    --threads <usize>             Parallel fleet replay threads (default: 1)
    --rejection-heavy             Generate the saturated rejection-heavy preset
    --no-memo                     Disable the saturated-regime rejection memo
    --reference                   Run the slow differential-oracle engine
    --trace-out <path>            Write the (generated) trace text here
    --report-out <path>           Write the byte-stable decision log here
    --metrics-out <path>          Write the admission.* / fleet.* metrics as JSON
    --hi-fraction <f64>           Mark this fraction of generated VMs criticality-HI
    --fleet-fault-seed <u64>      Arm a generated fleet fault plan (needs --hosts > 1)
    --fleet-fault-count <usize>   Faults in the generated plan (default: 4)
    --journal <path>              Write the write-ahead decision journal (1-host path)
    --recover <path>              Reconstruct an engine from a journal and verify it
";

/// Runs the CLI on the given arguments (without the program name).
/// Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match dispatch(argv, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn dispatch(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        writeln!(out, "{USAGE}").map_err(io_error)?;
        return Ok(());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "platforms" => commands::platforms(out),
        "benchmarks" => commands::benchmarks(rest, out),
        "analyze" => commands::analyze(rest, out),
        "simulate" => commands::simulate(rest, out),
        "sweep" => commands::sweep(rest, out),
        "isolation" => commands::isolation(rest, out),
        "admit" => commands::admit(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_error)?;
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown command '{other}' (try 'vc2m help')"
        ))),
    }
}

pub(crate) fn io_error(e: std::io::Error) -> CliError {
    CliError::new(format!("write failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (i32, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_capture(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        for flag in ["help", "--help", "-h"] {
            let (code, out) = run_capture(&[flag]);
            assert_eq!(code, 0);
            assert!(out.contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_capture(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }
}
