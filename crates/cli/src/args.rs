//! Hand-rolled `--flag value` argument parsing.

use crate::CliError;
use vc2m::alloc::Solution;
use vc2m::model::Platform;
use vc2m::workload::UtilizationDist;

/// Parsed `--key value` options plus bare `--switches`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Options {
    /// Parses `argv` into options.
    ///
    /// Every token must be a `--flag`; flags followed by a non-flag
    /// token consume it as their value, others are switches.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on a bare non-flag token.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut options = Options::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(flag) = token.strip_prefix("--") else {
                return Err(CliError::new(format!(
                    "unexpected argument '{token}' (flags start with --)"
                )));
            };
            if flag.is_empty() {
                return Err(CliError::new("empty flag '--'"));
            }
            match argv.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    options.pairs.push((flag.to_string(), value.clone()));
                    i += 2;
                }
                _ => {
                    options.switches.push(flag.to_string());
                    i += 1;
                }
            }
        }
        Ok(options)
    }

    /// The raw string value of `flag`, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == flag)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the bare switch `--flag` was given.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }

    /// Parses `flag` as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] if the value does not parse.
    pub fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.value(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::new(format!("invalid value '{raw}' for --{flag}"))),
        }
    }

    /// The platform selected by `--platform` (default A).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for anything but `a`, `b` or `c`.
    pub fn platform(&self) -> Result<Platform, CliError> {
        match self.value("platform").unwrap_or("a") {
            "a" | "A" => Ok(Platform::platform_a()),
            "b" | "B" => Ok(Platform::platform_b()),
            "c" | "C" => Ok(Platform::platform_c()),
            other => Err(CliError::new(format!(
                "unknown platform '{other}' (expected a, b or c)"
            ))),
        }
    }

    /// The distribution selected by `--distribution` (default uniform).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for an unknown name.
    pub fn distribution(&self) -> Result<UtilizationDist, CliError> {
        match self.value("distribution").unwrap_or("uniform") {
            "uniform" => Ok(UtilizationDist::Uniform),
            "light" | "bimodal-light" => Ok(UtilizationDist::BimodalLight),
            "medium" | "bimodal-medium" => Ok(UtilizationDist::BimodalMedium),
            "heavy" | "bimodal-heavy" => Ok(UtilizationDist::BimodalHeavy),
            other => Err(CliError::new(format!(
                "unknown distribution '{other}' (expected uniform, light, medium or heavy)"
            ))),
        }
    }

    /// The solutions selected by `--solution` (default all five).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for an unknown name.
    pub fn solutions(&self) -> Result<Vec<Solution>, CliError> {
        match self.value("solution").unwrap_or("all") {
            "all" => Ok(Solution::ALL.to_vec()),
            "flattening" | "flatten" => Ok(vec![Solution::HeuristicFlattening]),
            "overhead-free" | "ovh-free" | "regulated" => Ok(vec![Solution::HeuristicOverheadFree]),
            "existing" | "heur-existing" => Ok(vec![Solution::HeuristicExisting]),
            "evenly" | "even" | "evenly-partition" => Ok(vec![Solution::EvenlyPartition]),
            "baseline" => Ok(vec![Solution::Baseline]),
            "auto" | "vc2m" => Ok(vec![Solution::Auto]),
            other => Err(CliError::new(format!(
                "unknown solution '{other}' (expected flattening, overhead-free, existing, \
                 evenly, baseline, auto or all)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Options, CliError> {
        let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Options::parse(&argv)
    }

    #[test]
    fn pairs_and_switches() {
        let o = parse(&["--utilization", "1.5", "--full", "--seed", "7"]).unwrap();
        assert_eq!(o.value("utilization"), Some("1.5"));
        assert_eq!(o.value("seed"), Some("7"));
        assert!(o.switch("full"));
        assert!(!o.switch("quick"));
        assert_eq!(o.parse_or("seed", 0u64).unwrap(), 7);
        assert_eq!(o.parse_or("missing", 3u64).unwrap(), 3);
    }

    #[test]
    fn later_values_win() {
        let o = parse(&["--seed", "1", "--seed", "2"]).unwrap();
        assert_eq!(o.value("seed"), Some("2"));
    }

    #[test]
    fn bare_token_rejected() {
        assert!(parse(&["oops"]).is_err());
        assert!(parse(&["--"]).is_err());
    }

    #[test]
    fn invalid_numeric_value() {
        let o = parse(&["--seed", "banana"]).unwrap();
        assert!(o.parse_or("seed", 0u64).is_err());
    }

    #[test]
    fn platform_selection() {
        assert_eq!(parse(&[]).unwrap().platform().unwrap().cores(), 4);
        assert_eq!(
            parse(&["--platform", "b"])
                .unwrap()
                .platform()
                .unwrap()
                .cores(),
            6
        );
        assert_eq!(
            parse(&["--platform", "c"])
                .unwrap()
                .platform()
                .unwrap()
                .cache_partitions(),
            12
        );
        assert!(parse(&["--platform", "z"]).unwrap().platform().is_err());
    }

    #[test]
    fn distribution_selection() {
        assert_eq!(
            parse(&["--distribution", "heavy"])
                .unwrap()
                .distribution()
                .unwrap(),
            UtilizationDist::BimodalHeavy
        );
        assert!(parse(&["--distribution", "wat"])
            .unwrap()
            .distribution()
            .is_err());
    }

    #[test]
    fn solution_selection() {
        assert_eq!(parse(&[]).unwrap().solutions().unwrap().len(), 5);
        assert_eq!(
            parse(&["--solution", "baseline"])
                .unwrap()
                .solutions()
                .unwrap(),
            vec![Solution::Baseline]
        );
        assert!(parse(&["--solution", "wat"]).unwrap().solutions().is_err());
    }
}
