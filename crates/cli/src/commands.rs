//! The CLI subcommands.

use crate::args::Options;
use crate::{io_error, CliError};
use std::io::Write;
use vc2m::model::{Alloc, Platform, SimDuration, TaskSet, VmSpec};
use vc2m::prelude::*;
use vc2m::sweep::{run_sweep_parallel, SweepConfig};
use vc2m_bench::timing::{json_array, metrics_json, JsonBuilder};

/// `vc2m platforms`: lists the built-in evaluation platforms.
pub fn platforms(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "{:<4} {:<44} modeled on", "name", "geometry").map_err(io_error)?;
    for (name, platform, cpu) in [
        ("a", Platform::platform_a(), "Intel Xeon E5-2618L v3"),
        ("b", Platform::platform_b(), "Intel Xeon D-1528"),
        ("c", Platform::platform_c(), "Intel Xeon D-1518"),
    ] {
        writeln!(out, "{:<4} {:<44} {cpu}", name, platform.to_string()).map_err(io_error)?;
    }
    Ok(())
}

/// `vc2m benchmarks`: lists the benchmark profiles and their slowdown
/// landmarks on the selected platform.
pub fn benchmarks(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let options = Options::parse(argv)?;
    let platform = options.platform()?;
    let space = platform.resources();
    let even = Alloc::new(
        (space.cache_max() / platform.cores() as u32).max(space.cache_min()),
        (space.bw_max() / platform.cores() as u32).max(space.bw_min()),
    );
    writeln!(
        out,
        "{:<14} {:>8} {:>10} {:>8}",
        "benchmark", "s(max)", "s(even)", "mem%"
    )
    .map_err(io_error)?;
    for benchmark in ParsecBenchmark::ALL {
        let profile = benchmark.profile();
        let surface = profile.slowdown_surface(&space);
        writeln!(
            out,
            "{:<14} {:>8.2} {:>10.2} {:>7.0}%",
            benchmark.name(),
            surface.max_slowdown(),
            surface.at(even),
            profile.memory_intensity() * 100.0
        )
        .map_err(io_error)?;
    }
    writeln!(
        out,
        "\ns(max): slowdown at ({}, {}); s(even): at the even split {even}",
        space.cache_min(),
        space.bw_min()
    )
    .map_err(io_error)?;
    Ok(())
}

/// Workload parameters shared by `analyze` and `simulate`.
struct Workload {
    platform: Platform,
    tasks: TaskSet,
    vms: Vec<VmSpec>,
    seed: u64,
}

fn build_workload(options: &Options) -> Result<Workload, CliError> {
    let platform = options.platform()?;
    let utilization: f64 = options.parse_or("utilization", 1.0)?;
    if !utilization.is_finite() || utilization <= 0.0 {
        return Err(CliError::new("utilization must be positive"));
    }
    let seed: u64 = options.parse_or("seed", 42)?;
    let vm_count: usize = options.parse_or("vms", 1)?;
    if vm_count == 0 {
        return Err(CliError::new("--vms must be at least 1"));
    }
    let distribution = options.distribution()?;
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, distribution).with_vm_count(vm_count),
        seed,
    );
    let vms = generator.generate_vms();
    let tasks: TaskSet = vms
        .iter()
        .flat_map(|vm| vm.tasks().iter().cloned())
        .collect();
    Ok(Workload {
        platform,
        tasks,
        vms,
        seed,
    })
}

/// `vc2m analyze`: generates a workload and allocates it with the
/// selected solutions.
pub fn analyze(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let options = Options::parse(argv)?;
    let workload = build_workload(&options)?;
    let solutions = options.solutions()?;
    writeln!(
        out,
        "workload: {} tasks in {} VMs, u* = {:.3} on {}",
        workload.tasks.len(),
        workload.vms.len(),
        workload.tasks.reference_utilization(),
        workload.platform
    )
    .map_err(io_error)?;
    for solution in solutions {
        let outcome = solution.allocate(&workload.vms, &workload.platform, workload.seed);
        match outcome.allocation() {
            Some(allocation) => {
                writeln!(out, "\n{}: schedulable", solution.name()).map_err(io_error)?;
                write!(out, "{allocation}").map_err(io_error)?;
            }
            None => {
                writeln!(out, "\n{}: NOT schedulable", solution.name()).map_err(io_error)?;
            }
        }
    }
    Ok(())
}

/// `vc2m simulate`: allocates, then validates the allocation on the
/// simulated hypervisor.
///
/// With `--trace-out <path>` the retained event trace (most recent
/// 4096 records per solution) is written as text; with
/// `--metrics-out <path>` the per-solution metrics registries are
/// written as one schema-stable JSON document (see DESIGN.md). Both
/// captures are passive: the printed report is identical with or
/// without them.
///
/// With `--fault-seed <seed>` a deterministic fault plan of
/// `--fault-count` faults (default 8) is generated over the workload
/// and injected during the run; the `faults.*` counters then appear in
/// the metrics output.
pub fn simulate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let options = Options::parse(argv)?;
    let workload = build_workload(&options)?;
    let horizon_ms: f64 = options.parse_or("horizon-ms", 2500.0)?;
    if !horizon_ms.is_finite() || horizon_ms <= 0.0 {
        return Err(CliError::new("--horizon-ms must be positive"));
    }
    let fault_seed: Option<u64> = match options.value("fault-seed") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::new(format!("--fault-seed must be a u64, got {raw}")))?,
        ),
        None => None,
    };
    let fault_count: usize = options.parse_or("fault-count", 8)?;
    let threads: usize = options.parse_or("threads", 1)?;
    if threads == 0 {
        return Err(CliError::new("--threads must be at least 1"));
    }
    let solutions = options.solutions()?;
    let trace_out = options.value("trace-out").map(str::to_string);
    let metrics_out = options.value("metrics-out").map(str::to_string);
    let observe = trace_out.is_some() || metrics_out.is_some();
    let mut trace_text = String::new();
    let mut metric_runs: Vec<String> = Vec::new();
    for solution in solutions {
        let outcome = solution.allocate(&workload.vms, &workload.platform, workload.seed);
        let Some(allocation) = outcome.allocation() else {
            writeln!(
                out,
                "{}: NOT schedulable (skipping simulation)",
                solution.name()
            )
            .map_err(io_error)?;
            continue;
        };
        let gantt = options.switch("gantt");
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(horizon_ms))
            .with_supply_recording(gantt)
            .with_trace_capacity(if trace_out.is_some() { 4096 } else { 0 });
        let mut sim = HypervisorSim::new(&workload.platform, allocation, &workload.tasks, config)
            .map_err(|e| CliError::new(format!("simulation build failed: {e}")))?;
        if let Some(seed) = fault_seed {
            let targets = FaultTargets {
                tasks: workload.tasks.iter().map(|t| t.id()).collect(),
                vcpus: allocation.vcpus().iter().map(|v| v.id()).collect(),
                vms: workload.vms.iter().map(|vm| vm.id()).collect(),
                cores: allocation.cores_used(),
            };
            let spec = FaultPlanSpec::new(fault_count, SimDuration::from_ms(horizon_ms));
            let plan = FaultPlan::generate(seed, &targets, &spec);
            writeln!(
                out,
                "{}: injecting {} faults (seed {seed})",
                solution.name(),
                plan.len()
            )
            .map_err(io_error)?;
            sim = sim
                .with_fault_plan(plan)
                .map_err(|e| CliError::new(format!("fault plan rejected: {e}")))?;
        }
        // The sharded engine is conformant (bit-identical reports,
        // traces and metrics — pinned by the hypervisor crate's
        // differential suite), so `--threads` is purely a wall-clock
        // choice.
        let (report, observation) = if observe {
            let (report, observation) = if threads > 1 {
                sim.run_observed_sharded(threads)
            } else {
                sim.run_observed()
            }
            .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
            (report, Some(observation))
        } else {
            let report = if threads > 1 {
                sim.run_sharded(threads)
            } else {
                sim.run()
            }
            .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
            (report, None)
        };
        if let Some(observation) = observation {
            if trace_out.is_some() {
                trace_text.push_str(&format!(
                    "# {} ({} recorded, {} dropped)\n",
                    solution.name(),
                    observation.trace.len(),
                    observation.trace_dropped
                ));
                for (time, event) in &observation.trace {
                    trace_text.push_str(&format!("[{time}] {event}\n"));
                }
            }
            if metrics_out.is_some() {
                metric_runs.push(
                    JsonBuilder::new()
                        .str("solution", solution.name())
                        .raw("metrics", metrics_json(&observation.metrics))
                        .build(),
                );
            }
        }
        writeln!(
            out,
            "{}: {} cores, {}",
            solution.name(),
            allocation.cores_used(),
            if report.all_deadlines_met() {
                format!("all deadlines met over {} jobs", report.jobs_completed)
            } else {
                format!("{} DEADLINE MISSES", report.deadline_misses.len())
            }
        )
        .map_err(io_error)?;
        if gantt {
            use vc2m::model::SimTime;
            let window_end = SimTime::from_ms(horizon_ms.min(200.0));
            write!(
                out,
                "{}",
                vc2m::hypervisor::gantt::render(
                    &report.supply_logs,
                    SimTime::ZERO,
                    window_end,
                    100
                )
            )
            .map_err(io_error)?;
        }
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, trace_text)
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    if let Some(path) = metrics_out {
        let document = JsonBuilder::new()
            .str("schema", "vc2m-metrics-v1")
            .str("command", "simulate")
            .raw("runs", json_array(metric_runs))
            .build();
        std::fs::write(&path, document + "\n")
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    Ok(())
}

/// `vc2m isolation`: the Section 3.3 WCET-impact study.
pub fn isolation(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use vc2m::hypervisor::interference::{measure, InterferenceConfig};
    let options = Options::parse(argv)?;
    let platform = options.platform()?;
    let space = platform.resources();
    let co_runners: usize = options.parse_or("co-runners", 3)?;
    let runs: usize = options.parse_or("runs", 25)?;
    if runs == 0 {
        return Err(CliError::new("--runs must be at least 1"));
    }
    let seed: u64 = options.parse_or("seed", 42)?;
    let cache = (space.cache_max() * 3 / 5).max(space.cache_min());
    let bw = (space.bw_max() * 3 / 5).max(space.bw_min());
    let alloc = Alloc::new(cache, bw);
    let config = InterferenceConfig {
        co_runners,
        runs,
        ..InterferenceConfig::default()
    };
    writeln!(
        out,
        "isolation study on {platform}: vC2M allocation {alloc}, {co_runners} co-runners, {runs} runs\n"
    )
    .map_err(io_error)?;
    writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>10}",
        "benchmark", "isolated", "shared", "reduction"
    )
    .map_err(io_error)?;
    for benchmark in ParsecBenchmark::ALL {
        let mut rng = vc2m_rng::DetRng::seed_from_u64(seed);
        let m = measure(&benchmark.profile(), &space, alloc, &config, &mut rng);
        writeln!(
            out,
            "{:<14} {:>12.3} {:>12.3} {:>9.2}x",
            benchmark.name(),
            m.isolated.max().unwrap_or(f64::NAN),
            m.shared.max().unwrap_or(f64::NAN),
            m.wcet_reduction().unwrap_or(f64::NAN)
        )
        .map_err(io_error)?;
    }
    Ok(())
}

/// `vc2m sweep`: a Figure 2/3-style schedulability sweep.
pub fn sweep(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let options = Options::parse(argv)?;
    let platform = options.platform()?;
    let distribution = options.distribution()?;
    let mut config = if options.switch("fleet") {
        SweepConfig::fleet(platform, distribution)
    } else if options.switch("full") {
        SweepConfig::paper(platform, distribution)
    } else {
        SweepConfig::quick(platform, distribution)
    };
    config.solutions = options.solutions()?;
    config.base_seed = options.parse_or("seed", config.base_seed)?;
    config.use_cache = !options.switch("no-cache");
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = options.parse_or("threads", default_threads)?;
    if threads == 0 {
        return Err(CliError::new("--threads must be at least 1"));
    }

    let results = run_sweep_parallel(&config, threads, |_, _| {});
    write!(out, "{results}").map_err(io_error)?;
    for solution in results.solutions().to_vec() {
        if let Some(u) = results.breakdown_utilization(solution) {
            writeln!(out, "breakdown {:<40} {u:.2}", solution.name()).map_err(io_error)?;
        }
    }
    if let Some(path) = options.value("out") {
        std::fs::write(path, results.fractions_csv())
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    if let Some(path) = options.value("metrics-out") {
        let document = JsonBuilder::new()
            .str("schema", "vc2m-metrics-v1")
            .str("command", "sweep")
            .raw("metrics", metrics_json(&sweep_metrics(&results)))
            .build();
        std::fs::write(path, document + "\n")
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    Ok(())
}

/// `vc2m admit`: replay an admission-request trace through the
/// streaming [`AdmissionEngine`] (or, with `--hosts N`, the sharded
/// [`vc2m::alloc::AdmissionFleet`]).
///
/// The trace comes from `--trace-in` (the `vc2m-admission-trace-v1`
/// text format) or is generated deterministically from `--requests`
/// and `--seed`. The full decision log goes to `--report-out`, the
/// `admission.*` counters to `--metrics-out`. The host count defaults
/// to the trace's `hosts` directive (1 when absent); with one host the
/// engine path runs and the output is byte-identical to what it always
/// was. `--threads` replays an N-host fleet in parallel (the merged
/// log is thread-count invariant); `--no-memo` disables the
/// saturated-regime rejection memo.
///
/// Fault tolerance: `--hi-fraction F` marks a deterministic fraction
/// of generated VMs criticality-HI; `--fleet-fault-seed S` (with
/// `--fleet-fault-count N`, default 4) arms a generated, replayable
/// fleet fault plan — host crashes, drains and verify faults — on the
/// fleet path; `--journal PATH` writes the engine path's write-ahead
/// decision journal; `--recover PATH` reconstructs an engine from a
/// journal instead of replaying a trace, failing loudly on any
/// divergence from the journaled decisions.
pub fn admit(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use vc2m::admission::{generate, replay, replay_journaled, AdmissionTrace, TraceSpec};
    let options = Options::parse(argv)?;
    let platform = options.platform()?;
    let seed: u64 = options.parse_or("seed", 42)?;
    let solution = match options.value("solution") {
        None => Solution::Auto,
        Some(_) => {
            let picked = options.solutions()?;
            match picked.as_slice() {
                [one] => *one,
                _ => {
                    return Err(CliError::new(
                        "admit needs exactly one --solution (not 'all')",
                    ))
                }
            }
        }
    };
    let explicit_hosts: Option<usize> = match options.value("hosts") {
        Some(_) => {
            let hosts = options.parse_or("hosts", 1usize)?;
            if hosts == 0 {
                return Err(CliError::new("--hosts must be at least 1"));
            }
            Some(hosts)
        }
        None => None,
    };
    if let Some(path) = options.value("recover") {
        let mut config = AdmissionConfig::new(seed).with_solution(solution);
        if options.switch("reference") {
            config = config.reference_mode();
        }
        if options.switch("no-memo") {
            config = config.without_memo();
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
        let journal = DecisionJournal::parse(&text)
            .map_err(|e| CliError::new(format!("bad journal {path}: {e}")))?;
        let engine = vc2m::admission::recover(platform, config, &journal)
            .map_err(|e| CliError::new(format!("recovery failed: {e}")))?;
        writeln!(
            out,
            "recovery: {} decisions reconstructed from {} records, conformant",
            journal.decisions(),
            journal.len(),
        )
        .map_err(io_error)?;
        writeln!(
            out,
            "final state: {} VMs on {} cores",
            engine.working_set().len(),
            engine.allocation().cores_used(),
        )
        .map_err(io_error)?;
        if let Some(path) = options.value("report-out") {
            std::fs::write(path, engine.log_text())
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            writeln!(out, "wrote {path}").map_err(io_error)?;
        }
        return Ok(());
    }
    let hi_fraction: Option<f64> = match options.value("hi-fraction") {
        Some(raw) => {
            let f: f64 = raw.parse().map_err(|_| {
                CliError::new(format!("--hi-fraction must be a number, got {raw}"))
            })?;
            if !(0.0..=1.0).contains(&f) {
                return Err(CliError::new("--hi-fraction must be in 0.0..=1.0"));
            }
            if options.value("trace-in").is_some() {
                return Err(CliError::new(
                    "--hi-fraction applies to generated traces; use a `crit` \
                     directive in the trace file instead",
                ));
            }
            Some(f)
        }
        None => None,
    };
    let trace = match options.value("trace-in") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
            AdmissionTrace::parse(&text)
                .map_err(|e| CliError::new(format!("bad trace {path}: {e}")))?
        }
        None => {
            let requests: usize = options.parse_or("requests", 100)?;
            if requests == 0 {
                return Err(CliError::new("--requests must be at least 1"));
            }
            let mut spec = if options.switch("rejection-heavy") {
                TraceSpec::rejection_heavy(requests, seed, explicit_hosts.unwrap_or(1))
            } else {
                TraceSpec::new(requests, seed).with_hosts(explicit_hosts.unwrap_or(1))
            };
            if let Some(f) = hi_fraction {
                spec = spec.with_hi_fraction(f);
            }
            generate(&spec)
        }
    };
    let hosts = explicit_hosts.unwrap_or_else(|| trace.hosts());
    if let Some(path) = options.value("trace-out") {
        std::fs::write(path, trace.render())
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    let mut config = AdmissionConfig::new(seed).with_solution(solution);
    if options.switch("reference") {
        config = config.reference_mode();
    }
    if options.switch("no-memo") {
        config = config.without_memo();
    }
    if hosts > 1 {
        if options.value("journal").is_some() {
            return Err(CliError::new(
                "--journal records the single-host engine path; use --hosts 1",
            ));
        }
        return admit_fleet(&options, platform, config, &trace, hosts, seed, solution, out);
    }
    if options.value("fleet-fault-seed").is_some() || options.value("fleet-fault-count").is_some() {
        return Err(CliError::new(
            "fleet faults need a fleet: pass --hosts N with N > 1",
        ));
    }
    let mut engine = AdmissionEngine::new(platform, config);
    let journal = match options.value("journal") {
        Some(path) => {
            let journal = replay_journaled(&mut engine, &trace);
            std::fs::write(path, journal.render())
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Some((path.to_string(), journal.len()))
        }
        None => {
            replay(&mut engine, &trace);
            None
        }
    };

    let stats = *engine.stats();
    let allocation = engine.allocation();
    writeln!(
        out,
        "admission on {platform}: {} requests, seed {seed}, solution {}{}",
        trace.len(),
        solution.name(),
        if engine.config().reference {
            " (reference mode)"
        } else {
            ""
        }
    )
    .map_err(io_error)?;
    writeln!(
        out,
        "admitted {} ({} incremental, {} repack), rejected {} ({} at capacity), \
         degraded {}, departed {}",
        stats.admitted_incremental + stats.admitted_repack,
        stats.admitted_incremental,
        stats.admitted_repack,
        stats.rejected,
        stats.capacity_rejects,
        stats.degraded,
        stats.departed,
    )
    .map_err(io_error)?;
    writeln!(
        out,
        "final state: {} VMs on {} cores, {} dirty cores verified, {} full verifies",
        engine.working_set().len(),
        allocation.cores_used(),
        stats.dirty_cores_verified,
        stats.full_verifies,
    )
    .map_err(io_error)?;
    if let Some((path, records)) = journal {
        writeln!(out, "wrote {path} ({records} journal records)").map_err(io_error)?;
    }
    if let Some(path) = options.value("report-out") {
        std::fs::write(path, engine.log_text())
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    if let Some(path) = options.value("metrics-out") {
        let mut metrics = vc2m::simcore::MetricsRegistry::new();
        engine.export_metrics(&mut metrics);
        let document = JsonBuilder::new()
            .str("schema", "vc2m-metrics-v1")
            .str("command", "admit")
            .raw("metrics", metrics_json(&metrics))
            .build();
        std::fs::write(path, document + "\n")
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    Ok(())
}

/// The `--hosts N` (N > 1) arm of [`admit`]: route the trace across a
/// sharded fleet, serially or in parallel, and summarize per host.
#[allow(clippy::too_many_arguments)]
fn admit_fleet(
    options: &Options,
    platform: vc2m::model::Platform,
    config: AdmissionConfig,
    trace: &vc2m::admission::AdmissionTrace,
    hosts: usize,
    seed: u64,
    solution: Solution,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use vc2m::admission::fleet_items;
    use vc2m::alloc::{AdmissionFleet, FleetConfig};
    let threads: usize = options.parse_or("threads", 1)?;
    if threads == 0 {
        return Err(CliError::new("--threads must be at least 1"));
    }
    let fault_seed: Option<u64> = match options.value("fleet-fault-seed") {
        Some(raw) => Some(raw.parse().map_err(|_| {
            CliError::new(format!("--fleet-fault-seed must be a u64, got {raw}"))
        })?),
        None => None,
    };
    let fault_count: usize = options.parse_or("fleet-fault-count", 4)?;
    if fault_seed.is_none() && options.value("fleet-fault-count").is_some() {
        return Err(CliError::new(
            "--fleet-fault-count needs --fleet-fault-seed to arm a plan",
        ));
    }
    let fleet_config = FleetConfig::new(hosts, seed).with_engine(config);
    let items = fleet_items(trace, platform.resources());
    let scenario = fault_seed.map(|fs| {
        let spec = FleetFaultSpec::new(fault_count, items.len() as u64);
        FleetScenario::new(
            FleetFaultPlan::generate(fs, hosts, &spec),
            trace.hi_vms().to_vec(),
        )
    });
    let fleet = match scenario {
        Some(scenario) if threads > 1 => AdmissionFleet::replay_parallel_armed(
            platform,
            fleet_config,
            scenario,
            &items,
            threads,
        )
        .map_err(|e| CliError::new(format!("fault scenario rejected: {e}")))?,
        Some(scenario) => {
            let mut fleet = AdmissionFleet::new(platform, fleet_config);
            fleet
                .arm(scenario)
                .map_err(|e| CliError::new(format!("fault scenario rejected: {e}")))?;
            fleet.replay(&items);
            fleet
        }
        None if threads > 1 => {
            AdmissionFleet::replay_parallel(platform, fleet_config, &items, threads)
        }
        None => {
            let mut fleet = AdmissionFleet::new(platform, fleet_config);
            fleet.replay(&items);
            fleet
        }
    };
    let stats = fleet.aggregate_stats();
    let routing = *fleet.router().stats();
    writeln!(
        out,
        "fleet admission on {hosts}x {platform}: {} requests, seed {seed}, solution {}{}{}",
        trace.len(),
        solution.name(),
        if config.reference { " (reference mode)" } else { "" },
        if config.memo { "" } else { " (memo off)" },
    )
    .map_err(io_error)?;
    writeln!(
        out,
        "admitted {} ({} incremental, {} repack), rejected {} ({} at capacity), \
         degraded {}, departed {}",
        stats.admitted_incremental + stats.admitted_repack,
        stats.admitted_incremental,
        stats.admitted_repack,
        stats.rejected,
        stats.capacity_rejects,
        stats.degraded,
        stats.departed,
    )
    .map_err(io_error)?;
    writeln!(
        out,
        "routing: {} best-fit, {} retry, {} saturated, {} unowned; memo: {} hits, {} inserts",
        routing.best_fit_routes,
        routing.retry_routes,
        routing.saturated_routes,
        routing.unowned_routes,
        stats.memo_hits,
        stats.memo_inserts,
    )
    .map_err(io_error)?;
    if fault_seed.is_some() {
        writeln!(
            out,
            "faults: {} injected ({} crashes, {} drains, {} verify)",
            routing.faults_injected, routing.host_crashes, routing.host_drains,
            routing.verify_faults,
        )
        .map_err(io_error)?;
        writeln!(
            out,
            "evacuations: {} VMs ({} hi, {} lo): {} placed, {} deferred, {} exhausted",
            routing.evacuated_vms,
            routing.evac_hi,
            routing.evac_lo,
            routing.evac_placed,
            routing.evac_deferred,
            routing.evac_exhausted,
        )
        .map_err(io_error)?;
        for failure in fleet.evacuation_failures() {
            writeln!(
                out,
                "  evacuation exhausted: vm={} crit={:?} u={:.3} after {} attempts",
                failure.vm, failure.criticality, failure.utilization, failure.attempts,
            )
            .map_err(io_error)?;
        }
    }
    for (host, engine) in fleet.engines().iter().enumerate() {
        writeln!(
            out,
            "host {host}: {} VMs on {} cores, load {:.3}{}",
            engine.working_set().len(),
            engine.allocation().cores_used(),
            engine
                .working_set()
                .iter()
                .map(|vm| vm.reference_utilization())
                .sum::<f64>()
                + 0.0, // the empty sum is -0.0
            if fleet.router().alive()[host] {
                ""
            } else {
                " (down)"
            },
        )
        .map_err(io_error)?;
    }
    if let Some(path) = options.value("report-out") {
        std::fs::write(path, fleet.log_text())
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    if let Some(path) = options.value("metrics-out") {
        let mut metrics = vc2m::simcore::MetricsRegistry::new();
        fleet.export_metrics(&mut metrics);
        let document = JsonBuilder::new()
            .str("schema", "vc2m-metrics-v1")
            .str("command", "admit")
            .raw("metrics", metrics_json(&metrics))
            .build();
        std::fs::write(path, document + "\n")
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote {path}").map_err(io_error)?;
    }
    Ok(())
}

/// Aggregates a sweep into one deterministic metrics registry: taskset
/// counts, per-solution breakdown utilizations, the analysis-cache
/// counters, and the schedulability-kernel telemetry (checkpoint
/// merges, truncations, fallback horizons, kernel call counts).
/// Wall-clock analysis runtimes are deliberately excluded so the
/// rendered JSON is reproducible run to run.
fn sweep_metrics(results: &vc2m::sweep::SweepResults) -> vc2m::simcore::MetricsRegistry {
    let mut metrics = vc2m::simcore::MetricsRegistry::new();
    metrics.counter_add("sweep.points", results.rows().len() as u64);
    metrics.counter_add("sweep.solutions", results.solutions().len() as u64);
    let mut analyzed = 0u64;
    let mut schedulable = 0u64;
    for row in results.rows() {
        for cell in &row.cells {
            analyzed += cell.total as u64;
            schedulable += cell.schedulable as u64;
        }
    }
    metrics.counter_add("sweep.tasksets.analyzed", analyzed);
    metrics.counter_add("sweep.tasksets.schedulable", schedulable);
    for &solution in results.solutions() {
        if let Some(u) = results.breakdown_utilization(solution) {
            metrics.gauge_set(&format!("sweep.breakdown.{}", solution.name()), u);
        }
    }
    results
        .cache_stats()
        .export_metrics("analysis.cache.", &mut metrics);
    vc2m::analysis::export_kernel_metrics(&results.kernel_stats(), &mut metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: impl FnOnce(&mut dyn Write) -> Result<(), CliError>) -> String {
        let mut buf = Vec::new();
        f(&mut buf).expect("command succeeds");
        String::from_utf8(buf).expect("utf8")
    }

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn platforms_lists_three() {
        let out = run(platforms);
        assert!(out.contains("Xeon E5-2618L"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn benchmarks_lists_thirteen() {
        let out = run(|w| benchmarks(&argv(&[]), w));
        assert!(out.contains("canneal"));
        assert!(out.contains("swaptions"));
        // Header + 13 benchmarks + blank + footnote.
        assert!(out.lines().count() >= 15);
    }

    #[test]
    fn analyze_light_workload_schedulable_everywhere() {
        let out = run(|w| analyze(&argv(&["--utilization", "0.3", "--seed", "1"]), w));
        assert!(out.contains("workload:"));
        assert_eq!(out.matches("schedulable").count(), 5, "{out}");
        assert!(!out.contains("NOT schedulable"), "{out}");
    }

    #[test]
    fn analyze_single_solution() {
        let out = run(|w| {
            analyze(
                &argv(&["--utilization", "0.3", "--solution", "baseline"]),
                w,
            )
        });
        assert!(out.contains("Baseline (existing CSA)"));
        assert!(!out.contains("flattening"));
    }

    #[test]
    fn simulate_reports_deadlines() {
        let out = run(|w| {
            simulate(
                &argv(&[
                    "--utilization",
                    "0.4",
                    "--solution",
                    "flattening",
                    "--horizon-ms",
                    "1200",
                ]),
                w,
            )
        });
        assert!(out.contains("all deadlines met"), "{out}");
    }

    #[test]
    fn sweep_quick_single_solution() {
        let out = run(|w| sweep(&argv(&["--solution", "flattening", "--threads", "2"]), w));
        assert!(out.contains("flatten"));
        assert!(out.contains("breakdown"));
    }

    #[test]
    fn isolation_lists_reductions() {
        let out = run(|w| isolation(&argv(&["--runs", "5"]), w));
        assert!(out.contains("canneal"));
        assert!(out.contains("reduction"));
        assert!(out.matches('x').count() >= 13);
    }

    #[test]
    fn admit_generated_trace_summarizes() {
        let out = run(|w| admit(&argv(&["--requests", "40", "--seed", "7"]), w));
        assert!(out.contains("admission on"), "{out}");
        assert!(out.contains("40 requests"), "{out}");
        assert!(out.contains("admitted"), "{out}");
        assert!(out.contains("final state:"), "{out}");
    }

    #[test]
    fn admit_reference_mode_matches_fast_summary() {
        let fast = run(|w| admit(&argv(&["--requests", "30", "--seed", "11"]), w));
        let slow = run(|w| {
            admit(
                &argv(&["--requests", "30", "--seed", "11", "--reference"]),
                w,
            )
        });
        // Same decisions, so the admitted/rejected/departed line agrees.
        let pick = |s: &str| s.lines().nth(1).unwrap().to_string();
        assert_eq!(pick(&fast), pick(&slow));
        assert!(slow.contains("(reference mode)"));
    }

    #[test]
    fn bad_options_are_reported() {
        let mut buf = Vec::new();
        assert!(analyze(&argv(&["--utilization", "-1"]), &mut buf).is_err());
        assert!(analyze(&argv(&["--vms", "0"]), &mut buf).is_err());
        assert!(simulate(&argv(&["--horizon-ms", "0"]), &mut buf).is_err());
        assert!(sweep(&argv(&["--threads", "0"]), &mut buf).is_err());
        assert!(isolation(&argv(&["--runs", "0"]), &mut buf).is_err());
        assert!(admit(&argv(&["--requests", "0"]), &mut buf).is_err());
        assert!(admit(&argv(&["--solution", "all"]), &mut buf).is_err());
        assert!(admit(&argv(&["--trace-in", "/nonexistent.trace"]), &mut buf).is_err());
        // Fault-tolerance flag misuse fails loudly instead of being
        // silently ignored.
        assert!(admit(&argv(&["--fleet-fault-seed", "1"]), &mut buf).is_err());
        assert!(admit(&argv(&["--hosts", "2", "--fleet-fault-count", "3"]), &mut buf).is_err());
        assert!(admit(&argv(&["--hosts", "2", "--journal", "/tmp/j"]), &mut buf).is_err());
        assert!(admit(&argv(&["--hi-fraction", "1.5"]), &mut buf).is_err());
        assert!(admit(&argv(&["--hi-fraction", "0.5", "--trace-in", "x.trace"]), &mut buf).is_err());
        assert!(admit(&argv(&["--recover", "/nonexistent.journal"]), &mut buf).is_err());
    }

    #[test]
    fn admit_journal_round_trips_through_recover() {
        let path = std::env::temp_dir().join(format!("vc2m-cli-{}.journal", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let journaled = run(|w| {
            admit(
                &argv(&["--requests", "40", "--seed", "11", "--journal", &path_s]),
                w,
            )
        });
        let recovered = run(|w| admit(&argv(&["--recover", &path_s, "--seed", "11"]), w));
        let _ = std::fs::remove_file(&path);
        assert!(journaled.contains("journal records"), "{journaled}");
        assert!(
            recovered.contains("40 decisions reconstructed"),
            "{recovered}"
        );
        assert!(recovered.contains("conformant"), "{recovered}");
        // The recovered engine landed in the journaling engine's final
        // state (its summary line is a prefix of the richer one).
        let state = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("final state:"))
                .unwrap()
                .to_string()
        };
        assert!(state(&journaled).starts_with(&state(&recovered)));
    }

    #[test]
    fn admit_fleet_faults_summarize_and_are_thread_invariant() {
        let base = [
            "--hosts",
            "4",
            "--requests",
            "60",
            "--seed",
            "5",
            "--hi-fraction",
            "0.3",
            "--fleet-fault-seed",
            "9",
            "--fleet-fault-count",
            "3",
        ];
        let serial = run(|w| admit(&argv(&base), w));
        assert!(serial.contains("faults: 3 injected"), "{serial}");
        assert!(serial.contains("evacuations:"), "{serial}");
        let mut threaded = base.to_vec();
        threaded.extend(["--threads", "4"]);
        let parallel = run(|w| admit(&argv(&threaded), w));
        assert_eq!(serial, parallel, "armed fleet summary depends on threads");
    }
}
