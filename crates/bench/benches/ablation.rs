//! Ablations of vC²M's design choices (beyond the paper's figures).
//!
//! `DESIGN.md` calls out three load-bearing choices in the allocation
//! heuristic; these measurements show what each one costs:
//!
//! * **Phase-1 restarts** — how much work the random-permutation
//!   retries add (1 vs 10 permutations);
//! * **balance rounds** — the Phase-3 ↔ Phase-2 iteration budget;
//! * **checkpoint-cached budget search** — the periodic-resource-model
//!   minimal-budget computation that dominates existing-CSA runs
//!   (single tasks vs 10-task demands).

use vc2m::alloc::hypervisor_level::{heuristic, HeuristicConfig};
use vc2m::prelude::*;
use vc2m::sched::{dbf::Demand, sbf::min_budget};
use vc2m_bench::timing::run;
use vc2m_rng::DetRng;

fn vcpus_for_ablation(utilization: f64) -> (Platform, Vec<VcpuSpec>) {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, UtilizationDist::Uniform),
        0xAB1A,
    );
    let tasks = generator.generate();
    let vms = vec![VmSpec::new(VmId(0), tasks).expect("non-empty")];
    let mut rng = DetRng::seed_from_u64(1);
    let vcpus = Solution::HeuristicOverheadFree
        .vm_level(&vms, &platform, &mut rng)
        .expect("vm level succeeds");
    (platform, vcpus)
}

fn bench_permutations() {
    let (platform, vcpus) = vcpus_for_ablation(1.6);
    for permutations in [1usize, 4, 10] {
        let config = HeuristicConfig {
            max_permutations: permutations,
            ..HeuristicConfig::default()
        };
        run(&format!("permutations/{permutations}"), 10, || {
            let mut rng = DetRng::seed_from_u64(2);
            heuristic(vcpus.clone(), &platform, config, &mut rng)
        });
    }
}

fn bench_balance_rounds() {
    let (platform, vcpus) = vcpus_for_ablation(1.6);
    for rounds in [1usize, 4, 8] {
        let config = HeuristicConfig {
            max_balance_rounds: rounds,
            ..HeuristicConfig::default()
        };
        run(&format!("balance_rounds/{rounds}"), 10, || {
            let mut rng = DetRng::seed_from_u64(2);
            heuristic(vcpus.clone(), &platform, config, &mut rng)
        });
    }
}

fn bench_min_budget() {
    let single = Demand::new(vec![(10.0, 1.0)]).expect("valid demand");
    run("min_budget/single_task", 1_000, || min_budget(&single, 10.0));
    let many = Demand::new(
        (0..10)
            .map(|i| (100.0 * f64::from(1 << (i % 4)), 5.0))
            .collect(),
    )
    .expect("valid demand");
    run("min_budget/ten_tasks_harmonic", 1_000, || {
        min_budget(&many, 100.0)
    });
}

fn main() {
    println!("ablation: design-choice costs");
    bench_permutations();
    bench_balance_rounds();
    bench_min_budget();
}
