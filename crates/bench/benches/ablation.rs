//! Ablations of vC²M's design choices (beyond the paper's figures).
//!
//! `DESIGN.md` calls out three load-bearing choices in the allocation
//! heuristic; these benches measure what each one costs:
//!
//! * **Phase-1 restarts** — how much work the random-permutation
//!   retries add (1 vs 10 permutations);
//! * **balance rounds** — the Phase-3 ↔ Phase-2 iteration budget;
//! * **checkpoint-cached budget search** — the periodic-resource-model
//!   minimal-budget computation that dominates existing-CSA runs
//!   (single tasks vs 10-task demands).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vc2m::alloc::hypervisor_level::{heuristic, HeuristicConfig};
use vc2m::prelude::*;
use vc2m::sched::{dbf::Demand, sbf::min_budget};

fn vcpus_for_ablation(utilization: f64) -> (Platform, Vec<VcpuSpec>) {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, UtilizationDist::Uniform),
        0xAB1A,
    );
    let tasks = generator.generate();
    let vms = vec![VmSpec::new(VmId(0), tasks).expect("non-empty")];
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let vcpus = Solution::HeuristicOverheadFree
        .vm_level(&vms, &platform, &mut rng)
        .expect("vm level succeeds");
    (platform, vcpus)
}

fn bench_permutations(c: &mut Criterion) {
    let (platform, vcpus) = vcpus_for_ablation(1.6);
    let mut group = c.benchmark_group("ablation_permutations");
    group.sample_size(10);
    for permutations in [1usize, 4, 10] {
        let config = HeuristicConfig {
            max_permutations: permutations,
            ..HeuristicConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(permutations),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(2);
                    black_box(heuristic(vcpus.clone(), &platform, *config, &mut rng))
                })
            },
        );
    }
    group.finish();
}

fn bench_balance_rounds(c: &mut Criterion) {
    let (platform, vcpus) = vcpus_for_ablation(1.6);
    let mut group = c.benchmark_group("ablation_balance_rounds");
    group.sample_size(10);
    for rounds in [1usize, 4, 8] {
        let config = HeuristicConfig {
            max_balance_rounds: rounds,
            ..HeuristicConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &config, |b, config| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                black_box(heuristic(vcpus.clone(), &platform, *config, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_min_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_min_budget");
    let single = Demand::new(vec![(10.0, 1.0)]).expect("valid demand");
    group.bench_function("single_task", |b| {
        b.iter(|| black_box(min_budget(&single, 10.0)))
    });
    let many = Demand::new(
        (0..10)
            .map(|i| (100.0 * f64::from(1 << (i % 4)), 5.0))
            .collect(),
    )
    .expect("valid demand");
    group.bench_function("ten_tasks_harmonic", |b| {
        b.iter(|| black_box(min_budget(&many, 100.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_permutations,
    bench_balance_rounds,
    bench_min_budget
);
criterion_main!(benches);
