//! Table 1 — memory-bandwidth regulator overhead.
//!
//! The paper reports microsecond-scale costs for the two regulator hot
//! paths on its Xen prototype:
//!
//! ```text
//! Throttle:                    min 0.33 | avg 0.37  | max 1.15   us
//! Memory BW budget replenish.: min 8.81 | avg 52.22 | max 108.65 us
//! ```
//!
//! The benches below time the corresponding simulator code paths. The
//! expected *shape* (the reproduction target): the throttle path is
//! over an order of magnitude cheaper than the refiller, which touches
//! every core's counter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vc2m::membw::{BwRegulator, RegulatorConfig};

fn regulator(cores: usize) -> BwRegulator {
    let mut r = BwRegulator::new(RegulatorConfig::new(cores, 1.0).expect("valid config"));
    for core in 0..cores {
        r.set_budget(core, 1_000).expect("core in range");
    }
    r
}

fn bench_throttle(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    // The throttle path: a request burst crosses the budget boundary,
    // the counter overflows, and the core is marked throttled.
    group.bench_function("throttle", |b| {
        b.iter_batched_ref(
            || regulator(4),
            |r| black_box(r.record_requests(0, 1_001).expect("core in range")),
            BatchSize::SmallInput,
        );
    });
    // Counting below the budget — the no-interrupt fast path the
    // regulator takes on every quantum.
    group.bench_function("count_under_budget", |b| {
        b.iter_batched_ref(
            || regulator(4),
            |r| black_box(r.record_requests(0, 10).expect("core in range")),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_replenish(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    // The refiller: reset every core's counter, clear overflow status,
    // collect the throttled cores to wake.
    for cores in [4usize, 16, 64] {
        group.bench_function(format!("bw_replenish_{cores}_cores"), |b| {
            b.iter_batched_ref(
                || {
                    let mut r = regulator(cores);
                    // Half the cores throttled, as in a busy system.
                    for core in (0..cores).step_by(2) {
                        r.record_requests(core, 2_000).expect("core in range");
                    }
                    r
                },
                |r| black_box(r.replenish_all()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throttle, bench_replenish);
criterion_main!(benches);
