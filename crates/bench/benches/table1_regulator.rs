//! Table 1 — memory-bandwidth regulator overhead.
//!
//! The paper reports microsecond-scale costs for the two regulator hot
//! paths on its Xen prototype:
//!
//! ```text
//! Throttle:                    min 0.33 | avg 0.37  | max 1.15   us
//! Memory BW budget replenish.: min 8.81 | avg 52.22 | max 108.65 us
//! ```
//!
//! The measurements below time the corresponding simulator code paths
//! with a plain `Instant` harness (`vc2m_bench::timing`). The expected
//! *shape* (the reproduction target): the throttle path is over an
//! order of magnitude cheaper than the refiller, which touches every
//! core's counter.

use vc2m::membw::{BwRegulator, RegulatorConfig};
use vc2m_bench::timing::run_batched;

fn regulator(cores: usize) -> BwRegulator {
    let mut r = BwRegulator::new(RegulatorConfig::new(cores, 1.0).expect("valid config"));
    for core in 0..cores {
        r.set_budget(core, 1_000).expect("core in range");
    }
    r
}

fn main() {
    println!("table1: memory-bandwidth regulator overhead");

    // The throttle path: a request burst crosses the budget boundary,
    // the counter overflows, and the core is marked throttled.
    run_batched(
        "throttle",
        10_000,
        || regulator(4),
        |r| r.record_requests(0, 1_001).expect("core in range"),
    );

    // Counting below the budget — the no-interrupt fast path the
    // regulator takes on every quantum.
    run_batched(
        "count_under_budget",
        10_000,
        || regulator(4),
        |r| r.record_requests(0, 10).expect("core in range"),
    );

    // The refiller: reset every core's counter, clear overflow status,
    // collect the throttled cores to wake.
    for cores in [4usize, 16, 64] {
        run_batched(
            &format!("bw_replenish_{cores}_cores"),
            10_000,
            || {
                let mut r = regulator(cores);
                // Half the cores throttled, as in a busy system.
                for core in (0..cores).step_by(2) {
                    r.record_requests(core, 2_000).expect("core in range");
                }
                r
            },
            |r| r.replenish_all(),
        );
    }
}
