//! Figure 4 — analysis running time.
//!
//! The paper measures the wall-clock running time of each solution's
//! analysis as taskset utilization grows, finding that the
//! overhead-free solutions stay under ~3 s while the existing-CSA
//! solutions climb toward 25 s.
//!
//! Reproduction target: the *ordering* — overhead-free (and
//! flattening) analyses are far cheaper than existing-CSA analyses,
//! and the existing-CSA cost grows quickly with utilization (more
//! tasks → more VCPUs → more 380-cell periodic-resource-model budget
//! searches).

use vc2m::prelude::*;
use vc2m_bench::timing::run;

fn workload(utilization: f64, seed: u64) -> Vec<VmSpec> {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, UtilizationDist::Uniform),
        seed,
    );
    vec![VmSpec::new(VmId(0), generator.generate()).expect("non-empty taskset")]
}

fn main() {
    println!("fig4: analysis running time per solution");
    let platform = Platform::platform_a();
    for &utilization in &[0.5, 1.0, 1.5] {
        let vms = workload(utilization, 0xF164);
        for solution in Solution::ALL {
            run(&format!("{}/u{utilization}", short(solution)), 10, || {
                solution.allocate(&vms, &platform, 1)
            });
        }
    }
}

fn short(s: Solution) -> &'static str {
    match s {
        Solution::HeuristicFlattening => "flattening",
        Solution::HeuristicOverheadFree => "overhead_free",
        Solution::HeuristicExisting => "heuristic_existing",
        Solution::EvenlyPartition => "evenly_partition",
        Solution::Baseline => "baseline",
        Solution::Auto => "auto",
    }
}
