//! Table 2 — scheduler overhead at 24 and 96 VCPUs.
//!
//! The paper reports, for its extended RTDS scheduler:
//!
//! ```text
//!                       24 VCPUs              96 VCPUs
//! CPU budget replenish. 0.29 | 0.74 | 2.95    0.34 | 1.26 | 3.73
//! Scheduling            0.13 | 0.57 | 1.73    0.13 | 0.55 | 2.03
//! Context switching     0.04 | 0.23 | 32.07   0.04 | 0.27 | 24.67
//! ```
//!
//! Reproduction target: overheads grow *slowly* from 24 to 96 VCPUs.
//! The measurements below time a complete simulated second of the
//! hypervisor at each VCPU count (thousands of handler invocations),
//! so the per-VCPU scaling is directly visible in the runtime ratio;
//! the `table2` binary prints the per-handler min/avg/max rows from
//! the in-simulator probes.

use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m_bench::scheduler_stress_system;
use vc2m_bench::timing::{run_batched, run_consuming};

fn bench_simulated_second() {
    let platform = Platform::platform_a();
    for vcpu_count in [24usize, 96] {
        let (allocation, tasks) = scheduler_stress_system(&platform, vcpu_count);
        run_consuming(
            &format!("simulated_second_{vcpu_count}_vcpus"),
            20,
            || {
                HypervisorSim::new(
                    &platform,
                    &allocation,
                    &tasks,
                    SimConfig::default().with_horizon(SimDuration::from_ms(1000.0)),
                )
                .expect("realizable allocation")
            },
            |sim| sim.run().expect("fault-free run succeeds"),
        );
    }
}

fn bench_scheduling_decision() {
    // The bare decision path: an EDF pick over a ready queue of the
    // size a single core sees (24 or 96 VCPUs over 4 cores).
    use vc2m::model::SimTime;
    use vc2m::sched::edf::{EdfKey, ReadyQueue};
    for per_core in [6usize, 24] {
        run_batched(
            &format!("edf_pick_{per_core}_per_core"),
            10_000,
            || {
                let mut q = ReadyQueue::new();
                for i in 0..per_core {
                    q.insert(EdfKey::new(SimTime::from_ms(10.0 + i as f64), 10_000_000, i));
                }
                q
            },
            |q| {
                let key = *q.peek().expect("non-empty");
                q.remove(&key);
                q.insert(key);
            },
        );
    }
}

fn main() {
    println!("table2: scheduler overhead at 24 and 96 VCPUs");
    bench_simulated_second();
    bench_scheduling_decision();
}
