//! Table 2 — scheduler overhead at 24 and 96 VCPUs.
//!
//! The paper reports, for its extended RTDS scheduler:
//!
//! ```text
//!                       24 VCPUs              96 VCPUs
//! CPU budget replenish. 0.29 | 0.74 | 2.95    0.34 | 1.26 | 3.73
//! Scheduling            0.13 | 0.57 | 1.73    0.13 | 0.55 | 2.03
//! Context switching     0.04 | 0.23 | 32.07   0.04 | 0.27 | 24.67
//! ```
//!
//! Reproduction target: overheads grow *slowly* from 24 to 96 VCPUs.
//! The criterion benches time a complete simulated second of the
//! hypervisor at each VCPU count (thousands of handler invocations),
//! so the per-VCPU scaling is directly visible in the throughput
//! ratio; the `table2` binary prints the per-handler min/avg/max rows
//! from the in-simulator probes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m_bench::scheduler_stress_system;

fn bench_simulated_second(c: &mut Criterion) {
    let platform = Platform::platform_a();
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    for vcpu_count in [24usize, 96] {
        let (allocation, tasks) = scheduler_stress_system(&platform, vcpu_count);
        group.bench_function(format!("simulated_second_{vcpu_count}_vcpus"), |b| {
            b.iter_batched(
                || {
                    HypervisorSim::new(
                        &platform,
                        &allocation,
                        &tasks,
                        SimConfig::default().with_horizon(SimDuration::from_ms(1000.0)),
                    )
                    .expect("realizable allocation")
                },
                |sim| black_box(sim.run()),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn bench_scheduling_decision(c: &mut Criterion) {
    // The bare decision path: an EDF pick over a ready queue of the
    // size a single core sees (24 or 96 VCPUs over 4 cores).
    use vc2m::model::SimTime;
    use vc2m::sched::edf::{EdfKey, ReadyQueue};
    let mut group = c.benchmark_group("table2");
    for per_core in [6usize, 24] {
        group.bench_function(format!("edf_pick_{per_core}_per_core"), |b| {
            b.iter_batched_ref(
                || {
                    let mut q = ReadyQueue::new();
                    for i in 0..per_core {
                        q.insert(EdfKey::new(
                            SimTime::from_ms(10.0 + i as f64),
                            10_000_000,
                            i,
                        ));
                    }
                    q
                },
                |q| {
                    let key = *black_box(q.peek().expect("non-empty"));
                    q.remove(&key);
                    q.insert(key);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_second, bench_scheduling_decision);
criterion_main!(benches);
