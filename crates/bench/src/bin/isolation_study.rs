//! Regenerates the Section 3.3 study: the impact of cache and
//! bandwidth isolation on WCET, per PARSEC-style benchmark.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin isolation_study
//! ```
//!
//! Reproduction targets: isolation reduces WCETs; the size of the
//! reduction varies strongly across benchmarks (memory-bound
//! benchmarks gain the most); and a task's WCET depends on its
//! allocated cache and bandwidth with a benchmark-specific shape.

use vc2m_rng::DetRng;
use vc2m::hypervisor::interference::{measure, InterferenceConfig};
use vc2m::model::Alloc;
use vc2m::prelude::*;
use vc2m_bench::write_results;

fn main() {
    let space = Platform::platform_a().resources();
    let config = InterferenceConfig::default();
    let alloc = Alloc::new(12, 12);

    println!(
        "Impact of cache/BW isolation on WCET — {} co-runners, {} runs each",
        config.co_runners, config.runs
    );
    println!("(slowdown relative to the benchmark's reference execution time)\n");
    println!(
        "{:<14} {:>18} {:>18} {:>10}",
        "benchmark", "isolated (max)", "shared (max)", "reduction"
    );
    let mut csv = String::from("benchmark,isolated_max,shared_max,reduction\n");
    for benchmark in ParsecBenchmark::ALL {
        let mut rng = DetRng::seed_from_u64(0x150_1A7E);
        let m = measure(&benchmark.profile(), &space, alloc, &config, &mut rng);
        let isolated = m.isolated.max().unwrap_or(f64::NAN);
        let shared = m.shared.max().unwrap_or(f64::NAN);
        let reduction = m.wcet_reduction().unwrap_or(f64::NAN);
        println!(
            "{:<14} {isolated:>18.3} {shared:>18.3} {reduction:>9.2}x",
            benchmark.name()
        );
        csv.push_str(&format!(
            "{},{isolated:.4},{shared:.4},{reduction:.4}\n",
            benchmark.name()
        ));
    }

    // The second finding of §3.3: WCET depends on the allocated cache
    // and bandwidth, with benchmark-specific shape. Show two slices of
    // the surface for a memory-bound and a compute-bound benchmark.
    println!("\nWCET sensitivity to the allocation (slowdown at selected cells):\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "(2,1)", "(2,20)", "(20,1)", "(20,20)"
    );
    for benchmark in [ParsecBenchmark::Canneal, ParsecBenchmark::Swaptions] {
        let profile = benchmark.profile();
        let cells = [
            Alloc::new(2, 1),
            Alloc::new(2, 20),
            Alloc::new(20, 1),
            Alloc::new(20, 20),
        ];
        print!("{:<14}", benchmark.name());
        for cell in cells {
            print!(" {:>9.3}", profile.slowdown_at(&space, cell));
        }
        println!();
    }

    let path = write_results("isolation_study.csv", &csv);
    println!("\nwrote {}", path.display());
}
