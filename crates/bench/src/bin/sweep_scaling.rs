//! End-to-end sweep scaling: the serial, cache-disabled sweep (the
//! engine's historical behaviour) against the interface cache and the
//! repetition-granular parallel scheduler, on identical work.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin sweep_scaling            # quick preset
//! cargo run --release -p vc2m-bench --bin sweep_scaling -- --full  # paper scale
//! ```
//!
//! Every variant must produce the *same* schedulable-fraction table —
//! the run aborts otherwise — so the timings compare genuinely
//! equivalent computations. Results land in
//! `results/BENCH_sweep.json`: per-run wall-clock, speedup over the
//! serial uncached baseline, and cache hit rates.

use std::time::Instant;
use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m::sweep::{run_sweep, run_sweep_parallel, SweepConfig};
use vc2m_bench::timing::{json_array, JsonBuilder};
use vc2m_bench::{full_scale_requested, scheduler_stress_system, write_results};

/// One timed sweep variant. `threads == 0` means the serial driver
/// ([`run_sweep`]); positive counts go through [`run_sweep_parallel`].
struct Run {
    name: &'static str,
    threads: usize,
    cached: bool,
}

const RUNS: &[Run] = &[
    Run { name: "serial, no cache", threads: 0, cached: false },
    Run { name: "serial, cache", threads: 0, cached: true },
    Run { name: "parallel x1, cache", threads: 1, cached: true },
    Run { name: "parallel x2, cache", threads: 2, cached: true },
    Run { name: "parallel x4, cache", threads: 4, cached: true },
];

fn main() {
    let platform = Platform::platform_a();
    let (scale, config) = if full_scale_requested() {
        ("paper", SweepConfig::paper(platform, UtilizationDist::Uniform))
    } else {
        ("quick", SweepConfig::quick(platform, UtilizationDist::Uniform))
    };
    println!(
        "sweep scaling ({scale}): {} | {} points x {} tasksets x {} solutions",
        platform,
        config.utilizations.len(),
        config.tasksets_per_point,
        config.solutions.len(),
    );

    // One untimed warmup (page-cache / branch-predictor / allocator
    // steady state), then best-of-N timed repeats per variant: the
    // sweep is deterministic, so min is the noise-robust estimator.
    let repeats = if full_scale_requested() { 1 } else { 3 };
    let mut baseline: Option<(f64, String)> = None;
    let mut rendered = Vec::with_capacity(RUNS.len());
    let mut headline_speedup = f64::NAN;
    for run in RUNS {
        let variant = config.clone().with_cache(run.cached);
        let execute = || {
            if run.threads == 0 {
                run_sweep(&variant)
            } else {
                run_sweep_parallel(&variant, run.threads, |_, _| {})
            }
        };
        std::hint::black_box(execute());
        let mut wall_s = f64::INFINITY;
        let mut results = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let sweep = execute();
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            results = Some(sweep);
        }
        let results = results.expect("at least one timed repeat");

        let csv = results.fractions_csv();
        let (baseline_s, baseline_csv) =
            baseline.get_or_insert_with(|| (wall_s, csv.clone()));
        assert_eq!(
            &csv, baseline_csv,
            "variant '{}' diverged from the serial uncached sweep",
            run.name
        );
        let speedup = *baseline_s / wall_s;
        if run.threads == 4 && run.cached {
            headline_speedup = speedup;
        }

        let stats = results.cache_stats();
        println!(
            "{:<20} {:>8.3} s  speedup {:>5.2}x  cache {:>6.1}% of {} lookups",
            run.name,
            wall_s,
            speedup,
            100.0 * stats.hit_rate(),
            stats.lookups(),
        );
        rendered.push(
            JsonBuilder::new()
                .str("name", run.name)
                .int("threads", run.threads as u64)
                .bool("cache", run.cached)
                .num("wall_s", wall_s)
                .num("speedup_vs_serial_uncached", speedup)
                .int("cache_hits", stats.hits)
                .int("cache_misses", stats.misses)
                .num("cache_hit_rate", stats.hit_rate())
                .build(),
        );
    }

    // Typed-trace overhead on the simulator itself: the same stress
    // system, run with the trace ring disabled and enabled. The typed
    // event path copies a small enum either way (no per-event
    // allocation — pinned by the hypervisor's trace_alloc test), so
    // the delta should stay within noise of zero.
    let (allocation, tasks) = scheduler_stress_system(&platform, 24);
    let horizon_ms = if full_scale_requested() { 10_000.0 } else { 2_500.0 };
    let time_sim = |trace_capacity: usize| -> (f64, u64) {
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(horizon_ms))
            .with_trace_capacity(trace_capacity);
        let run = || {
            HypervisorSim::new(&platform, &allocation, &tasks, config)
                .expect("stress system simulates")
                .run_observed()
                .expect("fault-free run succeeds")
        };
        std::hint::black_box(run());
        let mut wall_s = f64::INFINITY;
        let mut events = 0;
        for _ in 0..repeats {
            let start = Instant::now();
            let (_, observation) = run();
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            events = observation.trace.len() as u64 + observation.trace_dropped;
        }
        (wall_s, events)
    };
    let (untraced_s, sim_events) = time_sim(0);
    let (traced_s, _) = time_sim(4096);
    let trace_overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s;
    println!(
        "\nsim trace delta ({horizon_ms:.0} ms horizon, {sim_events} events): \
         off {untraced_s:.3} s | on {traced_s:.3} s | {trace_overhead_pct:+.1}%"
    );

    let json = JsonBuilder::new()
        .str("bench", "sweep_scaling")
        .str("scale", scale)
        .str("platform", &platform.to_string())
        .str("distribution", UtilizationDist::Uniform.name())
        .int("utilization_points", config.utilizations.len() as u64)
        .int("tasksets_per_point", config.tasksets_per_point as u64)
        .int("solutions", config.solutions.len() as u64)
        .int("total_units", config.total_units() as u64)
        .bool("conformant", true)
        .num("speedup_4_threads_cached", headline_speedup)
        .raw("runs", json_array(rendered))
        .raw(
            "sim_trace",
            JsonBuilder::new()
                .num("horizon_ms", horizon_ms)
                .int("events", sim_events)
                .num("untraced_s", untraced_s)
                .num("traced_s", traced_s)
                .num("overhead_pct", trace_overhead_pct)
                .build(),
        )
        .build();
    let path = write_results("BENCH_sweep.json", &json);
    println!(
        "\nheadline: 4 threads + cache = {headline_speedup:.2}x over serial uncached"
    );
    println!("wrote {}", path.display());
}
