//! End-to-end sweep scaling: the serial, cache-disabled sweep (the
//! engine's historical behaviour) against the interface cache and the
//! coarse-grained (whole-utilization-point) parallel scheduler, on
//! identical work.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin sweep_scaling             # quick preset
//! cargo run --release -p vc2m-bench --bin sweep_scaling -- --full   # paper scale
//! cargo run --release -p vc2m-bench --bin sweep_scaling -- --fleet  # campaign scale
//! ```
//!
//! Every variant must produce the *same* schedulable-fraction table —
//! the run aborts otherwise — so the timings compare genuinely
//! equivalent computations. Results land in
//! `results/BENCH_sweep.json`: per-run wall-clock, speedup over the
//! serial uncached baseline, cache hit rates, and the host's available
//! parallelism (a 4-thread run on a 1-core container documents itself).
//! The headline speedup is derived from the runs table — the most
//! parallel cached variant — never from a hard-coded run name. Setting
//! `VC2M_SWEEP_SPEEDUP_FLOOR=<f64>` turns the headline into a hard
//! gate: the run fails if the speedup falls below the floor (the CI
//! smoke sets this on multicore runners).

use std::time::Instant;
use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m::sweep::{run_sweep, run_sweep_parallel, SweepConfig};
use vc2m_bench::timing::{json_array, JsonBuilder};
use vc2m_bench::{full_scale_requested, scheduler_stress_system, write_results};

/// One timed sweep variant. `threads == 0` means the serial driver
/// ([`run_sweep`]); positive counts go through [`run_sweep_parallel`].
struct Run {
    name: &'static str,
    threads: usize,
    cached: bool,
}

const RUNS: &[Run] = &[
    Run { name: "serial, no cache", threads: 0, cached: false },
    Run { name: "serial, cache", threads: 0, cached: true },
    Run { name: "parallel x1, cache", threads: 1, cached: true },
    Run { name: "parallel x2, cache", threads: 2, cached: true },
    Run { name: "parallel x4, cache", threads: 4, cached: true },
];

fn main() {
    let platform = Platform::platform_a();
    let fleet_requested = std::env::args().any(|a| a == "--fleet");
    let (scale, config) = if fleet_requested {
        ("fleet", SweepConfig::fleet(platform, UtilizationDist::Uniform))
    } else if full_scale_requested() {
        ("paper", SweepConfig::paper(platform, UtilizationDist::Uniform))
    } else {
        ("quick", SweepConfig::quick(platform, UtilizationDist::Uniform))
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sweep scaling ({scale}): {} | {} points x {} tasksets x {} solutions | host parallelism {}",
        platform,
        config.utilizations.len(),
        config.tasksets_per_point,
        config.solutions.len(),
        host_parallelism,
    );

    // One untimed warmup (page-cache / branch-predictor / allocator
    // steady state), then best-of-N timed repeats per variant: the
    // sweep is deterministic, so min is the noise-robust estimator.
    let repeats = if fleet_requested || full_scale_requested() { 1 } else { 3 };
    let mut baseline: Option<(f64, String)> = None;
    let mut rendered = Vec::with_capacity(RUNS.len());
    let mut speedups: Vec<(usize, bool, f64)> = Vec::with_capacity(RUNS.len());
    for run in RUNS {
        let variant = config.clone().with_cache(run.cached);
        let execute = || {
            if run.threads == 0 {
                run_sweep(&variant)
            } else {
                run_sweep_parallel(&variant, run.threads, |_, _| {})
            }
        };
        std::hint::black_box(execute());
        let mut wall_s = f64::INFINITY;
        let mut results = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let sweep = execute();
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            results = Some(sweep);
        }
        let results = results.expect("at least one timed repeat");

        let csv = results.fractions_csv();
        let (baseline_s, baseline_csv) =
            baseline.get_or_insert_with(|| (wall_s, csv.clone()));
        assert_eq!(
            &csv, baseline_csv,
            "variant '{}' diverged from the serial uncached sweep",
            run.name
        );
        let speedup = *baseline_s / wall_s;
        speedups.push((run.threads, run.cached, speedup));

        let stats = results.cache_stats();
        println!(
            "{:<20} {:>8.3} s  speedup {:>5.2}x  cache {:>6.1}% of {} lookups",
            run.name,
            wall_s,
            speedup,
            100.0 * stats.hit_rate(),
            stats.lookups(),
        );
        rendered.push(
            JsonBuilder::new()
                .str("name", run.name)
                .int("threads", run.threads as u64)
                .bool("cache", run.cached)
                .num("wall_s", wall_s)
                .num("speedup_vs_serial_uncached", speedup)
                .int("cache_hits", stats.hits)
                .int("cache_misses", stats.misses)
                .num("cache_hit_rate", stats.hit_rate())
                .build(),
        );
    }

    // Typed-trace overhead on the simulator itself: the same stress
    // system, run with the trace ring disabled and enabled. The typed
    // event path copies a small enum either way (no per-event
    // allocation — pinned by the hypervisor's trace_alloc test), so
    // the delta should stay within noise of zero.
    let (allocation, tasks) = scheduler_stress_system(&platform, 24);
    let horizon_ms = if full_scale_requested() { 10_000.0 } else { 2_500.0 };
    let time_sim = |trace_capacity: usize| -> (f64, u64) {
        let config = SimConfig::default()
            .with_horizon(SimDuration::from_ms(horizon_ms))
            .with_trace_capacity(trace_capacity);
        let run = || {
            HypervisorSim::new(&platform, &allocation, &tasks, config)
                .expect("stress system simulates")
                .run_observed()
                .expect("fault-free run succeeds")
        };
        std::hint::black_box(run());
        let mut wall_s = f64::INFINITY;
        let mut events = 0;
        for _ in 0..repeats {
            let start = Instant::now();
            let (_, observation) = run();
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            events = observation.trace.len() as u64 + observation.trace_dropped;
        }
        (wall_s, events)
    };
    // Headline: the most parallel cached run, taken from the timed
    // runs table itself — renaming or reordering RUNS can no longer
    // detach the headline (historically a hard-coded `threads == 4`
    // match left it NaN when the table changed).
    let (headline_threads, headline_speedup) = speedups
        .iter()
        .filter(|&&(threads, cached, _)| cached && threads > 0)
        .max_by_key(|&&(threads, _, _)| threads)
        .map(|&(threads, _, speedup)| (threads, speedup))
        .expect("RUNS contains a cached parallel variant");

    let (untraced_s, sim_events) = time_sim(0);
    let (traced_s, _) = time_sim(4096);
    let trace_overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s;
    println!(
        "\nsim trace delta ({horizon_ms:.0} ms horizon, {sim_events} events): \
         off {untraced_s:.3} s | on {traced_s:.3} s | {trace_overhead_pct:+.1}%"
    );

    let json = JsonBuilder::new()
        .str("bench", "sweep_scaling")
        .str("scale", scale)
        .str("platform", &platform.to_string())
        .str("distribution", UtilizationDist::Uniform.name())
        .int("utilization_points", config.utilizations.len() as u64)
        .int("tasksets_per_point", config.tasksets_per_point as u64)
        .int("solutions", config.solutions.len() as u64)
        .int("total_units", config.total_units() as u64)
        .int("host_parallelism", host_parallelism as u64)
        .bool("conformant", true)
        .num("headline_speedup", headline_speedup)
        .int("headline_threads", headline_threads as u64)
        .raw("runs", json_array(rendered))
        .raw(
            "sim_trace",
            JsonBuilder::new()
                .num("horizon_ms", horizon_ms)
                .int("events", sim_events)
                .num("untraced_s", untraced_s)
                .num("traced_s", traced_s)
                .num("overhead_pct", trace_overhead_pct)
                .build(),
        )
        .build();
    let path = write_results("BENCH_sweep.json", &json);
    println!(
        "\nheadline: {headline_threads} threads + cache = {headline_speedup:.2}x over serial \
         uncached (host parallelism {host_parallelism})"
    );
    println!("wrote {}", path.display());

    // Optional hard gate, checked after the artifact is written so a
    // failing run still leaves its numbers behind for debugging. CI
    // sets the floor on multicore runners; a single-core host (where
    // extra threads cannot beat serial, as host_parallelism records)
    // leaves it unset.
    if let Ok(floor) = std::env::var("VC2M_SWEEP_SPEEDUP_FLOOR") {
        let floor: f64 = floor
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_SWEEP_SPEEDUP_FLOOR must be a float, got '{floor}'"));
        assert!(
            headline_speedup >= floor,
            "headline speedup {headline_speedup:.2}x fell below the required floor {floor:.2}x"
        );
    }
}
