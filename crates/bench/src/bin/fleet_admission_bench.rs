//! Sharded-fleet admission benchmark: the [`AdmissionFleet`] across
//! host counts, plus the saturated-regime rejection memo on the
//! rejection-heavy trace preset the memo exists for.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin fleet_admission_bench           # quick
//! cargo run --release -p vc2m-bench --bin fleet_admission_bench -- --full # full scale
//! VC2M_FLEET_REQUESTS=120 ... fleet_admission_bench                       # CI smoke
//! ```
//!
//! Conformance comes first and gates the timings:
//!
//! 1. a one-host fleet must be byte-identical to the plain engine
//!    (merged log and final allocation);
//! 2. parallel replay must match serial replay at 1, 2, and 8 threads
//!    on the multi-host churn trace;
//! 3. memo-on and memo-off must produce bit-identical decision logs on
//!    the rejection-heavy preset, and the memo must actually fire.
//!
//! Then two timed sections, both over pre-materialized work items
//! (trace decoding and taskset generation are the workload author's
//! cost, identical for any controller, so they stay outside the timed
//! regions):
//!
//! * per-host-count throughput — serial fleet replay of the same churn
//!   workload at 1, 2, and 4 hosts, reported as decisions/s;
//! * memo speedup — the rejection-heavy preset replayed memo-on vs
//!   memo-off. The preset's retries are routed back to the owning
//!   host, so a repeat rejection is a hash probe under the memo and a
//!   full solver pass without it; `memo_speedup` is the per-decision
//!   time ratio (same decision count both arms).
//!
//! Results land in `results/BENCH_fleet.json`.
//! `VC2M_FLEET_FLOOR=<f64>` turns `memo_speedup` into a hard gate
//! (checked after the artifact is written, so a failing run still
//! leaves its numbers behind).

use std::time::Instant;
use vc2m::admission::{fleet_items, generate, replay, AdmissionTrace, TraceSpec};
use vc2m::prelude::*;
use vc2m_bench::timing::{json_array, metrics_json, JsonBuilder};
use vc2m_bench::{full_scale_requested, write_results};

/// Engine/trace seed, matching `admission_bench` and the CLI default.
const SEED: u64 = 42;

/// Host counts for the throughput section; the largest doubles as the
/// parallel-conformance fleet size.
const HOST_COUNTS: [usize; 3] = [1, 2, 4];

/// Fleet size for the memo section (matches the conformance suite's
/// rejection-heavy scenario).
const MEMO_HOSTS: usize = 2;

fn requested_trace_size() -> usize {
    // No `.max(1)`: an explicit `VC2M_FLEET_REQUESTS=0` is a valid
    // degenerate run (rate fields become `null`), not an error.
    match std::env::var("VC2M_FLEET_REQUESTS") {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_FLEET_REQUESTS must be a usize, got {raw:?}")),
        Err(_) => {
            if full_scale_requested() {
                3000
            } else {
                1000
            }
        }
    }
}

/// `numerator / denominator`, or `None` when the denominator is not a
/// positive finite quantity — a zero-request run makes elapsed time
/// and decision counts zero, and `0/0` must surface as `null` in the
/// JSON, not as NaN/inf.
fn guarded_rate(numerator: f64, denominator: f64) -> Option<f64> {
    (denominator.is_finite() && denominator > 0.0).then(|| numerator / denominator)
}

/// Renders a guarded rate for the console (`n/a` instead of NaN).
fn show(rate: Option<f64>, precision: usize) -> String {
    match rate {
        Some(value) => format!("{value:.precision$}"),
        None => "n/a".to_string(),
    }
}

/// Best-of-`iters` wall time, in microseconds, of a fresh fleet
/// replaying `items` under `config`.
fn timed_replay(
    platform: Platform,
    config: FleetConfig,
    items: &[FleetWorkItem],
    iters: usize,
) -> (f64, AdmissionFleet) {
    let mut best: Option<(f64, AdmissionFleet)> = None;
    for _ in 0..iters.max(1) {
        let mut fleet = AdmissionFleet::new(platform, config);
        let t = Instant::now();
        fleet.replay(items);
        let total = t.elapsed().as_secs_f64() * 1e6;
        if best.as_ref().is_none_or(|(b, _)| total < *b) {
            best = Some((total, fleet));
        }
    }
    best.expect("at least one iteration")
}

/// Conformance gates: 1-host == engine, parallel == serial, memo-on ==
/// memo-off. Panics on any divergence.
fn conformance(platform: Platform, churn: &AdmissionTrace, heavy: &AdmissionTrace) {
    // 1-host fleet IS the plain engine, byte for byte.
    let one_host = churn.clone().with_hosts(1);
    let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut engine, &one_host);
    let mut one = AdmissionFleet::new(platform, FleetConfig::new(1, SEED));
    one.replay(&fleet_items(&one_host, platform.resources()));
    assert_eq!(
        one.log_text(),
        engine.log_text(),
        "one-host fleet diverged from the plain engine"
    );
    assert_eq!(one.engines()[0].allocation(), engine.allocation());

    // Parallel replay is thread-count invariant on the multi-host trace.
    let hosts = *HOST_COUNTS.last().expect("non-empty host counts");
    let config = FleetConfig::new(hosts, SEED);
    let items = fleet_items(&churn.clone().with_hosts(hosts), platform.resources());
    let mut serial = AdmissionFleet::new(platform, config);
    serial.replay(&items);
    for threads in [1, 2, 8] {
        let parallel = AdmissionFleet::replay_parallel(platform, config, &items, threads);
        assert_eq!(
            parallel.log_text(),
            serial.log_text(),
            "parallel replay diverged at {threads} threads"
        );
        assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
    }

    // The memo is an invisible cache on the trace it exists for.
    let heavy_items = fleet_items(heavy, platform.resources());
    let run = |engine_config: AdmissionConfig| {
        let mut fleet = AdmissionFleet::new(
            platform,
            FleetConfig::new(MEMO_HOSTS, SEED).with_engine(engine_config),
        );
        fleet.replay(&heavy_items);
        fleet
    };
    let on = run(AdmissionConfig::new(SEED));
    let off = run(AdmissionConfig::new(SEED).without_memo());
    assert_eq!(
        on.log_text(),
        off.log_text(),
        "memo changed the decision log"
    );
    assert_eq!(off.aggregate_stats().memo_hits, 0);
    if !heavy.is_empty() {
        assert!(
            on.aggregate_stats().memo_hits > 0,
            "rejection-heavy preset never hit the memo"
        );
    }
}

/// Everything but env/CLI plumbing and the floor gate: conformance,
/// the timed sections, the printed summary, and the JSON document.
/// Returns the document and the memo speedup (`None` on a degenerate
/// trace).
fn run(requests: usize, iters: usize) -> (String, Option<f64>) {
    let platform = Platform::platform_a();
    let space = platform.resources();
    let churn = generate(&TraceSpec::new(requests, SEED));
    let heavy = generate(&TraceSpec::rejection_heavy(requests, SEED, MEMO_HOSTS));
    println!(
        "fleet admission bench on {platform}: {} churn + {} rejection-heavy requests (seed {SEED})\n",
        churn.len(),
        heavy.len()
    );

    conformance(platform, &churn, &heavy);
    println!(
        "conformant: one-host == engine, parallel == serial (1/2/8 threads), memo-on == memo-off"
    );

    // Per-host-count throughput over the identical churn workload.
    let mut throughput_rows = Vec::new();
    let mut last_fleet = None;
    println!("\n  hosts   total us   decisions/s");
    for hosts in HOST_COUNTS {
        let trace = churn.clone().with_hosts(hosts);
        let items = fleet_items(&trace, space);
        let (total_us, fleet) =
            timed_replay(platform, FleetConfig::new(hosts, SEED), &items, iters);
        // A decision-free replay still burns a few microseconds of
        // wall time; its rate is degenerate (`null`), not `0/s`.
        let rate = guarded_rate(fleet.decisions().len() as f64, total_us / 1e6)
            .filter(|_| !fleet.decisions().is_empty());
        println!(
            "  {hosts:>5}  {total_us:>9.0}   {}",
            show(rate, 0)
        );
        throughput_rows.push(
            JsonBuilder::new()
                .int("hosts", hosts as u64)
                .int("decisions", fleet.decisions().len() as u64)
                .num("total_us", total_us)
                .num("decisions_per_sec", rate.unwrap_or(f64::NAN))
                .build(),
        );
        last_fleet = Some(fleet);
    }

    // Memo-on vs memo-off on the rejection-heavy preset.
    let heavy_items = fleet_items(&heavy, space);
    let memo_config = FleetConfig::new(MEMO_HOSTS, SEED);
    let (on_us, on_fleet) = timed_replay(platform, memo_config, &heavy_items, iters);
    let (off_us, _) = timed_replay(
        platform,
        memo_config.with_engine(AdmissionConfig::new(SEED).without_memo()),
        &heavy_items,
        iters,
    );
    let decisions = on_fleet.decisions().len();
    let on_per_decision = guarded_rate(on_us, decisions as f64);
    let off_per_decision = guarded_rate(off_us, decisions as f64);
    // Same guard: with no decisions, both arms time pure replay
    // overhead and their ratio is noise, not a speedup.
    let memo_speedup = guarded_rate(off_us, on_us).filter(|_| decisions > 0);
    let memo_stats = on_fleet.aggregate_stats();
    println!(
        "\nrejection-heavy preset ({MEMO_HOSTS} hosts, {decisions} decisions): \
         {} us/decision memo-on vs {} us/decision memo-off",
        show(on_per_decision, 1),
        show(off_per_decision, 1)
    );
    println!(
        "memo: {} hits, {} inserts, {} invalidations -> {}x per-decision speedup",
        memo_stats.memo_hits,
        memo_stats.memo_inserts,
        memo_stats.memo_invalidations,
        show(memo_speedup, 2)
    );

    let mut metrics = vc2m::simcore::MetricsRegistry::new();
    if let Some(fleet) = &last_fleet {
        fleet.export_metrics(&mut metrics);
    }
    // `JsonBuilder::num` renders non-finite values as `null`, so the
    // guarded `None`s are passed through as NaN deliberately.
    let json = JsonBuilder::new()
        .str("bench", "fleet_admission_bench")
        .str("scale", if full_scale_requested() { "full" } else { "quick" })
        .int("requests", requests as u64)
        .int("seed", SEED)
        .bool("conformant", true)
        .raw("throughput", json_array(throughput_rows))
        .int("memo_hosts", MEMO_HOSTS as u64)
        .int("memo_decisions", decisions as u64)
        .num("memo_on_total_us", on_us)
        .num("memo_off_total_us", off_us)
        .num(
            "memo_on_us_per_decision",
            on_per_decision.unwrap_or(f64::NAN),
        )
        .num(
            "memo_off_us_per_decision",
            off_per_decision.unwrap_or(f64::NAN),
        )
        .num("memo_speedup", memo_speedup.unwrap_or(f64::NAN))
        .int("memo_hits", memo_stats.memo_hits)
        .int("memo_inserts", memo_stats.memo_inserts)
        .int("memo_invalidations", memo_stats.memo_invalidations)
        .raw("fleet_metrics", metrics_json(&metrics))
        .build();
    (json, memo_speedup)
}

fn main() {
    let requests = requested_trace_size();
    let iters = if full_scale_requested() { 5 } else { 3 };
    let (json, memo_speedup) = run(requests, iters);
    let path = write_results("BENCH_fleet.json", &json);
    println!("wrote {}", path.display());

    // Optional hard gate, after the artifact is written so a failing
    // run still leaves its numbers behind. A degenerate run has no
    // speedup to gate on.
    if let Ok(floor) = std::env::var("VC2M_FLEET_FLOOR") {
        let floor: f64 = floor
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_FLEET_FLOOR must be a float, got '{floor}'"));
        match memo_speedup {
            Some(speedup) => assert!(
                speedup >= floor,
                "memo_speedup {speedup:.2} fell below the required floor {floor:.2}"
            ),
            None => println!("degenerate trace: no memo_speedup to gate on"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_rate_handles_degenerate_denominators() {
        assert_eq!(guarded_rate(10.0, 2.0), Some(5.0));
        assert_eq!(guarded_rate(10.0, 0.0), None);
        assert_eq!(guarded_rate(0.0, 0.0), None);
        assert_eq!(guarded_rate(10.0, f64::NAN), None);
        assert_eq!(show(None, 2), "n/a");
    }

    /// `VC2M_FLEET_REQUESTS=0` end-to-end: the empty traces run clean
    /// through conformance and both timed sections, and every rate
    /// field is `null` (never NaN/inf text).
    #[test]
    fn zero_request_run_emits_null_rates() {
        let (json, speedup) = run(0, 1);
        assert_eq!(speedup, None);
        assert!(json.contains("\"memo_speedup\": null"), "{json}");
        assert!(json.contains("\"decisions_per_sec\": null"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    /// The quick preset satisfies the acceptance criterion: the memo
    /// is exercised and its per-decision speedup clears 3x on the
    /// rejection-heavy preset. Release-only: debug timings are noise.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing-sensitive, release only")]
    fn memo_speedup_clears_three_x_in_release() {
        let (_, speedup) = run(1000, 2);
        assert!(
            speedup.expect("non-degenerate run") >= 3.0,
            "memo speedup {speedup:?} below 3x"
        );
    }
}
