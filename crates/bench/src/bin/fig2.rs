//! Regenerates Figure 2: fraction of schedulable tasksets versus
//! taskset reference utilization, for the five solutions, on the
//! paper's three platforms (uniform utilization distribution).
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin fig2 -- a        # quick preset
//! cargo run --release -p vc2m-bench --bin fig2 -- b --full # paper scale
//! cargo run --release -p vc2m-bench --bin fig2 -- all
//! ```
//!
//! Reproduction targets: the two vC²M variants nearly coincide and
//! dominate the rest; the baseline breaks down near utilization 0.5
//! while vC²M sustains ≥ 1.3 on Platform A (≈ 2.6× more workload);
//! the gap widens on the 6-core Platform B and narrows on the
//! 12-partition Platform C.

use vc2m::prelude::*;
use vc2m::sweep::{run_sweep_parallel, SweepConfig};
use vc2m_bench::{first_arg, full_scale_requested, write_results};

fn run_platform(letter: &str, platform: Platform, full: bool) {
    let config = if full {
        SweepConfig::paper(platform, UtilizationDist::Uniform)
    } else {
        SweepConfig::quick(platform, UtilizationDist::Uniform)
    };
    println!(
        "\nFigure 2({letter}): {} — uniform distribution, {} tasksets/point{}",
        platform,
        config.tasksets_per_point,
        if full {
            " (paper scale)"
        } else {
            " (quick preset)"
        }
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = run_sweep_parallel(&config, threads, |done, total| {
        eprint!("\r  point {done}/{total}");
        if done == total {
            eprintln!();
        }
    });
    println!("{results}");
    for solution in results.solutions().to_vec() {
        if let Some(u) = results.breakdown_utilization(solution) {
            println!("  breakdown {:<40} {u:.2}", solution.name());
        }
    }
    let name = format!("fig2{letter}.csv");
    let path = write_results(&name, &results.fractions_csv());
    println!("wrote {}", path.display());
}

fn main() {
    let full = full_scale_requested();
    let which = first_arg().unwrap_or_else(|| "a".to_string());
    match which.as_str() {
        "a" => run_platform("a", Platform::platform_a(), full),
        "b" => run_platform("b", Platform::platform_b(), full),
        "c" => run_platform("c", Platform::platform_c(), full),
        "all" => {
            run_platform("a", Platform::platform_a(), full);
            run_platform("b", Platform::platform_b(), full);
            run_platform("c", Platform::platform_c(), full);
        }
        other => {
            eprintln!("unknown platform '{other}': expected a, b, c or all");
            std::process::exit(2);
        }
    }
}
