//! Regenerates Figure 3: schedulability on Platform A under the three
//! bimodal task-utilization distributions.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin fig3 -- light          # quick
//! cargo run --release -p vc2m-bench --bin fig3 -- medium --full  # paper scale
//! cargo run --release -p vc2m-bench --bin fig3 -- all
//! ```
//!
//! Reproduction target: the ordering of the five solutions is the same
//! as in Figure 2 for every distribution.

use vc2m::prelude::*;
use vc2m::sweep::{run_sweep_parallel, SweepConfig};
use vc2m_bench::{first_arg, full_scale_requested, write_results};

fn run_distribution(label: &str, dist: UtilizationDist, full: bool) {
    let platform = Platform::platform_a();
    let config = if full {
        SweepConfig::paper(platform, dist)
    } else {
        SweepConfig::quick(platform, dist)
    };
    println!(
        "\nFigure 3 ({dist}): {} — {} tasksets/point{}",
        platform,
        config.tasksets_per_point,
        if full {
            " (paper scale)"
        } else {
            " (quick preset)"
        }
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = run_sweep_parallel(&config, threads, |done, total| {
        eprint!("\r  point {done}/{total}");
        if done == total {
            eprintln!();
        }
    });
    println!("{results}");
    let name = format!("fig3_{label}.csv");
    let path = write_results(&name, &results.fractions_csv());
    println!("wrote {}", path.display());
}

fn main() {
    let full = full_scale_requested();
    let which = first_arg().unwrap_or_else(|| "light".to_string());
    match which.as_str() {
        "light" => run_distribution("light", UtilizationDist::BimodalLight, full),
        "medium" => run_distribution("medium", UtilizationDist::BimodalMedium, full),
        "heavy" => run_distribution("heavy", UtilizationDist::BimodalHeavy, full),
        "all" => {
            run_distribution("light", UtilizationDist::BimodalLight, full);
            run_distribution("medium", UtilizationDist::BimodalMedium, full);
            run_distribution("heavy", UtilizationDist::BimodalHeavy, full);
        }
        other => {
            eprintln!("unknown distribution '{other}': expected light, medium, heavy or all");
            std::process::exit(2);
        }
    }
}
