//! Regenerates Figure 4: average analysis running time per taskset
//! versus taskset reference utilization, for the five solutions on
//! Platform A.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin fig4            # quick preset
//! cargo run --release -p vc2m-bench --bin fig4 -- --full  # paper scale
//! ```
//!
//! Reproduction targets: the overhead-free solutions stay fast and
//! flat; the existing-CSA solutions are orders of magnitude slower and
//! climb with utilization (the paper reports < 3 s vs up to 25 s).

use vc2m::prelude::*;
use vc2m::sweep::{run_sweep_parallel, SweepConfig};
use vc2m_bench::{full_scale_requested, write_results};

fn main() {
    let platform = Platform::platform_a();
    let config = if full_scale_requested() {
        SweepConfig::paper(platform, UtilizationDist::Uniform)
    } else {
        SweepConfig::quick(platform, UtilizationDist::Uniform)
    };
    println!(
        "Figure 4: analysis running time on {} ({} tasksets/point)",
        platform, config.tasksets_per_point
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = run_sweep_parallel(&config, threads, |done, total| {
        eprint!("\r  point {done}/{total}");
        if done == total {
            eprintln!();
        }
    });

    println!("\naverage running time per taskset (seconds):\n");
    print!("{:>6}", "u*");
    for s in results.solutions() {
        print!(" {:>12}", shorten(s.name()));
    }
    println!();
    for (i, row) in results.rows().iter().enumerate() {
        print!("{:>6.2}", row.utilization);
        for s in results.solutions().to_vec() {
            print!(" {:>12.6}", results.cell(i, s).avg_runtime_s());
        }
        println!();
    }

    let path = write_results("fig4.csv", &results.runtimes_csv());
    println!("\nwrote {}", path.display());
}

fn shorten(name: &str) -> String {
    name.chars().take(12).collect()
}
