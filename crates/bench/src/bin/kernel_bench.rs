//! Schedulability-kernel microbenchmarks: the naive allocating kernels
//! (fresh checkpoint/demand vectors per call) against the incremental
//! ones (SoA merge sweep + reusable [`AnalysisWorkspace`], the
//! [`MinBudgetSolver`] floor table), the batched whole-checkpoint
//! dbf/sbf passes against their scalar per-point loops, plus the
//! end-to-end serial uncached sweep those kernels drive.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin kernel_bench            # quick preset
//! cargo run --release -p vc2m-bench --bin kernel_bench -- --full  # more iterations
//! ```
//!
//! Every naive/incremental pair is checked **bit-for-bit equal** before
//! timing — the run aborts on any divergence, so the speedups compare
//! provably identical computations. Results land in
//! `results/BENCH_kernels.json`: per-kernel min/avg/max timings, the
//! per-pair speedups with their geometric mean as the headline, the
//! end-to-end sweep wall time, and the kernel telemetry counters
//! accumulated over the whole run.

use vc2m::analysis::existing::{existing_vcpu, existing_vcpu_reference};
use vc2m::model::{Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId, WcetSurface};
use vc2m::prelude::*;
use vc2m::sched::dbf::Demand;
use vc2m::sched::kernel::{self, AnalysisWorkspace};
use vc2m::sched::sbf::{min_budget, PeriodicResource};
use vc2m::sweep::run_sweep;
use vc2m_bench::timing::{self, json_array, metrics_json, JsonBuilder, Measurement};
use vc2m_bench::{full_scale_requested, write_results};

/// One demand workload the kernel pairs are exercised on.
struct Workload {
    name: &'static str,
    /// `(period, wcet)` pairs, in milliseconds.
    tasks: &'static [(f64, f64)],
    /// The candidate resource period Π for the budget search.
    period: f64,
}

const WORKLOADS: &[Workload] = &[
    // Harmonic periods: small hyperperiod, few checkpoints — the
    // regime Theorem 2 targets and the sweep generator produces.
    Workload {
        name: "harmonic-8",
        tasks: &[
            (5.0, 0.5),
            (10.0, 1.0),
            (10.0, 0.8),
            (20.0, 2.0),
            (20.0, 1.5),
            (40.0, 3.0),
            (40.0, 2.5),
            (80.0, 4.0),
        ],
        period: 5.0,
    },
    Workload {
        name: "harmonic-16",
        tasks: &[
            (5.0, 0.2),
            (5.0, 0.25),
            (10.0, 0.4),
            (10.0, 0.5),
            (20.0, 0.8),
            (20.0, 1.0),
            (40.0, 1.6),
            (40.0, 2.0),
            (80.0, 3.2),
            (80.0, 4.0),
            (160.0, 6.4),
            (160.0, 8.0),
            (320.0, 12.8),
            (320.0, 16.0),
            (640.0, 25.6),
            (640.0, 32.0),
        ],
        period: 5.0,
    },
    // Near-incommensurate periods at the nanosecond grid: the pairwise
    // LCM overflows the 1e12 ns bound, so no hyperperiod exists and
    // the analysis walks the bounded fallback horizon (~2 400 merged
    // checkpoints) — the worst case for the collect-sort path.
    Workload {
        name: "incommensurate-3",
        tasks: &[(9.999991, 1.0), (10.000019, 1.5), (7.000003, 0.7)],
        period: 10.0,
    },
];

/// Asserts two optional budgets are the same f64 bit pattern.
fn assert_bits(kernel: &str, workload: &str, fast: Option<f64>, reference: Option<f64>) {
    assert_eq!(
        fast.map(f64::to_bits),
        reference.map(f64::to_bits),
        "{kernel} diverged from the reference on {workload}: {fast:?} vs {reference:?}"
    );
}

/// Asserts two VCPU interfaces agree bit-for-bit: period and every
/// budget-surface cell.
fn assert_vcpus_identical(fast: &VcpuSpec, reference: &VcpuSpec) {
    assert_eq!(fast.period().to_bits(), reference.period().to_bits());
    for alloc in fast.budget_surface().space().iter() {
        assert_eq!(
            fast.budget(alloc).to_bits(),
            reference.budget(alloc).to_bits(),
            "budget surfaces diverged at {alloc:?}"
        );
    }
}

/// Asserts the batched supply pass matches the scalar `sbf` bit for
/// bit over the given checkpoint stream before its timing is taken.
fn resource_many_conformance(workload: &str, resource: &PeriodicResource, points: &[f64]) {
    let mut batched = Vec::new();
    resource.sbf_many(points, &mut batched);
    for (&t, &b) in points.iter().zip(batched.iter()) {
        assert_eq!(
            b.to_bits(),
            resource.sbf(t).to_bits(),
            "sbf_many diverged from sbf at t={t} on {workload}",
        );
    }
}

/// A timed naive/incremental pair and its speedup on the fastest
/// iteration — the deterministic kernels make min the noise-robust
/// estimator (scheduler jitter only ever inflates a sample), matching
/// the best-of-N convention of `sweep_scaling`.
struct Pair {
    naive: Measurement,
    incremental: Measurement,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.naive.min_us() / self.incremental.min_us()
    }

    fn json(&self) -> String {
        JsonBuilder::new()
            .raw("naive", self.naive.json())
            .raw("incremental", self.incremental.json())
            .num("speedup", self.speedup())
            .build()
    }
}

fn main() {
    let iters: u64 = if full_scale_requested() { 20_000 } else { 4_000 };
    let surface_iters = iters / 100;
    let sweep_iters = if full_scale_requested() { 5 } else { 3 };
    let kernel_before = kernel::counters();
    let mut workspace = AnalysisWorkspace::new();
    let mut pairs: Vec<(String, Pair)> = Vec::new();

    println!("kernel microbench ({} iters per kernel)\n", iters);
    for w in WORKLOADS {
        let demand = Demand::new(w.tasks.to_vec()).expect("workload parameters are valid");
        // Conformance first: the incremental kernels must reproduce
        // the reference bit patterns before their timings mean
        // anything.
        let reference_budget = min_budget(&demand, w.period);
        assert_bits(
            "workspace min_budget",
            w.name,
            workspace.min_budget(&demand, w.period),
            reference_budget,
        );
        let budget = reference_budget.expect("workloads are feasible");
        // A resource that can schedule the demand with ~5% headroom
        // and one that cannot: both branches of the early-abort sweep.
        let fits = PeriodicResource::new(w.period, (budget * 1.05).min(w.period));
        let starves = PeriodicResource::new(w.period, budget * 0.5);
        for resource in [&fits, &starves] {
            assert_eq!(
                workspace.can_schedule(resource, &demand),
                resource.can_schedule(&demand),
                "workspace can_schedule diverged on {} (budget {})",
                w.name,
                resource.budget(),
            );
        }

        let naive = timing::run(&format!("min_budget naive [{}]", w.name), iters, || {
            min_budget(&demand, w.period)
        });
        let incremental = timing::run(&format!("min_budget workspace [{}]", w.name), iters, || {
            workspace.min_budget(&demand, w.period)
        });
        pairs.push((format!("min_budget/{}", w.name), Pair { naive, incremental }));

        let naive = timing::run(&format!("can_schedule naive [{}]", w.name), iters, || {
            fits.can_schedule(&demand)
        });
        let incremental = timing::run(
            &format!("can_schedule workspace [{}]", w.name),
            iters,
            || workspace.can_schedule(&fits, &demand),
        );
        pairs.push((format!("can_schedule/{}", w.name), Pair { naive, incremental }));

        // Batched checkpoint passes: the whole checkpoint vector in one
        // task-major (dbf) / hoisted-blackout (sbf) sweep, against the
        // historical one-scalar-call-per-point loop. The checkpoint
        // stream is precomputed outside the timed region — both arms
        // pay only for demand/supply evaluation.
        let horizon = kernel::analysis_horizon(&demand, w.period);
        let points = demand.checkpoints(horizon, kernel::MAX_CHECKPOINTS);
        let mut batched = Vec::new();
        demand.dbf_many(&points, &mut batched);
        for (&t, &b) in points.iter().zip(batched.iter()) {
            assert_eq!(
                b.to_bits(),
                demand.dbf(t).to_bits(),
                "dbf_many diverged from dbf at t={t} on {}",
                w.name,
            );
        }
        let mut scratch = Vec::with_capacity(points.len());
        let naive = timing::run(&format!("dbf per-point [{}]", w.name), iters, || {
            scratch.clear();
            scratch.extend(points.iter().map(|&t| demand.dbf(t)));
            std::hint::black_box(scratch.last().copied())
        });
        let mut scratch = Vec::with_capacity(points.len());
        let incremental = timing::run(&format!("dbf_many batched [{}]", w.name), iters, || {
            demand.dbf_many(&points, &mut scratch);
            std::hint::black_box(scratch.last().copied())
        });
        pairs.push((format!("dbf_many/{}", w.name), Pair { naive, incremental }));

        resource_many_conformance(w.name, &fits, &points);
        let mut scratch = Vec::with_capacity(points.len());
        let naive = timing::run(&format!("sbf per-point [{}]", w.name), iters, || {
            scratch.clear();
            scratch.extend(points.iter().map(|&t| fits.sbf(t)));
            std::hint::black_box(scratch.last().copied())
        });
        let mut scratch = Vec::with_capacity(points.len());
        let incremental = timing::run(&format!("sbf_many batched [{}]", w.name), iters, || {
            fits.sbf_many(&points, &mut scratch);
            std::hint::black_box(scratch.last().copied())
        });
        pairs.push((format!("sbf_many/{}", w.name), Pair { naive, incremental }));
    }

    // The repeated-probe call site the solver's floor table serves:
    // one whole VCPU budget surface (one min-budget search per cell)
    // under the existing CSA, naive fresh-`Demand`-per-cell vs the
    // shared-checkpoint solver.
    let platform = Platform::platform_a();
    let space = platform.resources();
    let taskset: TaskSet = WORKLOADS[0]
        .tasks
        .iter()
        .enumerate()
        .map(|(i, &(period, wcet))| {
            // Allocation-dependent WCETs so every surface cell runs a
            // distinct budget search (flat surfaces would be atypically
            // kind to the naive arm's branch predictor).
            let surface = WcetSurface::from_fn(&space, |a| {
                wcet * (1.0 + 1.0 / f64::from(a.cache + a.bandwidth))
            })
            .expect("wcets fit their periods");
            Task::new(TaskId(i), period, surface).expect("workload parameters are valid")
        })
        .collect();
    let fast = existing_vcpu(VcpuId(0), VmId(0), &taskset).expect("taskset is analyzable");
    let reference =
        existing_vcpu_reference(VcpuId(0), VmId(0), &taskset).expect("taskset is analyzable");
    assert_vcpus_identical(&fast, &reference);
    let naive = timing::run("vcpu surface naive per-cell", surface_iters.max(1), || {
        existing_vcpu_reference(VcpuId(0), VmId(0), &taskset)
    });
    let incremental = timing::run("vcpu surface solver", surface_iters.max(1), || {
        existing_vcpu(VcpuId(0), VmId(0), &taskset)
    });
    pairs.push(("vcpu_surface/harmonic-8".into(), Pair { naive, incremental }));

    // End-to-end: the serial, cache-disabled quick sweep — every
    // budget search hits the kernels directly, so this wall time is
    // the macro view of the same optimization (BENCH_sweep.json tracks
    // it across the cache/parallel variants).
    let config = SweepConfig::quick(platform, UtilizationDist::Uniform).with_cache(false);
    let sweep = timing::run("sweep serial uncached (quick)", sweep_iters, || {
        run_sweep(&config)
    });

    let headline =
        (pairs.iter().map(|(_, p)| p.speedup().ln()).sum::<f64>() / pairs.len() as f64).exp();
    println!("\nheadline: geomean incremental speedup {headline:.2}x over naive kernels");

    let kernel_delta = kernel::counters().since(&kernel_before);
    let mut metrics = vc2m::simcore::MetricsRegistry::new();
    vc2m::analysis::export_kernel_metrics(&kernel_delta, &mut metrics);

    let json = JsonBuilder::new()
        .str("bench", "kernel_bench")
        .str("scale", if full_scale_requested() { "full" } else { "quick" })
        .int("iters", pairs[0].1.naive.iters())
        .bool("conformant", true)
        .num("speedup_geomean", headline)
        .raw(
            "kernels",
            json_array(pairs.iter().map(|(name, pair)| {
                JsonBuilder::new()
                    .str("name", name)
                    .raw("pair", pair.json())
                    .build()
            })),
        )
        .raw("sweep_end_to_end", sweep.json())
        .raw("kernel_counters", metrics_json(&metrics))
        .build();
    let path = write_results("BENCH_kernels.json", &json);
    println!("wrote {}", path.display());
}
