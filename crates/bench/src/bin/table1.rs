//! Regenerates Table 1: the bandwidth regulator's overhead
//! (throttle and budget replenishment), in microseconds.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin table1
//! ```
//!
//! Absolute values measure the simulator on the host machine, not Xen
//! on a Xeon; the reproduction target is the shape — throttling is
//! much cheaper than replenishment.

use vc2m::hypervisor::HandlerKind;
use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m_bench::{scheduler_stress_system, stat_cells, write_results};

fn main() {
    // A 4-core system whose tasks generate 1.5× their bandwidth
    // budgets, so the regulator throttles and refills constantly for a
    // simulated ten seconds.
    let platform = Platform::platform_a();
    let (allocation, tasks) = scheduler_stress_system(&platform, 24);
    let config = SimConfig::default()
        .with_horizon(SimDuration::from_ms(10_000.0))
        .with_traffic_fraction(1.5);
    let report = HypervisorSim::new(&platform, &allocation, &tasks, config)
        .expect("realizable allocation")
        .run()
        .expect("fault-free run succeeds");

    println!("Table 1: memory bandwidth regulator's overhead (us)\n");
    println!(
        "{:<34} {:>8} {:>8} {:>8}   (samples)",
        "handler", "min", "avg", "max"
    );
    let mut csv = String::from("handler,min_us,avg_us,max_us,samples\n");
    for kind in [HandlerKind::Throttle, HandlerKind::BwReplenish] {
        let stats = report.handler_overheads.get(&kind);
        let (min, avg, max) = stat_cells(stats);
        let samples = stats.map_or(0, |s| s.count());
        println!(
            "{:<34} {min:>8.3} {avg:>8.3} {max:>8.3}   ({samples})",
            kind.label()
        );
        csv.push_str(&format!(
            "{},{min:.4},{avg:.4},{max:.4},{samples}\n",
            kind.label()
        ));
    }
    println!(
        "\nthrottle events: {}, simulated time: 10 s",
        report.throttle_events
    );
    println!("paper (Xen/Xeon): throttle 0.33|0.37|1.15, replenishment 8.81|52.22|108.65");
    let path = write_results("table1.csv", &csv);
    println!("wrote {}", path.display());
}
