//! Regenerates Table 2: scheduler overhead at 24 and 96 VCPUs
//! (CPU budget replenishment, scheduling, context switching), in
//! microseconds.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin table2
//! ```
//!
//! Reproduction target: overheads grow slowly as the number of VCPUs
//! quadruples.

use vc2m::hypervisor::HandlerKind;
use vc2m::model::SimDuration;
use vc2m::prelude::*;
use vc2m_bench::{scheduler_stress_system, stat_cells, write_results};

fn main() {
    let platform = Platform::platform_a();
    let mut csv = String::from("vcpus,handler,min_us,avg_us,max_us,samples\n");
    println!("Table 2: scheduler's overhead (us)\n");
    for vcpu_count in [24usize, 96] {
        let (allocation, tasks) = scheduler_stress_system(&platform, vcpu_count);
        let config = SimConfig::default().with_horizon(SimDuration::from_ms(10_000.0));
        let report = HypervisorSim::new(&platform, &allocation, &tasks, config)
            .expect("realizable allocation")
            .run()
            .expect("fault-free run succeeds");
        println!("{vcpu_count} VCPUs:");
        println!(
            "  {:<26} {:>8} {:>8} {:>8}   (samples)",
            "handler", "min", "avg", "max"
        );
        for kind in [
            HandlerKind::CpuBudgetReplenish,
            HandlerKind::Scheduling,
            HandlerKind::ContextSwitch,
        ] {
            let stats = report.handler_overheads.get(&kind);
            let (min, avg, max) = stat_cells(stats);
            let samples = stats.map_or(0, |s| s.count());
            println!(
                "  {:<26} {min:>8.3} {avg:>8.3} {max:>8.3}   ({samples})",
                kind.label()
            );
            csv.push_str(&format!(
                "{vcpu_count},{},{min:.4},{avg:.4},{max:.4},{samples}\n",
                kind.label()
            ));
        }
        println!(
            "  ({} jobs, {} context switches over 10 simulated seconds)\n",
            report.jobs_completed, report.context_switches
        );
    }
    println!("paper (Xen/Xeon), 24 -> 96 VCPUs:");
    println!("  CPU budget replenish. 0.29|0.74|2.95  -> 0.34|1.26|3.73");
    println!("  Scheduling            0.13|0.57|1.73  -> 0.13|0.55|2.03");
    println!("  Context switching     0.04|0.23|32.07 -> 0.04|0.27|24.67");
    let path = write_results("table2.csv", &csv);
    println!("wrote {}", path.display());
}
