//! Streaming-admission benchmark: the warm-start [`AdmissionEngine`]
//! against a from-scratch comparator that re-runs the full
//! `allocate_with_degradation` solver after every request — the naive
//! admission controller the engine's incremental path replaces.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin admission_bench            # 1000 requests
//! cargo run --release -p vc2m-bench --bin admission_bench -- --full  # 5000 requests
//! VC2M_ADMIT_REQUESTS=120 ... admission_bench                        # CI smoke scale
//! ```
//!
//! Conformance comes first and gates the timings: the fast engine and
//! the reference engine (analysis cache disabled, full verification
//! after every request) must produce byte-identical decision logs and
//! equal final allocations over the whole trace, the replay must be
//! deterministic (two fast runs, identical bytes), and the final
//! admitted state must pass `verify()`. Only then are the arms timed,
//! over the *same pre-materialized request stream* (trace decoding and
//! taskset generation are the workload author's cost, identical for
//! any controller, so they stay outside both timed regions).
//!
//! Two speedups are reported, deliberately separated:
//!
//! * `speedup_incremental_vs_scratch` — the headline: on the requests
//!   the engine served with warm-start work alone (incremental
//!   admissions, departures, incremental mode changes), the summed
//!   engine time against the summed time the from-scratch controller
//!   spends on those same requests. This is the direct price of a
//!   solver pass versus an in-place state update.
//! * `speedup_vs_scratch` — the whole-trace ratio, including the
//!   requests where the engine itself falls back to the full solver
//!   (repacks and solver rejections). Fallbacks cost both arms the
//!   same solver pass, so this ratio is diluted toward 1 exactly in
//!   proportion to the trace's rejection rate; it is the honest
//!   end-to-end number, not the headline.
//!
//! Results land in `results/BENCH_admission.json` with the engine's
//! `admission.*` metrics. `VC2M_ADMIT_FLOOR=<f64>` turns
//! `decisions_per_sec` into a hard gate (checked after the artifact is
//! written, so a failing run still leaves its numbers behind).

use std::time::Instant;
use vc2m::admission::{generate, materialize, replay, AdmissionTrace, TraceItem, TraceSpec};
use vc2m::prelude::*;
use vc2m_bench::timing::{metrics_json, JsonBuilder};
use vc2m_bench::{full_scale_requested, write_results};

/// The engine seed; also the trace-generator seed, matching the CLI's
/// `vc2m admit --seed 42` default so the two artifacts correspond.
const SEED: u64 = 42;

/// The no-shed policy of the engine's repack path, reused by the
/// comparator so both arms solve the same problem per request.
const NO_SHED: DegradationPolicy = DegradationPolicy { max_attempts: 1 };

fn requested_trace_size() -> usize {
    // No `.max(1)`: an explicit `VC2M_ADMIT_REQUESTS=0` is a valid
    // degenerate run (all rate fields become `null`), not something to
    // silently round up.
    match std::env::var("VC2M_ADMIT_REQUESTS") {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_ADMIT_REQUESTS must be a usize, got {raw:?}")),
        Err(_) => {
            if full_scale_requested() {
                5000
            } else {
                1000
            }
        }
    }
}

/// `numerator / denominator`, or `None` when the denominator is not a
/// positive finite quantity — an empty or all-departure trace can make
/// elapsed time or decision counts zero, and `0/0` must surface as
/// `null` in the JSON, not as NaN/inf.
fn guarded_rate(numerator: f64, denominator: f64) -> Option<f64> {
    (denominator.is_finite() && denominator > 0.0).then(|| numerator / denominator)
}

/// Renders a guarded rate for the console (`n/a` instead of NaN).
fn show(rate: Option<f64>, precision: usize) -> String {
    match rate {
        Some(value) => format!("{value:.precision$}"),
        None => "n/a".to_string(),
    }
}

/// One pre-materialized trace item: the requests (one, or a batch's
/// several) ready to submit.
struct StreamItem {
    batch: bool,
    requests: Vec<AdmissionRequest>,
}

fn pre_materialize(trace: &AdmissionTrace, space: vc2m::model::ResourceSpace) -> Vec<StreamItem> {
    trace
        .items()
        .iter()
        .map(|item| match item {
            TraceItem::Single(r) => StreamItem {
                batch: false,
                requests: vec![materialize(r, space)],
            },
            TraceItem::Batch(rs) => StreamItem {
                batch: true,
                requests: rs.iter().map(|r| materialize(r, space)).collect(),
            },
        })
        .collect()
}

/// Whether every decision in `decisions` was served without a solver
/// pass: incremental admissions, departures (including unknown-VM
/// rejections, which are O(1) lookups) — anything but a repack, a
/// solver rejection, or a degraded mode change.
fn all_incremental(decisions: &[AdmissionDecision]) -> bool {
    decisions.iter().all(|d| {
        let line = d.log_line();
        !line.contains("admitted/repack")
            && !line.contains("rejected (workload not schedulable)")
            && !line.contains("rejected (verification failed")
            && !line.contains("degraded")
    })
}

/// Replays the pre-materialized stream through a fresh engine, timing
/// each item. Returns the engine plus per-item microseconds.
fn timed_engine_pass(
    platform: &Platform,
    items: &[StreamItem],
) -> (AdmissionEngine, Vec<f64>, Vec<bool>) {
    let mut engine = AdmissionEngine::new(*platform, AdmissionConfig::new(SEED));
    let mut per_item = Vec::with_capacity(items.len());
    let mut incremental = Vec::with_capacity(items.len());
    for item in items {
        let before = engine.decisions().len();
        let t = Instant::now();
        if item.batch {
            engine.submit_batch(item.requests.clone());
        } else {
            engine.submit(item.requests[0].clone());
        }
        per_item.push(t.elapsed().as_secs_f64() * 1e6);
        incremental.push(all_incremental(&engine.decisions()[before..]));
    }
    (engine, per_item, incremental)
}

/// The from-scratch comparator: a working set of VM specs and one full
/// `allocate_with_degradation` pass per request — arrivals and mode
/// changes solve for the candidate set, departures re-solve for the
/// survivor set. Returns per-item microseconds.
fn timed_scratch_pass(platform: &Platform, items: &[StreamItem]) -> Vec<f64> {
    let mut working: Vec<VmSpec> = Vec::new();
    let mut per_item = Vec::with_capacity(items.len());
    for item in items {
        let t = Instant::now();
        for request in &item.requests {
            match request {
                AdmissionRequest::Arrival(vm) | AdmissionRequest::ModeChange(vm) => {
                    let previous = working.clone();
                    working.retain(|w| w.id() != vm.id());
                    working.push(vm.clone());
                    let outcome =
                        allocate_with_degradation(Solution::Auto, &working, platform, SEED, &NO_SHED);
                    if outcome.allocation.is_none() {
                        working = previous;
                    }
                    std::hint::black_box(&outcome);
                }
                AdmissionRequest::Departure(id) => {
                    let had = working.iter().any(|w| w.id() == *id);
                    working.retain(|w| w.id() != *id);
                    if had && !working.is_empty() {
                        std::hint::black_box(allocate_with_degradation(
                            Solution::Auto,
                            &working,
                            platform,
                            SEED,
                            &NO_SHED,
                        ));
                    }
                }
            }
        }
        per_item.push(t.elapsed().as_secs_f64() * 1e6);
    }
    per_item
}

/// Best-of-`iters` total plus the per-item vector of the best pass.
fn best_of<T>(iters: usize, mut pass: impl FnMut() -> (Vec<f64>, T)) -> (f64, Vec<f64>, T) {
    let mut best: Option<(f64, Vec<f64>, T)> = None;
    for _ in 0..iters.max(1) {
        let (per_item, extra) = pass();
        let total: f64 = per_item.iter().sum();
        if best.as_ref().is_none_or(|(b, _, _)| total < *b) {
            best = Some((total, per_item, extra));
        }
    }
    best.expect("at least one iteration")
}

/// Everything but env/CLI plumbing and the floor gate: conformance,
/// the timed arms, the printed summary, and the JSON document. Returns
/// the document and the headline rate (`None` on a degenerate trace).
fn run(trace: &AdmissionTrace, iters: usize) -> (String, Option<f64>) {
    let platform = Platform::platform_a();
    let space = platform.resources();
    println!(
        "admission bench on {platform}: {} requests (seed {SEED})\n",
        trace.len()
    );

    // Conformance gates the timings: warm-start vs the full-verify
    // reference oracle, plus replay determinism and final safety.
    let mut fast = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut fast, trace);
    let mut reference =
        AdmissionEngine::new(platform, AdmissionConfig::new(SEED).reference_mode());
    replay(&mut reference, trace);
    assert_eq!(
        fast.log_text(),
        reference.log_text(),
        "fast engine diverged from the reference oracle"
    );
    assert_eq!(
        fast.allocation(),
        reference.allocation(),
        "final allocations diverged between fast and reference engines"
    );
    let mut rerun = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut rerun, trace);
    assert_eq!(
        fast.log_text(),
        rerun.log_text(),
        "fast engine replay is not deterministic"
    );
    if !fast.working_set().is_empty() {
        fast.allocation()
            .verify(&platform)
            .expect("admitted final state must be schedulable");
    }
    let stats = *fast.stats();
    println!(
        "conformant: {} admitted ({} incremental, {} repack), {} rejected, {} degraded, {} departed",
        stats.admitted_incremental + stats.admitted_repack,
        stats.admitted_incremental,
        stats.admitted_repack,
        stats.rejected,
        stats.degraded,
        stats.departed,
    );

    // Timed arms over the identical pre-materialized stream.
    let items = pre_materialize(trace, space);
    let (engine_total, engine_items, (engine, incremental)) = best_of(iters, || {
        let (engine, per_item, incremental) = timed_engine_pass(&platform, &items);
        (per_item, (engine, incremental))
    });
    let (scratch_total, scratch_items, ()) =
        best_of(iters, || (timed_scratch_pass(&platform, &items), ()));

    // The paired incremental-path comparison: engine vs solver on the
    // requests the engine served without any solver pass.
    let mut engine_incremental_us = 0.0;
    let mut scratch_incremental_us = 0.0;
    let mut incremental_items = 0usize;
    for (i, &is_incremental) in incremental.iter().enumerate() {
        if is_incremental {
            engine_incremental_us += engine_items[i];
            scratch_incremental_us += scratch_items[i];
            incremental_items += 1;
        }
    }
    let incremental_speedup = guarded_rate(scratch_incremental_us, engine_incremental_us);
    let whole_trace_speedup = guarded_rate(scratch_total, engine_total);
    let decisions_per_sec = guarded_rate(trace.len() as f64, engine_total / 1e6);

    println!(
        "\nwarm-start engine:       {engine_total:>12.0} us total ({} us/request)",
        show(guarded_rate(engine_total, trace.len() as f64), 1)
    );
    println!(
        "from-scratch comparator: {scratch_total:>12.0} us total ({} us/request)",
        show(guarded_rate(scratch_total, trace.len() as f64), 1)
    );
    println!(
        "incremental-path pairs:  {incremental_items} items, {:.1} us engine vs {:.1} us scratch",
        engine_incremental_us, scratch_incremental_us
    );
    println!(
        "\nheadline: {} decisions/s; incremental admission {}x over from-scratch \
         re-allocation ({}x whole-trace incl. solver fallbacks)",
        show(decisions_per_sec, 0),
        show(incremental_speedup, 1),
        show(whole_trace_speedup, 2),
    );

    let mut metrics = vc2m::simcore::MetricsRegistry::new();
    engine.export_metrics(&mut metrics);
    // `JsonBuilder::num` renders non-finite values as `null`, so the
    // guarded `None`s are passed through as NaN deliberately.
    let json = JsonBuilder::new()
        .str("bench", "admission_bench")
        .str("scale", if full_scale_requested() { "full" } else { "quick" })
        .int("requests", trace.len() as u64)
        .int("seed", SEED)
        .bool("conformant", true)
        .num("decisions_per_sec", decisions_per_sec.unwrap_or(f64::NAN))
        .num(
            "speedup_incremental_vs_scratch",
            incremental_speedup.unwrap_or(f64::NAN),
        )
        .num("speedup_vs_scratch", whole_trace_speedup.unwrap_or(f64::NAN))
        .int("incremental_items", incremental_items as u64)
        .num("engine_total_us", engine_total)
        .num("scratch_total_us", scratch_total)
        .num("engine_incremental_us", engine_incremental_us)
        .num("scratch_incremental_us", scratch_incremental_us)
        .raw("engine_metrics", metrics_json(&metrics))
        .build();
    (json, decisions_per_sec)
}

fn main() {
    let requests = requested_trace_size();
    let trace = generate(&TraceSpec::new(requests, SEED));
    let iters = if full_scale_requested() { 5 } else { 3 };
    let (json, decisions_per_sec) = run(&trace, iters);
    let path = write_results("BENCH_admission.json", &json);
    println!("wrote {}", path.display());

    // Optional hard gate, after the artifact is written so a failing
    // run still leaves its numbers behind for debugging. A degenerate
    // run has no rate to gate on.
    if let Ok(floor) = std::env::var("VC2M_ADMIT_FLOOR") {
        let floor: f64 = floor
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_ADMIT_FLOOR must be a float, got '{floor}'"));
        match decisions_per_sec {
            Some(rate) => assert!(
                rate >= floor,
                "decisions_per_sec {rate:.0} fell below the required floor {floor:.0}"
            ),
            None => println!("degenerate trace: no decisions_per_sec to gate on"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_rate_handles_degenerate_denominators() {
        assert_eq!(guarded_rate(10.0, 2.0), Some(5.0));
        assert_eq!(guarded_rate(10.0, 0.0), None);
        assert_eq!(guarded_rate(0.0, 0.0), None);
        assert_eq!(guarded_rate(10.0, -1.0), None);
        assert_eq!(guarded_rate(10.0, f64::NAN), None);
        assert_eq!(show(None, 1), "n/a");
        assert_eq!(show(Some(1.25), 1), "1.2");
    }

    /// `VC2M_ADMIT_REQUESTS=0` end-to-end: the empty trace runs clean
    /// through conformance and both timed arms, every rate field is
    /// `null` (never NaN/inf text), and there is no rate to gate on.
    #[test]
    fn zero_request_trace_emits_null_rates() {
        let trace = generate(&TraceSpec::new(0, SEED));
        assert_eq!(trace.len(), 0);
        let (json, rate) = run(&trace, 1);
        assert_eq!(rate, None);
        assert!(json.contains("\"decisions_per_sec\": null"), "{json}");
        assert!(json.contains("\"speedup_vs_scratch\": null"), "{json}");
        assert!(
            json.contains("\"speedup_incremental_vs_scratch\": null"),
            "{json}"
        );
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    /// An all-departure trace (every request an unknown-VM departure)
    /// also stays finite-or-null: decisions exist, but no incremental
    /// admission pair and no scratch solver pass ever runs.
    #[test]
    fn all_departure_trace_stays_finite_or_null() {
        use vc2m::admission::{TraceItem, TraceRequest};
        let items = (1..=5)
            .map(|vm| TraceItem::Single(TraceRequest::Depart { vm }))
            .collect();
        let trace = AdmissionTrace::from_items(items);
        let (json, _) = run(&trace, 1);
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }
}
