//! Streaming-admission benchmark: the warm-start [`AdmissionEngine`]
//! against a from-scratch comparator that re-runs the full
//! `allocate_with_degradation` solver after every request — the naive
//! admission controller the engine's incremental path replaces.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin admission_bench            # 1000 requests
//! cargo run --release -p vc2m-bench --bin admission_bench -- --full  # 5000 requests
//! VC2M_ADMIT_REQUESTS=120 ... admission_bench                        # CI smoke scale
//! ```
//!
//! Conformance comes first and gates the timings: the fast engine and
//! the reference engine (analysis cache disabled, full verification
//! after every request) must produce byte-identical decision logs and
//! equal final allocations over the whole trace, the replay must be
//! deterministic (two fast runs, identical bytes), and the final
//! admitted state must pass `verify()`. Only then are the arms timed,
//! over the *same pre-materialized request stream* (trace decoding and
//! taskset generation are the workload author's cost, identical for
//! any controller, so they stay outside both timed regions).
//!
//! Two speedups are reported, deliberately separated:
//!
//! * `speedup_incremental_vs_scratch` — the headline: on the requests
//!   the engine served with warm-start work alone (incremental
//!   admissions, departures, incremental mode changes), the summed
//!   engine time against the summed time the from-scratch controller
//!   spends on those same requests. This is the direct price of a
//!   solver pass versus an in-place state update.
//! * `speedup_vs_scratch` — the whole-trace ratio, including the
//!   requests where the engine itself falls back to the full solver
//!   (repacks and solver rejections). Fallbacks cost both arms the
//!   same solver pass, so this ratio is diluted toward 1 exactly in
//!   proportion to the trace's rejection rate; it is the honest
//!   end-to-end number, not the headline.
//!
//! Results land in `results/BENCH_admission.json` with the engine's
//! `admission.*` metrics. `VC2M_ADMIT_FLOOR=<f64>` turns
//! `decisions_per_sec` into a hard gate (checked after the artifact is
//! written, so a failing run still leaves its numbers behind).

use std::time::Instant;
use vc2m::admission::{generate, materialize, replay, AdmissionTrace, TraceItem, TraceSpec};
use vc2m::prelude::*;
use vc2m_bench::timing::{metrics_json, JsonBuilder};
use vc2m_bench::{full_scale_requested, write_results};

/// The engine seed; also the trace-generator seed, matching the CLI's
/// `vc2m admit --seed 42` default so the two artifacts correspond.
const SEED: u64 = 42;

/// The no-shed policy of the engine's repack path, reused by the
/// comparator so both arms solve the same problem per request.
const NO_SHED: DegradationPolicy = DegradationPolicy { max_attempts: 1 };

fn requested_trace_size() -> usize {
    match std::env::var("VC2M_ADMIT_REQUESTS") {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_ADMIT_REQUESTS must be a usize, got {raw:?}")),
        Err(_) => {
            if full_scale_requested() {
                5000
            } else {
                1000
            }
        }
    }
    .max(1)
}

/// One pre-materialized trace item: the requests (one, or a batch's
/// several) ready to submit.
struct StreamItem {
    batch: bool,
    requests: Vec<AdmissionRequest>,
}

fn pre_materialize(trace: &AdmissionTrace, space: vc2m::model::ResourceSpace) -> Vec<StreamItem> {
    trace
        .items()
        .iter()
        .map(|item| match item {
            TraceItem::Single(r) => StreamItem {
                batch: false,
                requests: vec![materialize(r, space)],
            },
            TraceItem::Batch(rs) => StreamItem {
                batch: true,
                requests: rs.iter().map(|r| materialize(r, space)).collect(),
            },
        })
        .collect()
}

/// Whether every decision in `decisions` was served without a solver
/// pass: incremental admissions, departures (including unknown-VM
/// rejections, which are O(1) lookups) — anything but a repack, a
/// solver rejection, or a degraded mode change.
fn all_incremental(decisions: &[AdmissionDecision]) -> bool {
    decisions.iter().all(|d| {
        let line = d.log_line();
        !line.contains("admitted/repack")
            && !line.contains("rejected (workload not schedulable)")
            && !line.contains("rejected (verification failed")
            && !line.contains("degraded")
    })
}

/// Replays the pre-materialized stream through a fresh engine, timing
/// each item. Returns the engine plus per-item microseconds.
fn timed_engine_pass(
    platform: &Platform,
    items: &[StreamItem],
) -> (AdmissionEngine, Vec<f64>, Vec<bool>) {
    let mut engine = AdmissionEngine::new(*platform, AdmissionConfig::new(SEED));
    let mut per_item = Vec::with_capacity(items.len());
    let mut incremental = Vec::with_capacity(items.len());
    for item in items {
        let before = engine.decisions().len();
        let t = Instant::now();
        if item.batch {
            engine.submit_batch(item.requests.clone());
        } else {
            engine.submit(item.requests[0].clone());
        }
        per_item.push(t.elapsed().as_secs_f64() * 1e6);
        incremental.push(all_incremental(&engine.decisions()[before..]));
    }
    (engine, per_item, incremental)
}

/// The from-scratch comparator: a working set of VM specs and one full
/// `allocate_with_degradation` pass per request — arrivals and mode
/// changes solve for the candidate set, departures re-solve for the
/// survivor set. Returns per-item microseconds.
fn timed_scratch_pass(platform: &Platform, items: &[StreamItem]) -> Vec<f64> {
    let mut working: Vec<VmSpec> = Vec::new();
    let mut per_item = Vec::with_capacity(items.len());
    for item in items {
        let t = Instant::now();
        for request in &item.requests {
            match request {
                AdmissionRequest::Arrival(vm) | AdmissionRequest::ModeChange(vm) => {
                    let previous = working.clone();
                    working.retain(|w| w.id() != vm.id());
                    working.push(vm.clone());
                    let outcome =
                        allocate_with_degradation(Solution::Auto, &working, platform, SEED, &NO_SHED);
                    if outcome.allocation.is_none() {
                        working = previous;
                    }
                    std::hint::black_box(&outcome);
                }
                AdmissionRequest::Departure(id) => {
                    let had = working.iter().any(|w| w.id() == *id);
                    working.retain(|w| w.id() != *id);
                    if had && !working.is_empty() {
                        std::hint::black_box(allocate_with_degradation(
                            Solution::Auto,
                            &working,
                            platform,
                            SEED,
                            &NO_SHED,
                        ));
                    }
                }
            }
        }
        per_item.push(t.elapsed().as_secs_f64() * 1e6);
    }
    per_item
}

/// Best-of-`iters` total plus the per-item vector of the best pass.
fn best_of<T>(iters: usize, mut pass: impl FnMut() -> (Vec<f64>, T)) -> (f64, Vec<f64>, T) {
    let mut best: Option<(f64, Vec<f64>, T)> = None;
    for _ in 0..iters.max(1) {
        let (per_item, extra) = pass();
        let total: f64 = per_item.iter().sum();
        if best.as_ref().is_none_or(|(b, _, _)| total < *b) {
            best = Some((total, per_item, extra));
        }
    }
    best.expect("at least one iteration")
}

fn main() {
    let platform = Platform::platform_a();
    let requests = requested_trace_size();
    let trace = generate(&TraceSpec::new(requests, SEED));
    let space = platform.resources();
    println!(
        "admission bench on {platform}: {} requests (seed {SEED})\n",
        trace.len()
    );

    // Conformance gates the timings: warm-start vs the full-verify
    // reference oracle, plus replay determinism and final safety.
    let mut fast = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut fast, &trace);
    let mut reference =
        AdmissionEngine::new(platform, AdmissionConfig::new(SEED).reference_mode());
    replay(&mut reference, &trace);
    assert_eq!(
        fast.log_text(),
        reference.log_text(),
        "fast engine diverged from the reference oracle"
    );
    assert_eq!(
        fast.allocation(),
        reference.allocation(),
        "final allocations diverged between fast and reference engines"
    );
    let mut rerun = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut rerun, &trace);
    assert_eq!(
        fast.log_text(),
        rerun.log_text(),
        "fast engine replay is not deterministic"
    );
    if !fast.working_set().is_empty() {
        fast.allocation()
            .verify(&platform)
            .expect("admitted final state must be schedulable");
    }
    let stats = *fast.stats();
    println!(
        "conformant: {} admitted ({} incremental, {} repack), {} rejected, {} degraded, {} departed",
        stats.admitted_incremental + stats.admitted_repack,
        stats.admitted_incremental,
        stats.admitted_repack,
        stats.rejected,
        stats.degraded,
        stats.departed,
    );

    // Timed arms over the identical pre-materialized stream.
    let items = pre_materialize(&trace, space);
    let iters = if full_scale_requested() { 5 } else { 3 };
    let (engine_total, engine_items, (engine, incremental)) = best_of(iters, || {
        let (engine, per_item, incremental) = timed_engine_pass(&platform, &items);
        (per_item, (engine, incremental))
    });
    let (scratch_total, scratch_items, ()) =
        best_of(iters, || (timed_scratch_pass(&platform, &items), ()));

    // The paired incremental-path comparison: engine vs solver on the
    // requests the engine served without any solver pass.
    let mut engine_incremental_us = 0.0;
    let mut scratch_incremental_us = 0.0;
    let mut incremental_items = 0usize;
    for (i, &is_incremental) in incremental.iter().enumerate() {
        if is_incremental {
            engine_incremental_us += engine_items[i];
            scratch_incremental_us += scratch_items[i];
            incremental_items += 1;
        }
    }
    let incremental_speedup = scratch_incremental_us / engine_incremental_us.max(1e-9);
    let whole_trace_speedup = scratch_total / engine_total.max(1e-9);
    let decisions_per_sec = trace.len() as f64 / (engine_total / 1e6);

    println!(
        "\nwarm-start engine:       {:>12.0} us total ({:.1} us/request)",
        engine_total,
        engine_total / trace.len() as f64
    );
    println!(
        "from-scratch comparator: {:>12.0} us total ({:.1} us/request)",
        scratch_total,
        scratch_total / trace.len() as f64
    );
    println!(
        "incremental-path pairs:  {incremental_items} items, {:.1} us engine vs {:.1} us scratch",
        engine_incremental_us, scratch_incremental_us
    );
    println!(
        "\nheadline: {decisions_per_sec:.0} decisions/s; incremental admission {incremental_speedup:.1}x \
         over from-scratch re-allocation ({whole_trace_speedup:.2}x whole-trace incl. solver fallbacks)"
    );

    let mut metrics = vc2m::simcore::MetricsRegistry::new();
    engine.export_metrics(&mut metrics);
    let json = JsonBuilder::new()
        .str("bench", "admission_bench")
        .str("scale", if full_scale_requested() { "full" } else { "quick" })
        .int("requests", trace.len() as u64)
        .int("seed", SEED)
        .bool("conformant", true)
        .num("decisions_per_sec", decisions_per_sec)
        .num("speedup_incremental_vs_scratch", incremental_speedup)
        .num("speedup_vs_scratch", whole_trace_speedup)
        .int("incremental_items", incremental_items as u64)
        .num("engine_total_us", engine_total)
        .num("scratch_total_us", scratch_total)
        .num("engine_incremental_us", engine_incremental_us)
        .num("scratch_incremental_us", scratch_incremental_us)
        .raw("engine_metrics", metrics_json(&metrics))
        .build();
    let path = write_results("BENCH_admission.json", &json);
    println!("wrote {}", path.display());

    // Optional hard gate, after the artifact is written so a failing
    // run still leaves its numbers behind for debugging.
    if let Ok(floor) = std::env::var("VC2M_ADMIT_FLOOR") {
        let floor: f64 = floor
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_ADMIT_FLOOR must be a float, got '{floor}'"));
        assert!(
            decisions_per_sec >= floor,
            "decisions_per_sec {decisions_per_sec:.0} fell below the required floor {floor:.0}"
        );
    }
}
