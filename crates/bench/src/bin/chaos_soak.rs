//! Chaos soak: seeded fault-injection campaigns across the whole
//! alloc → sim stack.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin chaos_soak           # 96 scenarios
//! VC2M_CHAOS_SCENARIOS=200 cargo run --release -p vc2m-bench --bin chaos_soak
//! VC2M_CHAOS_THREADS=1 ...                                     # serial replay
//! ```
//!
//! Each scenario seed drives the full pipeline: generate a multi-VM
//! workload, admit it through the degradation controller, simulate a
//! fault-free baseline, then re-run under two fault campaigns —
//!
//! 1. a **containment** campaign injecting VM-scoped faults (WCET
//!    overruns, load spikes) into exactly one VM, asserting every
//!    *other* VM's miss sequence and response statistics are
//!    bit-identical to the baseline;
//! 2. a **full chaos** campaign drawing all five fault kinds against
//!    every target, asserting the run completes (no panic, sane
//!    accounting), replays deterministically, and injects exactly the
//!    planned number of faults.
//!
//! Scenarios are independent by construction (everything is derived
//! from the seed), so they run on a worker pool: workers pull seeds
//! from an atomic ticket counter and the per-seed outcomes are merged
//! in seed order afterwards, making the results table and the JSON
//! byte-identical to a serial (`VC2M_CHAOS_THREADS=1`) soak.
//!
//! The degradation controller's contract is asserted on every
//! scenario: an accepted allocation must re-verify schedulable, and
//! shed order must be non-increasing utilization (lightest VMs shed
//! last). Any violation aborts the soak with the failing seed — the
//! seed *is* the reproduction recipe. Aggregate `faults.*` counters
//! land in `results/BENCH_chaos.json` for CI to grep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vc2m::admission::{fleet_items, generate as generate_trace, TraceSpec};
use vc2m::model::{SimDuration, VmSpec};
use vc2m::prelude::*;
use vc2m_bench::timing::JsonBuilder;
use vc2m_bench::write_results;

/// Default number of scenario seeds (the acceptance floor is 20; CI
/// runs the default).
const DEFAULT_SCENARIOS: u64 = 96;

/// Default number of fleet chaos scenario seeds.
const DEFAULT_FLEET_SCENARIOS: u64 = 24;

fn scenario_count() -> u64 {
    std::env::var("VC2M_CHAOS_SCENARIOS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(DEFAULT_SCENARIOS)
}

fn fleet_scenario_count() -> u64 {
    std::env::var("VC2M_FLEET_CHAOS_SCENARIOS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(DEFAULT_FLEET_SCENARIOS)
}

fn thread_count() -> usize {
    std::env::var("VC2M_CHAOS_THREADS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn misses_of(report: &SimReport, task: TaskId) -> Vec<(u64, u64)> {
    report
        .deadline_misses
        .iter()
        .filter(|m| m.task == task)
        .map(|m| (m.job, m.deadline.as_ns()))
        .collect()
}

#[derive(Default)]
struct Totals {
    injected: u64,
    overruns: u64,
    overrun_jobs: u64,
    replenish_delays: u64,
    throttle_faults: u64,
    core_stalls: u64,
    load_spikes: u64,
    load_spike_jobs: u64,
}

impl Totals {
    fn absorb(&mut self, metrics: &vc2m::simcore::MetricsRegistry) {
        let get = |name: &str| metrics.counter(name).unwrap_or(0);
        self.injected += get("faults.injected");
        self.overruns += get("faults.overruns");
        self.overrun_jobs += get("faults.overrun_jobs");
        self.replenish_delays += get("faults.replenish_delays");
        self.throttle_faults += get("faults.throttle_faults");
        self.core_stalls += get("faults.core_stalls");
        self.load_spikes += get("faults.load_spikes");
        self.load_spike_jobs += get("faults.load_spike_jobs");
    }

    fn fold(&mut self, other: &Totals) {
        self.injected += other.injected;
        self.overruns += other.overruns;
        self.overrun_jobs += other.overrun_jobs;
        self.replenish_delays += other.replenish_delays;
        self.throttle_faults += other.throttle_faults;
        self.core_stalls += other.core_stalls;
        self.load_spikes += other.load_spikes;
        self.load_spike_jobs += other.load_spike_jobs;
    }
}

/// Everything a scenario contributes to the soak's aggregates.
#[derive(Default)]
struct SeedOutcome {
    totals: Totals,
    containment_run: bool,
    containment_tasks_checked: u64,
    degraded: bool,
    rejected: bool,
    chaos_misses: u64,
}

/// One full scenario: generate → admit → baseline → containment
/// campaign → chaos campaign. Panics (with the seed) on any contract
/// violation; the seed is the reproduction recipe.
fn run_scenario(
    seed: u64,
    platform: &Platform,
    policy: &DegradationPolicy,
    horizon: SimDuration,
) -> SeedOutcome {
    let mut outcome_acc = SeedOutcome::default();
    // Spread target utilization across feasible-to-tight: some
    // scenarios admit everything, some force shedding.
    let target_u = 1.0 + 0.5 * (seed % 5) as f64;
    let config = TasksetConfig::new(target_u, UtilizationDist::Uniform).with_vm_count(3);
    let mut generator = TasksetGenerator::new(platform.resources(), config, seed);
    let vms = generator.generate_vms();

    let outcome =
        allocate_with_degradation(Solution::HeuristicFlattening, &vms, platform, seed, policy);
    // Shed order contract: non-increasing utilization, so the
    // lightest VMs are shed last.
    for pair in outcome.report.shed.windows(2) {
        assert!(
            pair[0].utilization >= pair[1].utilization,
            "seed {seed}: shed order violates non-increasing utilization"
        );
    }
    let Some(allocation) = outcome.allocation else {
        outcome_acc.rejected = true;
        return outcome_acc;
    };
    // Degradation contract: an accepted allocation re-verifies.
    allocation
        .verify(platform)
        .unwrap_or_else(|e| panic!("seed {seed}: accepted allocation fails verify: {e}"));
    outcome_acc.degraded = outcome.report.is_degraded();

    let admitted: Vec<VmSpec> = vms
        .iter()
        .filter(|vm| outcome.report.admitted.contains(&vm.id()))
        .cloned()
        .collect();
    let tasks: TaskSet = admitted
        .iter()
        .flat_map(|vm| vm.tasks().iter().cloned())
        .collect();
    let build = || {
        HypervisorSim::new(
            platform,
            &allocation,
            &tasks,
            SimConfig::default().with_horizon(horizon),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: accepted allocation must simulate: {e}"))
    };
    let baseline = build().run().expect("fault-free baseline");

    // Campaign 1: containment. VM-scoped faults into one VM;
    // every other VM must be bit-identical to the baseline.
    if admitted.len() >= 2 {
        let faulty = &admitted[seed as usize % admitted.len()];
        let targets = FaultTargets {
            tasks: faulty.tasks().iter().map(Task::id).collect(),
            vcpus: vec![],
            vms: vec![faulty.id()],
            cores: 0,
        };
        let plan = FaultPlan::generate(
            seed ^ 0x9e37_79b9_7f4a_7c15,
            &targets,
            &FaultPlanSpec::vm_targeted(6, horizon),
        );
        let faulted = build()
            .with_fault_plan(plan)
            .expect("containment plan is valid")
            .run()
            .expect("vm-scoped faults are contained, not fatal");
        for vm in &admitted {
            if vm.id() == faulty.id() {
                continue;
            }
            for task in vm.tasks() {
                let t = task.id();
                assert_eq!(
                    misses_of(&baseline, t),
                    misses_of(&faulted, t),
                    "seed {seed}: isolation violated — {t} in {} perturbed by faults in {}",
                    vm.id(),
                    faulty.id()
                );
                assert_eq!(
                    baseline.response_times.get(&t),
                    faulted.response_times.get(&t),
                    "seed {seed}: response times of {t} perturbed across VMs",
                );
                outcome_acc.containment_tasks_checked += 1;
            }
        }
        outcome_acc.containment_run = true;
    }

    // Campaign 2: full chaos — all kinds, all targets.
    let targets = FaultTargets {
        tasks: tasks.iter().map(Task::id).collect(),
        vcpus: allocation.vcpus().iter().map(|v| v.id()).collect(),
        vms: admitted.iter().map(VmSpec::id).collect(),
        cores: allocation.cores_used(),
    };
    let plan = FaultPlan::generate(
        seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1),
        &targets,
        &FaultPlanSpec::new(8, horizon),
    );
    let planned = plan.len() as u64;
    let (report, observation) = build()
        .with_fault_plan(plan.clone())
        .expect("chaos plan is valid")
        .run_observed()
        .expect("chaos runs are contained, not fatal");
    assert_eq!(
        observation.metrics.counter("faults.injected"),
        Some(planned),
        "seed {seed}: every planned fault lies within the horizon and must inject"
    );
    assert!(
        report.jobs_completed <= report.jobs_released,
        "seed {seed}: accounting"
    );
    // Replay determinism: the same plan over the same system is
    // bit-identical.
    let replay = build()
        .with_fault_plan(plan)
        .expect("chaos plan is valid")
        .run()
        .expect("replay");
    assert_eq!(report.deadline_misses, replay.deadline_misses, "seed {seed}");
    assert_eq!(report.jobs_released, replay.jobs_released, "seed {seed}");
    assert_eq!(report.context_switches, replay.context_switches, "seed {seed}");
    outcome_acc.chaos_misses = report.deadline_misses.len() as u64;
    outcome_acc.totals.absorb(&observation.metrics);
    outcome_acc
}

/// Aggregates of the fleet chaos campaign.
#[derive(Default)]
struct FleetTotals {
    faults_injected: u64,
    host_crashes: u64,
    host_drains: u64,
    verify_faults: u64,
    evacuated_vms: u64,
    evac_hi: u64,
    evac_lo: u64,
    evac_placed: u64,
    evac_exhausted: u64,
    sheds: u64,
    hi_sheds: u64,
    hi_shed_violations: u64,
}

/// One fleet chaos scenario: a 4-host trace with HI/LO criticalities
/// and a generated fault plan, replayed serially and at 2 and 8
/// threads. Panics on any thread-count divergence — the log, the fleet
/// counters, and the exhaustion records are all pinned to the serial
/// run. A paired degradation run asserts the criticality contract: no
/// HI VM is ever shed while a LO VM remains.
fn run_fleet_scenario(seed: u64, platform: &Platform, policy: &DegradationPolicy) -> FleetTotals {
    let mut totals = FleetTotals::default();
    let hosts = 4;
    let spec = if seed.is_multiple_of(2) {
        TraceSpec::new(90, seed).with_hosts(hosts)
    } else {
        TraceSpec::rejection_heavy(90, seed, hosts)
    }
    .with_hi_fraction(0.3);
    let trace = generate_trace(&spec);
    let items = fleet_items(&trace, platform.resources());
    let plan = FleetFaultPlan::generate(
        seed ^ 0xf1ee7,
        hosts,
        &FleetFaultSpec::new(4, items.len() as u64),
    );
    let scenario = FleetScenario::new(plan, trace.hi_vms().to_vec());
    let config = FleetConfig::new(hosts, seed);
    let mut serial = AdmissionFleet::new(*platform, config);
    serial
        .arm(scenario.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: scenario rejected: {e}"));
    serial.replay(&items);
    for threads in [2, 8] {
        let parallel = AdmissionFleet::replay_parallel_armed(
            *platform,
            config,
            scenario.clone(),
            &items,
            threads,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: scenario rejected: {e}"));
        assert_eq!(
            parallel.log_text(),
            serial.log_text(),
            "seed {seed}: armed fleet log diverged at {threads} threads"
        );
        assert_eq!(
            parallel.router().stats(),
            serial.router().stats(),
            "seed {seed}: fleet counters diverged at {threads} threads"
        );
        assert_eq!(
            parallel.evacuation_failures(),
            serial.evacuation_failures(),
            "seed {seed}: exhaustion records diverged at {threads} threads"
        );
    }
    let stats = serial.router().stats();
    totals.faults_injected += stats.faults_injected;
    totals.host_crashes += stats.host_crashes;
    totals.host_drains += stats.host_drains;
    totals.verify_faults += stats.verify_faults;
    totals.evacuated_vms += stats.evacuated_vms;
    totals.evac_hi += stats.evac_hi;
    totals.evac_lo += stats.evac_lo;
    totals.evac_placed += stats.evac_placed;
    totals.evac_exhausted += stats.evac_exhausted;

    // Criticality contract under overload: shed order is
    // criticality-major, so HI work survives while any LO remains.
    let target_u = 2.0 + (seed % 4) as f64;
    let config = TasksetConfig::new(target_u, UtilizationDist::Uniform).with_vm_count(4);
    let mut generator = TasksetGenerator::new(platform.resources(), config, seed);
    let vms = generator.generate_vms();
    let crits: Vec<Criticality> = (0..vms.len())
        .map(|i| {
            if (seed + i as u64).is_multiple_of(2) {
                Criticality::Hi
            } else {
                Criticality::Lo
            }
        })
        .collect();
    let outcome = allocate_with_degradation_prioritized(
        Solution::HeuristicFlattening,
        &vms,
        &crits,
        platform,
        seed,
        policy,
    );
    let mut lo_remaining = crits.iter().filter(|&&c| c == Criticality::Lo).count();
    for shed in &outcome.report.shed {
        totals.sheds += 1;
        match shed.criticality {
            Criticality::Hi => {
                totals.hi_sheds += 1;
                if lo_remaining > 0 {
                    totals.hi_shed_violations += 1;
                }
            }
            Criticality::Lo => lo_remaining -= 1,
        }
    }
    assert_eq!(
        totals.hi_shed_violations, 0,
        "seed {seed}: a HI VM was shed while LO work remained"
    );
    totals
}

fn main() {
    let scenarios = scenario_count();
    let threads = thread_count().min(scenarios.max(1) as usize);
    let platform = Platform::platform_a();
    let policy = DegradationPolicy::default();
    let horizon = SimDuration::from_ms(3000.0);
    println!(
        "chaos soak: {scenarios} scenarios on {platform}, horizon 3000 ms, {threads} threads"
    );

    // Workers pull seeds from a ticket counter; outcomes are keyed by
    // seed and folded in seed order below, so the aggregates (and thus
    // the printed table and the JSON) are byte-identical to a serial
    // soak no matter how the seeds were interleaved.
    let ticket = AtomicU64::new(0);
    let collected: Mutex<Vec<(u64, SeedOutcome)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let seed = ticket.fetch_add(1, Ordering::Relaxed);
                if seed >= scenarios {
                    return;
                }
                let outcome = run_scenario(seed, &platform, &policy, horizon);
                collected
                    .lock()
                    .expect("a panicking scenario aborts the soak")
                    .push((seed, outcome));
            });
        }
    });
    let mut outcomes = collected.into_inner().expect("workers finished");
    outcomes.sort_by_key(|(seed, _)| *seed);

    let mut totals = Totals::default();
    let mut containment_runs = 0u64;
    let mut containment_tasks_checked = 0u64;
    let mut degraded_scenarios = 0u64;
    let mut rejected_scenarios = 0u64;
    let mut chaos_misses = 0u64;
    for (_, outcome) in &outcomes {
        totals.fold(&outcome.totals);
        containment_runs += u64::from(outcome.containment_run);
        containment_tasks_checked += outcome.containment_tasks_checked;
        degraded_scenarios += u64::from(outcome.degraded);
        rejected_scenarios += u64::from(outcome.rejected);
        chaos_misses += outcome.chaos_misses;
    }

    // Dedicated overload scenario: demand far beyond the platform so
    // the controller must shed, and must shed heaviest-first.
    let config = TasksetConfig::new(6.0, UtilizationDist::BimodalHeavy).with_vm_count(4);
    let mut generator = TasksetGenerator::new(platform.resources(), config, 0xc4a05);
    let vms = generator.generate_vms();
    let outcome =
        allocate_with_degradation(Solution::HeuristicFlattening, &vms, &platform, 0xc4a05, &policy);
    assert!(
        outcome.report.is_degraded(),
        "a 6.0-utilization workload cannot be fully admitted"
    );
    if let Some(allocation) = &outcome.allocation {
        allocation
            .verify(&platform)
            .expect("overload: accepted allocation fails verify");
    }

    println!(
        "  {scenarios} scenarios | {containment_runs} containment runs \
         ({containment_tasks_checked} victim tasks, 0 violations) | \
         {degraded_scenarios} degraded, {rejected_scenarios} rejected | \
         {} faults injected, {} chaos-run misses",
        totals.injected, chaos_misses
    );

    let json = JsonBuilder::new()
        .str("bench", "chaos_soak")
        .int("scenarios", scenarios)
        .int("containment_runs", containment_runs)
        .int("containment_tasks_checked", containment_tasks_checked)
        .int("containment_violations", 0)
        .int("degraded_scenarios", degraded_scenarios)
        .int("rejected_scenarios", rejected_scenarios)
        .int("chaos_run_misses", chaos_misses)
        .int("faults.injected", totals.injected)
        .int("faults.overruns", totals.overruns)
        .int("faults.overrun_jobs", totals.overrun_jobs)
        .int("faults.replenish_delays", totals.replenish_delays)
        .int("faults.throttle_faults", totals.throttle_faults)
        .int("faults.core_stalls", totals.core_stalls)
        .int("faults.load_spikes", totals.load_spikes)
        .int("faults.load_spike_jobs", totals.load_spike_jobs)
        .build();
    let path = write_results("BENCH_chaos.json", &json);
    println!("  wrote {}", path.display());

    // Fleet chaos campaign: host crashes, drains and verify faults
    // over sharded admission fleets, with the parallel replay pinned
    // byte-for-byte to the serial one on every seed.
    let fleet_scenarios = fleet_scenario_count();
    println!(
        "fleet chaos: {fleet_scenarios} scenarios, 4 hosts, faults armed, \
         threads 1/2/8 conformance"
    );
    let mut fleet_totals = FleetTotals::default();
    for seed in 0..fleet_scenarios {
        let t = run_fleet_scenario(seed, &platform, &policy);
        fleet_totals.faults_injected += t.faults_injected;
        fleet_totals.host_crashes += t.host_crashes;
        fleet_totals.host_drains += t.host_drains;
        fleet_totals.verify_faults += t.verify_faults;
        fleet_totals.evacuated_vms += t.evacuated_vms;
        fleet_totals.evac_hi += t.evac_hi;
        fleet_totals.evac_lo += t.evac_lo;
        fleet_totals.evac_placed += t.evac_placed;
        fleet_totals.evac_exhausted += t.evac_exhausted;
        fleet_totals.sheds += t.sheds;
        fleet_totals.hi_sheds += t.hi_sheds;
        fleet_totals.hi_shed_violations += t.hi_shed_violations;
    }
    println!(
        "  {fleet_scenarios} scenarios | {} faults ({} crashes, {} drains, {} verify) | \
         {} evacuated ({} hi, {} lo): {} placed, {} exhausted | \
         {} sheds ({} hi, {} violations)",
        fleet_totals.faults_injected,
        fleet_totals.host_crashes,
        fleet_totals.host_drains,
        fleet_totals.verify_faults,
        fleet_totals.evacuated_vms,
        fleet_totals.evac_hi,
        fleet_totals.evac_lo,
        fleet_totals.evac_placed,
        fleet_totals.evac_exhausted,
        fleet_totals.sheds,
        fleet_totals.hi_sheds,
        fleet_totals.hi_shed_violations,
    );
    let fleet_json = JsonBuilder::new()
        .str("bench", "fleet_chaos")
        .int("scenarios", fleet_scenarios)
        .bool("conformant", true)
        .int("fleet.faults.injected", fleet_totals.faults_injected)
        .int("fleet.faults.crashes", fleet_totals.host_crashes)
        .int("fleet.faults.drains", fleet_totals.host_drains)
        .int("fleet.faults.verify", fleet_totals.verify_faults)
        .int("fleet.evacuations.vms", fleet_totals.evacuated_vms)
        .int("fleet.evacuations.hi", fleet_totals.evac_hi)
        .int("fleet.evacuations.lo", fleet_totals.evac_lo)
        .int("fleet.evacuations.placed", fleet_totals.evac_placed)
        .int("fleet.evacuations.exhausted", fleet_totals.evac_exhausted)
        .int("degradation.sheds", fleet_totals.sheds)
        .int("degradation.hi_sheds", fleet_totals.hi_sheds)
        .int("hi_shed_violations", fleet_totals.hi_shed_violations)
        .build();
    let fleet_path = write_results("BENCH_fleet_chaos.json", &fleet_json);
    println!("  wrote {}", fleet_path.display());
}
