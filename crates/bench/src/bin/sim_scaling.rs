//! Sharded-simulation scaling bench: conformance first, then timing.
//!
//! ```text
//! cargo run --release -p vc2m-bench --bin sim_scaling
//! VC2M_SIM_SPEEDUP_FLOOR=1.5 cargo run --release -p vc2m-bench --bin sim_scaling
//! ```
//!
//! Phase 1 **proves conformance before timing anything**: the sharded
//! engine's report, trace stream and metrics export are compared
//! bit-for-bit against the serial engine on the Table-2-style
//! scheduler-stress system (any divergence aborts with exit 1, and
//! the `conformant` line CI greps for never prints). Only then does
//! phase 2 time serial vs sharded runs across thread counts.
//!
//! The speedup gate: `VC2M_SIM_SPEEDUP_FLOOR=<f64>` fails the bench
//! (exit 1) if the best sharded speedup falls below the floor — but
//! only on hosts with ≥ 2 CPUs. On a single-CPU host no parallel
//! speedup is physically available, so the floor is reported as
//! informational and `results/BENCH_sim.json` records the honest
//! (~1x or below) numbers together with the host's CPU count.

use vc2m::model::{Platform, SimDuration};
use vc2m::prelude::*;
use vc2m_bench::timing::{self, json_array, JsonBuilder, Measurement};
use vc2m_bench::{scheduler_stress_system, write_results};

const VCPUS: usize = 24;
const HORIZON_MS: f64 = 2000.0;
const TRACE_CAPACITY: usize = 4096;
const DEFAULT_ITERS: u64 = 5;

fn config(trace_capacity: usize) -> SimConfig {
    SimConfig::default()
        .with_horizon(SimDuration::from_ms(HORIZON_MS))
        .with_traffic_fraction(0.6)
        .with_trace_capacity(trace_capacity)
}

fn build(
    platform: &Platform,
    allocation: &SystemAllocation,
    tasks: &TaskSet,
    trace_capacity: usize,
) -> HypervisorSim {
    HypervisorSim::new(platform, allocation, tasks, config(trace_capacity))
        .expect("stress system is simulable")
}

fn main() {
    let platform = Platform::platform_a();
    let (allocation, tasks) = scheduler_stress_system(&platform, VCPUS);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sim scaling: {VCPUS} vcpus on {platform}, horizon {HORIZON_MS} ms, host has {host_cpus} cpus"
    );

    // Phase 1: conformance. Nothing is timed until the sharded engine
    // is proven bit-identical on this exact scenario.
    let (serial_report, serial_obs) = build(&platform, &allocation, &tasks, TRACE_CAPACITY)
        .run_observed()
        .expect("serial run");
    for threads in [2, host_cpus.max(2)] {
        let (report, obs) = build(&platform, &allocation, &tasks, TRACE_CAPACITY)
            .run_observed_sharded(threads)
            .expect("sharded run");
        let ok = serial_report.structural_eq(&report)
            && obs.trace == serial_obs.trace
            && obs.trace_dropped == serial_obs.trace_dropped
            && obs.metrics == serial_obs.metrics;
        if !ok {
            eprintln!("NOT conformant at {threads} threads: sharded output diverges from serial");
            std::process::exit(1);
        }
    }
    println!(
        "  conformant: sharded == serial bit-for-bit ({} trace records, {} dropped)",
        serial_obs.trace.len(),
        serial_obs.trace_dropped
    );

    // Phase 2: timing (tracing off — measure the engines, not the ring).
    let serial = timing::run_consuming(
        "sim serial",
        DEFAULT_ITERS,
        || build(&platform, &allocation, &tasks, 0),
        |sim| sim.run().expect("serial run"),
    );
    let mut thread_counts = vec![1usize, 2, 4];
    if !thread_counts.contains(&host_cpus) {
        thread_counts.push(host_cpus);
    }
    let sharded: Vec<(usize, Measurement)> = thread_counts
        .iter()
        .map(|&threads| {
            let m = timing::run_consuming(
                &format!("sim sharded x{threads}"),
                DEFAULT_ITERS,
                || build(&platform, &allocation, &tasks, 0),
                move |sim| sim.run_sharded(threads).expect("sharded run"),
            );
            (threads, m)
        })
        .collect();

    let (best_threads, best) = sharded
        .iter()
        .min_by(|(_, a), (_, b)| a.min_us().total_cmp(&b.min_us()))
        .expect("at least one thread count");
    let speedup = serial.min_us() / best.min_us();
    println!("  best speedup {speedup:.2}x at {best_threads} threads (serial min / sharded min)");

    let floor: Option<f64> = std::env::var("VC2M_SIM_SPEEDUP_FLOOR")
        .ok()
        .and_then(|raw| raw.parse().ok());
    let enforced = floor.is_some() && host_cpus >= 2;
    if let Some(f) = floor {
        if enforced {
            println!("  speedup floor {f:.2}x (enforced)");
        } else {
            println!("  speedup floor {f:.2}x not enforced: single-cpu host, no parallelism available");
        }
    }

    let json = JsonBuilder::new()
        .str("bench", "sim_scaling")
        .bool("conformant", true)
        .int("host_cpus", host_cpus as u64)
        .int("vcpus", VCPUS as u64)
        .num("horizon_ms", HORIZON_MS)
        .int("trace_records", serial_obs.trace.len() as u64)
        .int("trace_dropped", serial_obs.trace_dropped)
        .raw("serial", serial.json())
        .raw(
            "sharded",
            json_array(sharded.iter().map(|(_, m)| m.json())),
        )
        .num("best_speedup", speedup)
        .int("best_threads", *best_threads as u64)
        .num("speedup_floor", floor.unwrap_or(f64::NAN))
        .bool("floor_enforced", enforced)
        .build();
    let path = write_results("BENCH_sim.json", &json);
    println!("  wrote {}", path.display());

    if enforced {
        // Audited expect: `enforced` implies the floor parsed.
        #[allow(clippy::expect_used)]
        let f = floor.expect("floor set when enforced");
        if speedup < f {
            eprintln!("sim scaling FAILED: best speedup {speedup:.2}x is below the floor {f:.2}x");
            std::process::exit(1);
        }
    }
}
