//! Shared helpers for the vC²M benchmark harness.
//!
//! The harness regenerates every table and figure of the paper's
//! evaluation:
//!
//! | paper artifact | bench target | driver binary |
//! |----------------|-----------------|---------------|
//! | Table 1 (regulator overhead) | `table1_regulator` | `table1` |
//! | Table 2 (scheduler overhead, 24/96 VCPUs) | `table2_scheduler` | `table2` |
//! | §3.3 isolation study | — | `isolation_study` |
//! | Figure 2(a–c) (schedulability per platform) | — | `fig2 -- a\|b\|c [--full]` |
//! | Figure 3(a–c) (bimodal distributions) | — | `fig3 -- light\|medium\|heavy [--full]` |
//! | Figure 4 (analysis running time) | `fig4_runtime` | `fig4 [--full]` |
//! | design-choice ablations | `ablation` | — |
//!
//! Binaries print the paper-style table and drop a CSV under
//! `results/`. `--full` switches from the quick preset to the paper's
//! full experimental scale (50 tasksets per point, step 0.05).

pub mod timing;

use std::fs;
use std::path::PathBuf;
use vc2m::alloc::{CoreAssignment, SystemAllocation};
use vc2m::model::{
    Alloc, BudgetSurface, Platform, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId, WcetSurface,
};

/// Builds a synthetic system with `vcpu_count` single-task VCPUs
/// spread over the platform's cores — the configuration of the paper's
/// Table 2 (24 and 96 VCPUs).
///
/// Each VCPU has period 10 ms and a light budget so all cores stay
/// schedulable, keeping the scheduler permanently busy with
/// replenishments, decisions and context switches.
///
/// # Panics
///
/// Panics if `vcpu_count` is zero.
pub fn scheduler_stress_system(
    platform: &Platform,
    vcpu_count: usize,
) -> (SystemAllocation, TaskSet) {
    assert!(vcpu_count > 0, "need at least one vcpu");
    let space = platform.resources();
    let cores = platform.cores();
    // Keep each core's total utilization at ~0.9 regardless of count.
    let per_vcpu_budget = (9.0 * cores as f64 / vcpu_count as f64).min(9.0);

    let mut tasks = TaskSet::new();
    let mut vcpus = Vec::with_capacity(vcpu_count);
    for i in 0..vcpu_count {
        tasks.push(
            Task::new(
                TaskId(i),
                10.0,
                WcetSurface::flat(&space, per_vcpu_budget).expect("valid surface"),
            )
            .expect("valid task"),
        );
        vcpus.push(
            VcpuSpec::new(
                VcpuId(i),
                VmId(0),
                10.0,
                BudgetSurface::flat(&space, per_vcpu_budget).expect("valid surface"),
                vec![TaskId(i)],
            )
            .expect("valid vcpu"),
        );
    }
    let per_core_cache = space.cache_max() / cores as u32;
    let per_core_bw = space.bw_max() / cores as u32;
    let assignments = (0..cores)
        .map(|k| CoreAssignment {
            vcpus: (0..vcpu_count).filter(|i| i % cores == k).collect(),
            alloc: Alloc::new(per_core_cache, per_core_bw),
        })
        .collect();
    (SystemAllocation::new(vcpus, assignments), tasks)
}

/// Whether `--full` was passed (paper-scale experiments).
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The first non-flag CLI argument, lowercased.
pub fn first_arg() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
}

/// Writes `contents` to `results/<name>` (created on demand) and
/// returns the path.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment results must not
/// be silently lost.
pub fn write_results(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write results file");
    path
}

/// Formats a `MinAvgMax` as the paper's `min | avg | max` row cells.
pub fn stat_cells(stats: Option<&vc2m::simcore::MinAvgMax>) -> (f64, f64, f64) {
    match stats {
        Some(s) => (
            s.min().unwrap_or(f64::NAN),
            s.avg().unwrap_or(f64::NAN),
            s.max().unwrap_or(f64::NAN),
        ),
        None => (f64::NAN, f64::NAN, f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_system_is_valid_and_schedulable() {
        let platform = Platform::platform_a();
        for count in [24, 96] {
            let (allocation, tasks) = scheduler_stress_system(&platform, count);
            allocation.verify(&platform).expect("valid allocation");
            assert_eq!(allocation.vcpus().len(), count);
            assert_eq!(tasks.len(), count);
            for k in 0..allocation.cores_used() {
                let u = allocation.core_utilization(k);
                assert!(u <= 1.0 + 1e-9, "core {k} overloaded: {u}");
                assert!(u > 0.5, "core {k} underloaded: {u}");
            }
        }
    }

    #[test]
    fn stat_cells_handles_missing() {
        let (min, avg, max) = stat_cells(None);
        assert!(min.is_nan() && avg.is_nan() && max.is_nan());
        let stats: vc2m::simcore::MinAvgMax = [1.0, 3.0].into_iter().collect();
        assert_eq!(stat_cells(Some(&stats)), (1.0, 2.0, 3.0));
    }
}
