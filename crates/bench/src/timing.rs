//! Minimal wall-clock measurement harness for the `[[bench]]` targets.
//!
//! The bench targets are plain `fn main()` programs (`harness = false`)
//! that time their hot paths with [`std::time::Instant`] and print
//! paper-style `min | avg | max` rows. Compared to a statistical
//! harness this trades confidence intervals for zero dependencies and
//! deterministic iteration counts; the reproduction targets are
//! order-of-magnitude *shapes* (see each bench's module docs), which
//! min/avg/max over a few hundred iterations resolves comfortably.
//!
//! `VC2M_BENCH_ITERS=<n>` overrides every measurement's iteration
//! count (e.g. a quick smoke value of 1 in CI).

use std::time::Instant;

/// Timing summary of one measured routine.
#[derive(Debug, Clone)]
pub struct Measurement {
    name: String,
    iters: u64,
    min_ns: f64,
    total_ns: f64,
    max_ns: f64,
}

impl Measurement {
    /// The routine's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterations actually measured (after the override).
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// Fastest iteration, in microseconds.
    pub fn min_us(&self) -> f64 {
        self.min_ns / 1e3
    }

    /// Mean iteration, in microseconds.
    pub fn avg_us(&self) -> f64 {
        self.total_ns / self.iters as f64 / 1e3
    }

    /// Slowest iteration, in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns / 1e3
    }

    /// Formats the paper-style row: `name  min | avg | max  us`.
    pub fn row(&self) -> String {
        format!(
            "{:<40} min {:>10.3} | avg {:>10.3} | max {:>10.3}  us  ({} iters)",
            self.name,
            self.min_us(),
            self.avg_us(),
            self.max_us(),
            self.iters
        )
    }
}

fn iteration_count(default_iters: u64) -> u64 {
    match std::env::var("VC2M_BENCH_ITERS") {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_BENCH_ITERS must be a u64, got {raw:?}")),
        Err(_) => default_iters,
    }
    .max(1)
}

/// Times `routine` for `default_iters` iterations (plus an untimed
/// warmup of one tenth) and prints the resulting row.
///
/// The routine's return value is passed through [`std::hint::black_box`]
/// so the work is not optimized away.
pub fn run<T>(name: &str, default_iters: u64, mut routine: impl FnMut() -> T) -> Measurement {
    run_batched(name, default_iters, || (), |()| routine())
}

/// Like [`run`], but re-creates mutable input state with `setup`
/// before every iteration; only `routine` is timed.
///
/// This is the shape the regulator and scheduler benches need, where
/// the routine mutates its input (a drained ready queue, a throttled
/// regulator) and must start each iteration from a fresh state.
pub fn run_batched<S, T>(
    name: &str,
    default_iters: u64,
    setup: impl FnMut() -> S,
    mut routine: impl FnMut(&mut S) -> T,
) -> Measurement {
    run_consuming(name, default_iters, setup, |mut state| routine(&mut state))
}

/// Like [`run_batched`], but the routine takes the per-iteration state
/// by value — for routines that consume their input (e.g. a simulator
/// whose `run` takes `self`). Dropping the state happens outside the
/// timed region.
pub fn run_consuming<S, T>(
    name: &str,
    default_iters: u64,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Measurement {
    let iters = iteration_count(default_iters);
    let warmup = (iters / 10).clamp(1, 100);
    for _ in 0..warmup {
        let state = setup();
        std::hint::black_box(routine(state));
    }

    let mut min_ns = f64::INFINITY;
    let mut max_ns = 0.0f64;
    let mut total_ns = 0.0f64;
    for _ in 0..iters {
        let state = setup();
        let start = Instant::now();
        let out = routine(state);
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        total_ns += elapsed;
    }

    let measurement = Measurement {
        name: name.to_string(),
        iters,
        min_ns,
        total_ns,
        max_ns,
    };
    println!("{}", measurement.row());
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics_are_consistent() {
        let m = run("noop", 32, || 1 + 1);
        assert_eq!(m.iters(), 32);
        assert!(m.min_us() <= m.avg_us() && m.avg_us() <= m.max_us());
        assert!(m.row().contains("noop"));
    }

    #[test]
    fn batched_setup_runs_per_iteration() {
        use std::cell::Cell;
        let setups = Cell::new(0u64);
        let m = run_batched(
            "counting",
            8,
            || setups.set(setups.get() + 1),
            |()| (),
        );
        // Warmup iterations also call setup, so at least `iters` total.
        assert!(setups.get() >= m.iters());
    }
}
