//! Minimal wall-clock measurement harness for the `[[bench]]` targets.
//!
//! The bench targets are plain `fn main()` programs (`harness = false`)
//! that time their hot paths with [`std::time::Instant`] and print
//! paper-style `min | avg | max` rows. Compared to a statistical
//! harness this trades confidence intervals for zero dependencies and
//! deterministic iteration counts; the reproduction targets are
//! order-of-magnitude *shapes* (see each bench's module docs), which
//! min/avg/max over a few hundred iterations resolves comfortably.
//!
//! `VC2M_BENCH_ITERS=<n>` overrides every measurement's iteration
//! count (e.g. a quick smoke value of 1 in CI).
//!
//! Besides the human-readable rows, benches that feed automated
//! tracking (e.g. `sweep_scaling` → `results/BENCH_sweep.json`) render
//! machine-readable JSON through [`JsonBuilder`] / [`json_array`] — a
//! hand-rolled writer covering exactly the subset the benches emit,
//! since the workspace's dependency policy admits no serialization
//! crates.

use std::time::Instant;

/// Timing summary of one measured routine.
#[derive(Debug, Clone)]
pub struct Measurement {
    name: String,
    iters: u64,
    min_ns: f64,
    total_ns: f64,
    max_ns: f64,
}

impl Measurement {
    /// The routine's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterations actually measured (after the override).
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// Fastest iteration, in microseconds.
    pub fn min_us(&self) -> f64 {
        self.min_ns / 1e3
    }

    /// Mean iteration, in microseconds.
    pub fn avg_us(&self) -> f64 {
        self.total_ns / self.iters as f64 / 1e3
    }

    /// Slowest iteration, in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns / 1e3
    }

    /// Formats the paper-style row: `name  min | avg | max  us`.
    pub fn row(&self) -> String {
        format!(
            "{:<40} min {:>10.3} | avg {:>10.3} | max {:>10.3}  us  ({} iters)",
            self.name,
            self.min_us(),
            self.avg_us(),
            self.max_us(),
            self.iters
        )
    }

    /// Renders the measurement as a JSON object (microsecond stats).
    pub fn json(&self) -> String {
        JsonBuilder::new()
            .str("name", &self.name)
            .int("iters", self.iters)
            .num("min_us", self.min_us())
            .num("avg_us", self.avg_us())
            .num("max_us", self.max_us())
            .build()
    }
}

/// Builds one JSON object, member by member, in insertion order.
///
/// Rendering is pretty-printed with two-space indentation; nested
/// objects and arrays passed through [`JsonBuilder::raw`] are
/// re-indented line by line, so composing builders yields uniformly
/// indented documents. Numbers use Rust's shortest-roundtrip `{}`
/// formatting; non-finite floats become `null` (JSON has no NaN).
#[derive(Debug, Clone, Default)]
pub struct JsonBuilder {
    members: Vec<(String, String)>,
}

impl JsonBuilder {
    /// An empty object (`{}` until members are added).
    pub fn new() -> Self {
        JsonBuilder::default()
    }

    /// Adds a string member (escaped).
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = format!("\"{}\"", escape_json(value));
        self.raw(key, rendered)
    }

    /// Adds a floating-point member; non-finite values become `null`.
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.raw(key, rendered)
    }

    /// Adds an unsigned-integer member.
    pub fn int(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a boolean member.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds an already-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, rendered: String) -> Self {
        self.members.push((key.to_string(), rendered));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        if self.members.is_empty() {
            return "{}".to_string();
        }
        let mut out = String::from("{\n");
        let last = self.members.len() - 1;
        for (i, (key, value)) in self.members.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(&escape_json(key));
            out.push_str("\": ");
            out.push_str(&value.replace('\n', "\n  "));
            if i < last {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

/// Renders already-rendered JSON values as a pretty-printed array.
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    if items.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    let last = items.len() - 1;
    for (i, item) in items.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&item.replace('\n', "\n  "));
        if i < last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders a [`MetricsRegistry`] as one schema-stable JSON object:
///
/// ```json
/// {
///   "counters": { "name": 1, ... },
///   "gauges": { "name": 0.5, ... },
///   "histograms": { "name": { "count": 2, "min": ..., "avg": ..., "max": ... }, ... }
/// }
/// ```
///
/// All three sections are always present (empty objects when unused)
/// and iterate in name order, so the rendered text is byte-identical
/// run to run for equal registries — the property the CLI golden tests
/// pin for `--metrics-out`.
pub fn metrics_json(metrics: &vc2m::simcore::MetricsRegistry) -> String {
    let counters = metrics
        .counters()
        .fold(JsonBuilder::new(), |b, (name, value)| b.int(name, value))
        .build();
    let gauges = metrics
        .gauges()
        .fold(JsonBuilder::new(), |b, (name, value)| b.num(name, value))
        .build();
    let histograms = metrics
        .histograms()
        .fold(JsonBuilder::new(), |b, (name, summary)| {
            let rendered = JsonBuilder::new()
                .int("count", summary.count())
                .num("min", summary.min().unwrap_or(f64::NAN))
                .num("avg", summary.avg().unwrap_or(f64::NAN))
                .num("max", summary.max().unwrap_or(f64::NAN))
                .build();
            b.raw(name, rendered)
        })
        .build();
    JsonBuilder::new()
        .raw("counters", counters)
        .raw("gauges", gauges)
        .raw("histograms", histograms)
        .build()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn iteration_count(default_iters: u64) -> u64 {
    match std::env::var("VC2M_BENCH_ITERS") {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("VC2M_BENCH_ITERS must be a u64, got {raw:?}")),
        Err(_) => default_iters,
    }
    .max(1)
}

/// Times `routine` for `default_iters` iterations (plus an untimed
/// warmup of one tenth) and prints the resulting row.
///
/// The routine's return value is passed through [`std::hint::black_box`]
/// so the work is not optimized away.
pub fn run<T>(name: &str, default_iters: u64, mut routine: impl FnMut() -> T) -> Measurement {
    run_batched(name, default_iters, || (), |()| routine())
}

/// Like [`run`], but re-creates mutable input state with `setup`
/// before every iteration; only `routine` is timed.
///
/// This is the shape the regulator and scheduler benches need, where
/// the routine mutates its input (a drained ready queue, a throttled
/// regulator) and must start each iteration from a fresh state.
pub fn run_batched<S, T>(
    name: &str,
    default_iters: u64,
    setup: impl FnMut() -> S,
    mut routine: impl FnMut(&mut S) -> T,
) -> Measurement {
    run_consuming(name, default_iters, setup, |mut state| routine(&mut state))
}

/// Like [`run_batched`], but the routine takes the per-iteration state
/// by value — for routines that consume their input (e.g. a simulator
/// whose `run` takes `self`). Dropping the state happens outside the
/// timed region.
pub fn run_consuming<S, T>(
    name: &str,
    default_iters: u64,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Measurement {
    let iters = iteration_count(default_iters);
    let warmup = (iters / 10).clamp(1, 100);
    for _ in 0..warmup {
        let state = setup();
        std::hint::black_box(routine(state));
    }

    let mut min_ns = f64::INFINITY;
    let mut max_ns = 0.0f64;
    let mut total_ns = 0.0f64;
    for _ in 0..iters {
        let state = setup();
        let start = Instant::now();
        let out = routine(state);
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        total_ns += elapsed;
    }

    let measurement = Measurement {
        name: name.to_string(),
        iters,
        min_ns,
        total_ns,
        max_ns,
    };
    println!("{}", measurement.row());
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics_are_consistent() {
        let m = run("noop", 32, || 1 + 1);
        assert_eq!(m.iters(), 32);
        assert!(m.min_us() <= m.avg_us() && m.avg_us() <= m.max_us());
        assert!(m.row().contains("noop"));
    }

    #[test]
    fn batched_setup_runs_per_iteration() {
        use std::cell::Cell;
        let setups = Cell::new(0u64);
        let m = run_batched(
            "counting",
            8,
            || setups.set(setups.get() + 1),
            |()| (),
        );
        // Warmup iterations also call setup, so at least `iters` total.
        assert!(setups.get() >= m.iters());
    }

    #[test]
    fn json_builder_renders_members_in_order() {
        let json = JsonBuilder::new()
            .str("name", "quick")
            .int("units", 72)
            .num("speedup", 1.5)
            .bool("cache", true)
            .build();
        assert_eq!(
            json,
            "{\n  \"name\": \"quick\",\n  \"units\": 72,\n  \"speedup\": 1.5,\n  \"cache\": true\n}"
        );
        assert_eq!(JsonBuilder::new().build(), "{}");
    }

    #[test]
    fn json_builder_escapes_and_nulls() {
        let json = JsonBuilder::new()
            .str("path", "a\\b\"c\nd\u{1}")
            .num("nan", f64::NAN)
            .num("inf", f64::INFINITY)
            .build();
        assert!(json.contains("\"a\\\\b\\\"c\\nd\\u0001\""));
        assert!(json.contains("\"nan\": null"));
        assert!(json.contains("\"inf\": null"));
    }

    #[test]
    fn json_nesting_reindents() {
        let inner = JsonBuilder::new().int("x", 1).build();
        let arr = json_array([inner.clone(), inner.clone()]);
        assert_eq!(json_array(Vec::<String>::new()), "[]");
        let outer = JsonBuilder::new().raw("runs", arr).build();
        // Every line of the nested object gains one indent level per
        // wrapping, so the innermost member sits at three levels.
        assert!(outer.contains("\n      \"x\": 1"));
        assert!(outer.ends_with("  ]\n}"));
    }

    #[test]
    fn metrics_json_is_schema_stable() {
        use vc2m::simcore::MetricsRegistry;
        let mut m = MetricsRegistry::new();
        m.counter_add("sim.jobs.completed", 42);
        m.counter_add("analysis.cache.hits", 7);
        m.gauge_set("sim.horizon_ms", 1000.0);
        m.observe("sim.response_ms.T0", 2.0);
        m.observe("sim.response_ms.T0", 4.0);
        let json = metrics_json(&m);
        assert_eq!(
            json,
            concat!(
                "{\n",
                "  \"counters\": {\n",
                "    \"analysis.cache.hits\": 7,\n",
                "    \"sim.jobs.completed\": 42\n",
                "  },\n",
                "  \"gauges\": {\n",
                "    \"sim.horizon_ms\": 1000\n",
                "  },\n",
                "  \"histograms\": {\n",
                "    \"sim.response_ms.T0\": {\n",
                "      \"count\": 2,\n",
                "      \"min\": 2,\n",
                "      \"avg\": 3,\n",
                "      \"max\": 4\n",
                "    }\n",
                "  }\n",
                "}"
            )
        );
        // Equal registries render byte-identically.
        assert_eq!(metrics_json(&m.clone()), json);
        // An empty registry still carries all three sections.
        assert_eq!(
            metrics_json(&MetricsRegistry::new()),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn measurement_json_has_all_stats() {
        let m = run("jsonable", 4, || 2 + 2);
        let json = m.json();
        for key in ["\"name\": \"jsonable\"", "\"iters\": 4", "\"min_us\"", "\"avg_us\"", "\"max_us\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
