//! Seeded k-means clustering over slowdown vectors.
//!
//! Both allocation levels group entities (tasks, then VCPUs) whose
//! slowdown vectors are similar, so that entities sharing a core make
//! similar use of the cache and bandwidth given to that core. The
//! feature space is the flattened slowdown surface (one dimension per
//! `(c, b)` cell); distances are Euclidean.
//!
//! The implementation is deterministic for a given seed: k-means++
//! initialization drives all randomness through the caller's RNG, and
//! Lloyd iterations run to convergence or a fixed cap.

use vc2m_rng::Rng;

/// Maximum Lloyd iterations before giving up on convergence.
const MAX_ITERATIONS: usize = 50;

/// Result of a clustering run: for each input point, the index of its
/// cluster in `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<usize>,
    k: usize,
}

impl Clustering {
    /// Cluster index of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of clusters requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The members of each cluster, as index lists.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (i, &c) in self.assignment.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

/// Runs k-means over `points` (each a feature slice of equal length),
/// producing at most `k` clusters.
///
/// Empty inputs yield an empty clustering; `k` is clamped to the
/// number of points. Duplicate points are fine (k-means++ falls back
/// to uniform choice when all remaining distances are zero).
///
/// # Panics
///
/// Panics if `k` is zero while points are non-empty, or if points have
/// inconsistent dimensions.
pub fn kmeans<R: Rng>(points: &[&[f64]], k: usize, rng: &mut R) -> Clustering {
    if points.is_empty() {
        return Clustering {
            assignment: Vec::new(),
            k: 0,
        };
    }
    assert!(k > 0, "k must be positive for a non-empty point set");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share one dimension"
    );
    let k = k.min(points.len());

    let mut centroids = init_plus_plus(points, k, rng);
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..MAX_ITERATIONS {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = nearest_centroid(p, &centroids);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Recompute centroids; refill an empty cluster by stealing the
        // point farthest from its centroid — but only when that point
        // is at a strictly positive distance and leaves at least one
        // point behind. (With identical points there is nothing
        // meaningful to split; empty clusters are then left empty and
        // callers skip them.)
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, v) in sums[assignment[i]].iter_mut().zip(*p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let candidate = points
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| counts[assignment[*i]] >= 2)
                    .map(|(i, p)| (i, distance_sq(p, &centroids[assignment[i]])))
                    .max_by(|(i, a), (j, b)| {
                        a.partial_cmp(b)
                            .expect("distances are finite")
                            .then(i.cmp(j))
                    });
                if let Some((far, dist)) = candidate {
                    if dist > 0.0 {
                        counts[assignment[far]] -= 1;
                        assignment[far] = c;
                        counts[c] = 1;
                        centroids[c] = points[far].to_vec();
                        changed = true;
                    }
                }
            } else {
                for (d, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *d = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Clustering { assignment, k }
}

fn init_plus_plus<R: Rng>(points: &[&[f64]], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_vec());
    while centroids.len() < k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| distance_sq(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if target < *w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(points[chosen].to_vec());
    }
    centroids
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = distance_sq(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(17)
    }

    #[test]
    fn empty_input() {
        let c = kmeans(&[], 3, &mut rng());
        assert_eq!(c.k(), 0);
        assert!(c.assignment().is_empty());
    }

    #[test]
    fn k_clamped_to_point_count() {
        let points: Vec<&[f64]> = vec![&[0.0], &[1.0]];
        let c = kmeans(&points, 5, &mut rng());
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let raw: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                if i < 5 {
                    vec![0.0 + i as f64 * 0.01, 0.0]
                } else {
                    vec![10.0 + i as f64 * 0.01, 10.0]
                }
            })
            .collect();
        let points: Vec<&[f64]> = raw.iter().map(|v| v.as_slice()).collect();
        let c = kmeans(&points, 2, &mut rng());
        let first = c.cluster_of(0);
        assert!((0..5).all(|i| c.cluster_of(i) == first));
        let second = c.cluster_of(5);
        assert!((5..10).all(|i| c.cluster_of(i) == second));
        assert_ne!(first, second);
    }

    #[test]
    fn no_cluster_is_empty() {
        // 6 points, 3 clusters, two far blobs: the third centroid must
        // steal a point rather than stay empty.
        let raw: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![9.0],
            vec![9.1],
            vec![9.2],
        ];
        let points: Vec<&[f64]> = raw.iter().map(|v| v.as_slice()).collect();
        let c = kmeans(&points, 3, &mut rng());
        let members = c.members();
        assert_eq!(members.len(), 3);
        assert!(members.iter().all(|m| !m.is_empty()), "{members:?}");
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn identical_points_collapse_to_one_cluster() {
        // Nothing meaningful separates identical points: they all land
        // in one cluster and the other clusters stay empty (callers
        // skip empty clusters).
        let raw: Vec<Vec<f64>> = vec![vec![1.0, 2.0]; 8];
        let points: Vec<&[f64]> = raw.iter().map(|v| v.as_slice()).collect();
        let c = kmeans(&points, 3, &mut rng());
        assert_eq!(c.assignment().len(), 8);
        let non_empty: Vec<_> = c.members().into_iter().filter(|m| !m.is_empty()).collect();
        assert_eq!(non_empty.len(), 1);
        assert_eq!(non_empty[0].len(), 8);
    }

    #[test]
    fn deterministic_for_seed() {
        let raw: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i * i % 7) as f64, i as f64])
            .collect();
        let points: Vec<&[f64]> = raw.iter().map(|v| v.as_slice()).collect();
        let a = kmeans(&points, 4, &mut DetRng::seed_from_u64(5));
        let b = kmeans(&points, 4, &mut DetRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn mismatched_dimensions_panic() {
        let a = [0.0];
        let b = [0.0, 1.0];
        let points: Vec<&[f64]> = vec![&a, &b];
        let _ = kmeans(&points, 1, &mut rng());
    }

    #[test]
    fn single_cluster_contains_everything() {
        let raw: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let points: Vec<&[f64]> = raw.iter().map(|v| v.as_slice()).collect();
        let c = kmeans(&points, 1, &mut rng());
        assert!(c.assignment().iter().all(|&a| a == 0));
    }
}
